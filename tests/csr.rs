//! Integration: the flat CSR topology storage is observationally
//! equivalent to the per-node `Vec<Vec<NodeId>>` adjacency it replaced.
//!
//! `SpatialGrid::adjacency` (the original reference builder) is kept
//! precisely so this suite can pin the CSR path against it on every
//! gallery scenario, and so the churn-maintained CSR can be checked for
//! canonical-form integrity after slack-driven relocations.

use ballfit_geom::grid::SpatialGrid;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_wsn::Topology;

fn model(scenario: Scenario, seed: u64) -> NetworkModel {
    NetworkBuilder::new(scenario)
        .surface_nodes(160)
        .interior_nodes(240)
        .target_degree(14.0)
        .require_connected(false)
        .seed(seed)
        .build()
        .unwrap()
}

/// Checks the CSR invariants of a topology and returns the reference
/// Vec-of-Vec adjacency it must match.
fn assert_csr_matches_reference(topo: &Topology, reference: &[Vec<usize>]) {
    assert_eq!(topo.len(), reference.len());
    let mut edges = 0usize;
    for (i, want) in reference.iter().enumerate() {
        let got: Vec<usize> = topo.neighbors(i).iter().map(|&v| v as usize).collect();
        assert_eq!(&got, want, "node {i}: CSR slice diverged from Vec-of-Vec adjacency");
        // Slices are sorted and self-loop free — binary-search queries rely
        // on this.
        assert!(got.windows(2).all(|w| w[0] < w[1]), "node {i}: slice not strictly sorted");
        assert!(got.binary_search(&i).is_err(), "node {i}: self loop");
        edges += got.len();
    }
    assert_eq!(topo.edge_count(), edges / 2, "edge count disagrees with slice lengths");

    // The canonical CSR is the tight concatenation of the same slices.
    let (offsets, arena) = topo.canonical_csr();
    assert_eq!(offsets.len(), topo.len() + 1);
    assert_eq!(offsets[0], 0);
    assert_eq!(*offsets.last().unwrap() as usize, arena.len());
    assert_eq!(arena.len(), 2 * topo.edge_count());
    for i in 0..topo.len() {
        let slice = &arena[offsets[i] as usize..offsets[i + 1] as usize];
        assert_eq!(slice, topo.neighbors(i), "node {i}: canonical slice diverged");
    }
}

#[test]
fn csr_equals_vec_of_vec_adjacency_on_every_gallery_scenario() {
    for (k, scenario) in Scenario::ALL.into_iter().enumerate() {
        let m = model(scenario, 40 + k as u64);
        let r = m.radio_range();
        let grid = SpatialGrid::build(m.positions(), r);
        let reference = grid.adjacency(m.positions(), r);
        assert_csr_matches_reference(m.topology(), &reference);
    }
}

#[test]
fn static_construction_is_tight() {
    let m = model(Scenario::SolidSphere, 5);
    // A freshly built topology carries no mutation slack: the arena holds
    // exactly the logical entries.
    assert_eq!(m.topology().arena_slots(), 2 * m.topology().edge_count());
}

#[test]
fn from_edges_equals_from_positions_on_the_same_graph() {
    let m = model(Scenario::SpaceOneHole, 17);
    let mut edges = Vec::new();
    for i in 0..m.topology().len() {
        for &j in m.topology().neighbors(i) {
            let j = j as usize;
            if i < j {
                edges.push((i, j));
            }
        }
    }
    let rebuilt = Topology::from_edges(m.topology().len(), &edges);
    assert_eq!(&rebuilt, m.topology());
    assert_eq!(rebuilt.canonical_csr(), m.topology().canonical_csr());
}
