//! Integration: incremental boundary maintenance under churn is *exact* —
//! after every single topology event, the `IncrementalDetector`'s boundary
//! set, candidate set, fragment survivals and grouping labels are
//! identical to a from-scratch `detect_view` on the same topology, and the
//! incrementally maintained adjacency is byte-identical to a rebuild.
//!
//! This is the ISSUE's acceptance pin: a 200-event seeded churn run on the
//! one-hole scenario with per-event equality, plus a sphere variant.

use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetector;
use ballfit::incremental::IncrementalDetector;
use ballfit::view::NetView;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::churn::ChurnDriver;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_wsn::churn::ChurnPlan;
use ballfit_wsn::flood::fragment_sizes;

fn model(scenario: Scenario, seed: u64) -> NetworkModel {
    NetworkBuilder::new(scenario)
        .surface_nodes(140)
        .interior_nodes(210)
        .target_degree(13.0)
        .require_connected(false)
        .seed(seed)
        .build()
        .unwrap()
}

/// Drives `events` churn events through an `IncrementalDetector`, checking
/// full equality against the from-scratch detector after every event.
fn run_exactness_pin(scenario: Scenario, model_seed: u64, plan_seed: u64, events: usize) {
    let model = model(scenario, model_seed);
    let plan = ChurnPlan::none()
        .with_seed(plan_seed)
        .with_epochs(32)
        .with_join_rate(0.03)
        .with_leave_rate(0.03)
        .with_move_rate(0.03)
        .with_max_drift(0.5 * model.radio_range());
    let schedule = plan.schedule(model.len());
    assert!(
        schedule.len() >= events,
        "schedule too short for the pin: {} < {events}",
        schedule.len()
    );

    let config = DetectorConfig::default();
    let detector = BoundaryDetector::new(config);
    let mut driver = ChurnDriver::new(&model, plan_seed ^ 0xD1B5_4A32_D192_ED03);
    let mut inc = IncrementalDetector::new(config, driver.dynamic());

    for (i, ev) in schedule.iter().take(events).enumerate() {
        let (_, delta) = driver.step(ev).expect("in-shape sampling never exhausts");
        inc.apply(driver.dynamic(), &delta);
        let dynamic = driver.dynamic();

        // The maintained adjacency is byte-identical to a rebuild.
        assert_eq!(
            dynamic.topology(),
            &dynamic.rebuild_reference(),
            "event {i}: incremental adjacency diverged from a from-scratch rebuild"
        );

        // The maintained CSR, canonicalized, is the same flat byte
        // sequence as the rebuilt one — slack/tombstones never leak into
        // the logical arrays.
        assert_eq!(
            dynamic.topology().canonical_csr(),
            dynamic.rebuild_reference().canonical_csr(),
            "event {i}: canonical CSR bytes diverged from a from-scratch rebuild"
        );

        // The maintained detection equals a from-scratch run.
        let view = NetView::new(dynamic.topology(), dynamic.positions(), dynamic.radio_range());
        let full = detector.detect_view(&view);
        assert_eq!(inc.candidates(), &full.candidates[..], "event {i}: candidate set diverged");
        assert_eq!(inc.boundary(), &full.boundary[..], "event {i}: boundary set diverged");
        assert_eq!(inc.groups(), &full.groups[..], "event {i}: grouping labels diverged");
        let frags = fragment_sizes(dynamic.topology(), config.iff.ttl, |n| full.candidates[n]);
        assert_eq!(inc.fragments(), &frags[..], "event {i}: fragment survivals diverged");
    }
}

#[test]
fn two_hundred_event_pin_on_the_one_hole_scenario() {
    run_exactness_pin(Scenario::SpaceOneHole, 21, 4, 200);
}

#[test]
fn churn_pin_on_the_sphere() {
    run_exactness_pin(Scenario::SolidSphere, 9, 11, 120);
}

#[test]
fn replaying_the_same_plan_is_bit_identical() {
    let model = model(Scenario::SpaceOneHole, 21);
    let plan = ChurnPlan::none()
        .with_seed(7)
        .with_epochs(6)
        .with_join_rate(0.05)
        .with_leave_rate(0.05)
        .with_move_rate(0.05)
        .with_max_drift(0.4 * model.radio_range());
    let schedule = plan.schedule(model.len());
    let config = DetectorConfig::default();

    let run = || {
        let mut driver = ChurnDriver::new(&model, 99);
        let mut inc = IncrementalDetector::new(config, driver.dynamic());
        for ev in &schedule {
            let (_, delta) = driver.step(ev).expect("in-shape sampling never exhausts");
            inc.apply(driver.dynamic(), &delta);
        }
        (driver.dynamic().topology().clone(), inc.detection())
    };
    let (topo_a, det_a) = run();
    let (topo_b, det_b) = run();
    assert_eq!(topo_a, topo_b);
    assert_eq!(det_a.boundary, det_b.boundary);
    assert_eq!(det_a.groups, det_b.groups);
    assert_eq!(det_a.balls_tested, det_b.balls_tested);
}
