//! Integration: the observability layer is *inert* and *deterministic*.
//!
//! Tracing must never perturb detection (same output with the sink on or
//! off), and an enabled trace must serialize byte-identically across
//! repeated runs and across every worker-thread count of the E17 ladder —
//! logical time only (round numbers, monotonic sequence counters), never
//! wall clock. The final test pins the EXPERIMENTS.md E15 fault-free
//! baseline message counts to the values `obs::summary` regenerates, so
//! the prose can never drift from the code.

use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetector;
use ballfit::protocols::{run_grouping_protocol_traced, run_ubf_protocol_traced};
use ballfit::view::NetView;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_obs::summary::summarize;
use ballfit_obs::Trace;
use ballfit_par::Parallelism;
use ballfit_wsn::flood::FragmentFlood;
use ballfit_wsn::sim::Simulator;

/// The E17 thread ladder.
const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

fn small_model() -> NetworkModel {
    NetworkBuilder::new(Scenario::SpaceOneHole)
        .surface_nodes(120)
        .interior_nodes(180)
        .target_degree(13.0)
        .seed(9)
        .build()
        .expect("model generates")
}

/// The E15 reference network (500-node SolidSphere).
fn reference_model() -> NetworkModel {
    NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(200)
        .interior_nodes(300)
        .target_degree(14.0)
        .seed(77)
        .build()
        .expect("reference model generates")
}

/// One full traced detection + protocol run, returning the JSONL export.
fn pipeline_trace(model: &NetworkModel, par: Parallelism) -> String {
    let cfg = DetectorConfig::default();
    let mut trace = Trace::enabled();
    let detection = BoundaryDetector::new(cfg)
        .with_parallelism(par)
        .detect_view_traced(&NetView::from_model(model), &mut trace);
    run_ubf_protocol_traced(model, &cfg.ubf, &cfg.coordinates, &mut trace)
        .expect("perfect radio quiesces");
    run_grouping_protocol_traced(model.topology(), &detection.boundary, &mut trace)
        .expect("perfect radio quiesces");
    trace.to_jsonl()
}

#[test]
fn traces_are_byte_identical_across_repeated_runs() {
    let model = small_model();
    let first = pipeline_trace(&model, Parallelism::sequential());
    let second = pipeline_trace(&model, Parallelism::sequential());
    assert!(!first.is_empty(), "an enabled trace records something");
    assert_eq!(first, second, "repeated runs must serialize byte-identically");
}

#[test]
fn traces_are_byte_identical_at_every_thread_count() {
    let model = small_model();
    let reference = pipeline_trace(&model, Parallelism::sequential());
    for threads in THREAD_LADDER {
        let traced = pipeline_trace(&model, Parallelism::threads(threads));
        assert_eq!(traced, reference, "trace diverged at {threads} threads");
    }
}

#[test]
fn detection_is_byte_identical_with_tracing_on_and_off() {
    let model = small_model();
    let cfg = DetectorConfig::default();
    let view = NetView::from_model(&model);
    let silent = BoundaryDetector::new(cfg).detect_view(&view);
    let mut trace = Trace::enabled();
    let traced = BoundaryDetector::new(cfg).detect_view_traced(&view, &mut trace);
    assert_eq!(silent.candidates, traced.candidates, "candidate flags perturbed by tracing");
    assert_eq!(silent.boundary, traced.boundary, "boundary set perturbed by tracing");
    assert_eq!(silent.groups, traced.groups, "grouping perturbed by tracing");
    assert_eq!(silent.balls_tested, traced.balls_tested, "ball-test tally perturbed by tracing");
    assert_eq!(silent.degenerate_nodes, traced.degenerate_nodes, "degenerates perturbed");
    assert!(trace.records().iter().count() > 0, "the enabled run did record");
}

/// Extracts the three comma-grouped counts from the EXPERIMENTS.md E15
/// sentence "UBF X messages, IFF flood Y, grouping Z."
fn documented_baselines(doc: &str) -> (u64, u64, u64) {
    let marker = "Fault-free plain-protocol baselines:";
    let at = doc.find(marker).expect("EXPERIMENTS.md keeps the E15 baseline sentence");
    let rest = &doc[at + marker.len()..];
    let number_after = |key: &str| -> u64 {
        let k = rest.find(key).unwrap_or_else(|| panic!("baseline sentence names {key}"));
        let digits: String = rest[k + key.len()..]
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == ',')
            .filter(char::is_ascii_digit)
            .collect();
        digits.parse().expect("baseline count parses")
    };
    (number_after("UBF"), number_after("IFF flood"), number_after("grouping"))
}

/// Satellite: the E15 baseline counts in EXPERIMENTS.md are regenerated
/// from `obs::summary`, not hand-maintained. If either side changes, this
/// test names the document values that must be updated.
#[test]
fn experiments_e15_baseline_counts_match_obs_summary() {
    let model = reference_model();
    let cfg = DetectorConfig::default();
    let mut trace = Trace::enabled();

    run_ubf_protocol_traced(&model, &cfg.ubf, &cfg.coordinates, &mut trace)
        .expect("perfect radio quiesces");
    let central = BoundaryDetector::new(cfg).detect_view(&NetView::from_model(&model));
    let candidates = central.candidates.clone();
    let mut sim =
        Simulator::new(model.topology(), |id| FragmentFlood::new(candidates[id], cfg.iff.ttl));
    trace.open("iff");
    let stats = sim.run_traced(cfg.iff.ttl as usize + 2, &mut trace);
    trace.close();
    assert!(stats.quiescent);
    let (_, grouping_msgs) =
        run_grouping_protocol_traced(model.topology(), &central.boundary, &mut trace)
            .expect("perfect radio quiesces");

    let summary = summarize(trace.records());
    let ubf = summary.get("ubf").expect("ubf row").messages;
    let iff = summary.get("iff").expect("iff row").messages;
    let grouping = summary.get("grouping").expect("grouping row").messages;
    // The summary rows are genuine per-run totals, not double counts.
    assert_eq!(iff, stats.messages, "iff summary row must equal RunStats.messages");
    assert_eq!(grouping, grouping_msgs, "grouping summary row must equal the runner's total");

    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md"))
        .expect("EXPERIMENTS.md is readable");
    let (doc_ubf, doc_iff, doc_grouping) = documented_baselines(&doc);
    assert_eq!(
        (ubf, iff, grouping),
        (doc_ubf, doc_iff, doc_grouping),
        "EXPERIMENTS.md E15 baselines drifted from obs::summary; regenerate the sentence"
    );
}
