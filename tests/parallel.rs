//! Integration: the parallel detection pipeline is *deterministic* — at
//! every worker-thread count the detector produces output byte-identical
//! to the sequential run. This is the `ballfit-par` contract (chunked,
//! index-ordered reassembly; no reduction-order dependence) pinned at the
//! pipeline level, on the thread ladder of the E17 acceptance criterion.

use ballfit::chaos::{run_chaos, ChaosConfig};
use ballfit::config::DetectorConfig;
use ballfit::detector::{BoundaryDetection, BoundaryDetector};
use ballfit::incremental::IncrementalDetector;
use ballfit::metrics::DetectionStats;
use ballfit::view::NetView;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::churn::ChurnDriver;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_par::Parallelism;
use ballfit_wsn::churn::ChurnPlan;

/// The E17 thread ladder.
const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

fn model(scenario: Scenario, seed: u64) -> NetworkModel {
    NetworkBuilder::new(scenario)
        .surface_nodes(160)
        .interior_nodes(240)
        .target_degree(13.5)
        .seed(seed)
        .build()
        .unwrap()
}

fn assert_identical(a: &BoundaryDetection, b: &BoundaryDetection, what: &str) {
    assert_eq!(a.candidates, b.candidates, "{what}: candidate flags diverged");
    assert_eq!(a.boundary, b.boundary, "{what}: boundary set diverged");
    assert_eq!(a.groups, b.groups, "{what}: grouping labels diverged");
    assert_eq!(a.balls_tested, b.balls_tested, "{what}: ball-test tally diverged");
    assert_eq!(a.degenerate_nodes, b.degenerate_nodes, "{what}: degenerate set diverged");
}

#[test]
fn detect_view_is_byte_identical_at_every_thread_count() {
    for (scenario, seed) in [(Scenario::SpaceOneHole, 5), (Scenario::SolidSphere, 17)] {
        let model = model(scenario, seed);
        let view = NetView::from_model(&model);
        let cfg = DetectorConfig::default();
        let reference = BoundaryDetector::new(cfg)
            .with_parallelism(Parallelism::sequential())
            .detect_view(&view);
        for threads in THREAD_LADDER {
            let detection = BoundaryDetector::new(cfg)
                .with_parallelism(Parallelism::threads(threads))
                .detect_view(&view);
            assert_identical(&detection, &reference, &format!("{scenario:?} at {threads} threads"));
        }
    }
}

#[test]
fn ground_truth_metrics_are_thread_count_invariant() {
    let model = model(Scenario::SpaceOneHole, 5);
    let detection =
        BoundaryDetector::new(DetectorConfig::default()).detect_view(&NetView::from_model(&model));
    let reference = DetectionStats::evaluate_with(&model, &detection, Parallelism::sequential());
    for threads in THREAD_LADDER {
        let stats =
            DetectionStats::evaluate_with(&model, &detection, Parallelism::threads(threads));
        assert_eq!(stats, reference, "evaluate_with diverged at {threads} threads");
    }
}

/// E19 under parallelism: a full chaos run — faults injected while the
/// topology churns, every epoch graded by the watchdog — produces a
/// report equal at every ladder count to the sequential run (outcomes,
/// coverage, jaccard, lag, repair counts, events, diffs, detection).
#[test]
fn chaos_report_is_identical_at_every_thread_count() {
    let model = model(Scenario::SpaceOneHole, 21);
    let churn = ChurnPlan::none()
        .with_seed(4)
        .with_epochs(2)
        .with_join_rate(0.02)
        .with_leave_rate(0.02)
        .with_move_rate(0.02)
        .with_max_drift(0.4 * model.radio_range());
    let config = ChaosConfig::new(DetectorConfig::paper(0, 0), churn)
        .with_loss(0.20)
        .with_duplication(0.05)
        .with_max_delay(1)
        .with_crash_fraction(0.10)
        .with_fault_seed(7);
    let reference = run_chaos(&model, &config, 7, Parallelism::sequential())
        .expect("in-shape sampling never exhausts");
    assert!(!reference.events.is_empty(), "churn must actually mutate the topology");
    for threads in THREAD_LADDER {
        let report = run_chaos(&model, &config, 7, Parallelism::threads(threads))
            .expect("in-shape sampling never exhausts");
        assert_eq!(report, reference, "chaos report diverged at {threads} threads");
    }
}

/// E16 under parallelism: after every churn event, an incremental detector
/// running at each ladder count agrees byte-for-byte with the sequential
/// incremental detector *and* with a from-scratch parallel detect.
#[test]
fn incremental_maintenance_is_byte_identical_at_every_thread_count() {
    let model = model(Scenario::SpaceOneHole, 21);
    let plan = ChurnPlan::none()
        .with_seed(4)
        .with_epochs(8)
        .with_join_rate(0.04)
        .with_leave_rate(0.04)
        .with_move_rate(0.04)
        .with_max_drift(0.4 * model.radio_range());
    let schedule = plan.schedule(model.len());
    let events = schedule.len().min(60);
    let config = DetectorConfig::default();

    let run = |par: Parallelism| {
        let mut driver = ChurnDriver::new(&model, 7);
        let mut inc = IncrementalDetector::new_with_parallelism(config, driver.dynamic(), par);
        let mut per_event = Vec::with_capacity(events);
        for ev in schedule.iter().take(events) {
            let (_, delta) = driver.step(ev).expect("in-shape sampling never exhausts");
            inc.apply(driver.dynamic(), &delta);
            per_event.push(inc.detection());
        }
        per_event
    };

    let reference = run(Parallelism::sequential());
    for threads in THREAD_LADDER {
        let detections = run(Parallelism::threads(threads));
        for (i, (d, r)) in detections.iter().zip(&reference).enumerate() {
            assert_identical(d, r, &format!("event {i} at {threads} threads"));
        }
        // And the final state matches a from-scratch parallel detect.
        let mut driver = ChurnDriver::new(&model, 7);
        for ev in schedule.iter().take(events) {
            driver.step(ev).expect("in-shape sampling never exhausts");
        }
        let dynamic = driver.dynamic();
        let view = NetView::new(dynamic.topology(), dynamic.positions(), dynamic.radio_range());
        let full = BoundaryDetector::new(config)
            .with_parallelism(Parallelism::threads(threads))
            .detect_view(&view);
        assert_identical(
            detections.last().expect("at least one event"),
            &full,
            &format!("incremental-vs-full at {threads} threads"),
        );
    }
}
