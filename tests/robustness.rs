//! Integration: the hardened protocol stack still reproduces the
//! centralized detector on an unreliable radio.
//!
//! Acceptance scenario (ISSUE 2): on the `SolidSphere` reference model,
//! with seeded link loss ≤ 10% and ≤ 5% of nodes transiently crashed,
//! hardened UBF and hardened grouping must produce exactly the
//! centralized detector's candidate flags and component labels. The
//! retransmission budgets are sized so every lost table/label is
//! re-offered until it lands; determinism of the fault layer makes this
//! test exactly reproducible.
//!
//! Acceptance scenario (ISSUE 7): the chaos runtime combines those radio
//! faults with live topology churn. With 10% loss and 5% transient
//! crashes during 2%-per-epoch churn on the one-hole scenario, every
//! epoch must converge *exactly* to the incremental oracle; past the
//! retry budget the run must return a typed `Degraded` outcome with a
//! coverage figure — never panic or hang. Checkpointing mid-churn and
//! restoring must replay byte-identically to the uninterrupted run.

use ballfit::chaos::{run_chaos, ChaosConfig};
use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetector;
use ballfit::grouping::group_boundaries;
use ballfit::incremental::IncrementalDetector;
use ballfit::protocols::{
    run_grouping_protocol, run_hardened_grouping, run_hardened_ubf, run_ubf_protocol, Backoff,
};
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_par::Parallelism;
use ballfit_wsn::churn::{ChurnPlan, DynamicTopology, TopologyEvent};
use ballfit_wsn::faults::FaultPlan;
use ballfit_wsn::flood::{fragment_sizes, HardenedFragmentFlood};
use ballfit_wsn::sim::Simulator;

fn model() -> NetworkModel {
    NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(200)
        .interior_nodes(300)
        .target_degree(14.0)
        .seed(77)
        .build()
        .expect("reference model generates")
}

/// ≤ 10% base link loss, some duplication and delay, and 5% of nodes
/// down from round 1 through round 5 (transient fail-stop).
fn acceptance_plan(n: usize) -> FaultPlan {
    FaultPlan::lossy(2026, 0.10).with_duplication(0.05).with_max_delay(1).with_random_crashes(
        n,
        0.05,
        1,
        Some(6),
    )
}

#[test]
fn hardened_pipeline_matches_centralized_under_loss_and_crashes() {
    let model = model();
    let cfg = DetectorConfig::paper(10, 3);
    let central = BoundaryDetector::new(cfg).detect(&model);
    let plan = acceptance_plan(model.len());
    let retry = Backoff::default();

    // Phase 1: hardened UBF matches the centralized candidate flags.
    let (flags, ubf_msgs) = run_hardened_ubf(&model, &cfg.ubf, &cfg.coordinates, retry, &plan)
        .expect("hardened UBF quiesces under the acceptance plan");
    assert_eq!(flags, central.candidates, "hardened UBF diverged under faults");

    // Phase 2: hardened IFF flood reproduces the fragment sizes exactly —
    // max-TTL tracking makes the flood monotone, so with enough repeats
    // it converges to the shortest-path TTL semantics of the centralized
    // count despite loss and transient crashes.
    let ttl = cfg.iff.ttl;
    let candidates = central.candidates.clone();
    let mut sim =
        Simulator::new(model.topology(), |id| HardenedFragmentFlood::new(candidates[id], ttl, 8));
    let stats = sim.run_with_faults(16 * (ttl as usize + 2) + plan.round_slack(), &plan);
    assert!(stats.quiescent, "hardened flood must quiesce");
    let sizes = fragment_sizes(model.topology(), ttl, |i| candidates[i]);
    for i in 0..model.len() {
        assert_eq!(sim.node(i).fragment_size(), sizes[i], "fragment size diverged at node {i}");
    }
    let theta = cfg.iff.theta;
    let via_protocol: Vec<bool> =
        (0..model.len()).map(|i| candidates[i] && sim.node(i).fragment_size() >= theta).collect();
    assert_eq!(via_protocol, central.boundary, "IFF filtering diverged under faults");

    // Phase 3: hardened grouping matches the centralized components.
    let (labels, group_msgs) =
        run_hardened_grouping(model.topology(), &central.boundary, retry, &plan)
            .expect("hardened grouping quiesces under the acceptance plan");
    let groups = group_boundaries(model.topology(), &central.boundary);
    for group in &groups {
        for &m in group {
            assert_eq!(labels[m], Some(group[0]), "node {m} mislabeled under faults");
        }
    }
    for i in 0..model.len() {
        if !central.boundary[i] {
            assert_eq!(labels[i], None, "non-member {i} acquired a label");
        }
    }

    // The radio genuinely misbehaved, and hardening has a real cost.
    assert!(ubf_msgs > 0 && group_msgs > 0);
}

#[test]
fn acceptance_plan_actually_injects_faults() {
    let model = model();
    let plan = acceptance_plan(model.len());
    let cfg = DetectorConfig::paper(10, 3);
    let retry = Backoff::default();
    let states_run = run_hardened_ubf(&model, &cfg.ubf, &cfg.coordinates, retry, &plan);
    // Re-run cheaply via the raw engine to inspect fault counters.
    let mut sim =
        Simulator::new(model.topology(), |id| HardenedFragmentFlood::new(id % 2 == 0, 3, 4));
    let stats = sim.run_with_faults(60 + plan.round_slack(), &plan);
    assert!(stats.faults.dropped > 0, "plan dropped nothing");
    assert!(stats.faults.crash_lost > 0, "plan crashed no deliveries");
    assert!(states_run.is_ok());
}

#[test]
fn hardened_stack_under_zero_faults_equals_plain_stack() {
    let model = model();
    let cfg = DetectorConfig::paper(10, 3);
    let retry = Backoff::default();
    let none = FaultPlan::none();

    let (plain_flags, _) =
        run_ubf_protocol(&model, &cfg.ubf, &cfg.coordinates).expect("plain quiesces");
    let (hard_flags, _) = run_hardened_ubf(&model, &cfg.ubf, &cfg.coordinates, retry, &none)
        .expect("hardened quiesces");
    assert_eq!(hard_flags, plain_flags);

    let central = BoundaryDetector::new(cfg).detect(&model);
    let (plain_labels, _) =
        run_grouping_protocol(model.topology(), &central.boundary).expect("plain quiesces");
    let (hard_labels, _) = run_hardened_grouping(model.topology(), &central.boundary, retry, &none)
        .expect("hardened quiesces");
    assert_eq!(hard_labels, plain_labels);
}

// ---------------------------------------------------------------------------
// ISSUE 7: chaos runtime — faults under churn, recovery, degradation.
// ---------------------------------------------------------------------------

/// The chaos reference network: the one-hole scenario at the size the
/// committed E19 sweep (`results/chaos_sweep.json`) runs at.
fn chaos_model() -> NetworkModel {
    NetworkBuilder::new(Scenario::SpaceOneHole)
        .surface_nodes(120)
        .interior_nodes(180)
        .target_degree(12.0)
        .require_connected(false)
        .seed(11)
        .build()
        .expect("chaos model generates")
}

/// 2%-per-epoch churn with the E19 seeds.
fn chaos_churn(model: &NetworkModel, epochs: usize) -> ChurnPlan {
    ChurnPlan::none()
        .with_seed(9)
        .with_epochs(epochs)
        .with_join_rate(0.02)
        .with_leave_rate(0.02)
        .with_move_rate(0.02)
        .with_max_drift(0.5 * model.radio_range())
}

/// The chaos acceptance pin: 10% loss plus 5% transient crashes while
/// the topology churns at 2% per epoch — every epoch converges exactly
/// to the incremental oracle on the same churned topology. (This is the
/// `loss=0.1, crash=0.05, rate=0.02` cell of the committed E19 sweep.)
#[test]
fn chaos_converges_exact_under_loss_crashes_and_churn() {
    let model = chaos_model();
    let config = ChaosConfig::new(DetectorConfig::paper(0, 0), chaos_churn(&model, 4))
        .with_loss(0.10)
        .with_duplication(0.05)
        .with_max_delay(1)
        .with_crash_fraction(0.05)
        .with_fault_seed(7);
    let report = run_chaos(&model, &config, 0x00C0_FFEE, Parallelism::default())
        .expect("in-shape sampling never exhausts");
    assert!(!report.events.is_empty(), "churn must actually mutate the topology");
    assert_eq!(
        report.exact_epochs(),
        report.epochs.len(),
        "every epoch must be exact under the acceptance faults: {:?}",
        report.epochs.iter().map(|e| &e.outcome).collect::<Vec<_>>()
    );
    assert!(report.min_coverage() >= 1.0, "exact epochs have full coverage");
    // Repairs prove the radio genuinely misbehaved and recovery worked.
    assert!(report.epochs.iter().map(|e| e.repairs).sum::<u64>() > 0, "no repairs spent");
}

/// Past the retry budget the watchdog degrades gracefully: a typed
/// outcome with a coverage figure and a cause — never a panic or hang.
#[test]
fn chaos_past_retry_budget_degrades_with_typed_outcome() {
    let model = chaos_model();
    let churn = ChurnPlan::none()
        .with_seed(9)
        .with_epochs(2)
        .with_join_rate(0.02)
        .with_leave_rate(0.02)
        .with_move_rate(0.05)
        .with_max_drift(0.5 * model.radio_range());
    let config = ChaosConfig::new(DetectorConfig::paper(0, 0), churn)
        .with_loss(0.30)
        .with_duplication(0.05)
        .with_max_delay(1)
        .with_crash_fraction(0.20)
        .with_crash_window(1, None) // permanent crashes: no revival
        .with_fault_seed(7);
    let report = run_chaos(&model, &config, 0x00C0_FFEE, Parallelism::default())
        .expect("chaos never errors on radio faults");
    let degraded: Vec<_> = report.epochs.iter().filter(|e| !e.outcome.is_exact()).collect();
    assert!(!degraded.is_empty(), "20% permanent crashes at 30% loss must degrade some epoch");
    for e in &degraded {
        let coverage = e.outcome.coverage();
        assert!((0.0..1.0).contains(&coverage), "degraded coverage {coverage} out of range");
        assert!(e.outcome.cause().is_some(), "degraded outcome must carry a cause");
        assert!(!e.outcome.boundary().is_empty(), "partial boundary still reported");
    }
}

/// The crash-recovery pin: snapshot the dynamic topology and checkpoint
/// the incremental detector mid-churn, restore both, replay the
/// remaining events — adjacency, candidates, boundary and groups must be
/// byte-identical to the uninterrupted run.
#[test]
fn checkpoint_restore_replays_byte_identically() {
    let model = chaos_model();
    let plan = chaos_churn(&model, 6);
    let schedule = plan.schedule(model.len());
    // Resolve the schedule into concrete topology events once, so the
    // interrupted and uninterrupted replicas replay the same stream.
    let mut driver = ballfit_netgen::churn::ChurnDriver::new(&model, 0x00C0_FFEE);
    let events: Vec<TopologyEvent> = schedule
        .iter()
        .map(|ev| driver.step(ev).expect("in-shape sampling never exhausts").0)
        .collect();
    assert!(events.len() >= 8, "need a non-trivial event stream, got {}", events.len());
    let config = DetectorConfig::paper(0, 0);

    // Uninterrupted run.
    let mut full_dyn = DynamicTopology::new(model.positions(), model.radio_range());
    let mut full_inc = IncrementalDetector::new(config, &full_dyn);
    for ev in &events {
        let delta = full_dyn.apply(ev);
        full_inc.apply(&full_dyn, &delta);
    }

    // Interrupted run: crash after event k, restore, replay the rest.
    let k = events.len() / 2;
    let (snapshot, checkpoint) = {
        let mut part_dyn = DynamicTopology::new(model.positions(), model.radio_range());
        let mut part_inc = IncrementalDetector::new(config, &part_dyn);
        for ev in &events[..k] {
            let delta = part_dyn.apply(ev);
            part_inc.apply(&part_dyn, &delta);
        }
        (part_dyn.snapshot(), part_inc.checkpoint())
    }; // the pre-crash replica is dropped here — only the snapshots survive
    snapshot.validate();
    let mut rec_dyn = DynamicTopology::restore(&snapshot);
    let mut rec_inc = IncrementalDetector::restore(&checkpoint, Parallelism::sequential());
    for ev in &events[k..] {
        let delta = rec_dyn.apply(ev);
        rec_inc.apply(&rec_dyn, &delta);
    }

    assert_eq!(rec_dyn.topology(), full_dyn.topology(), "adjacency diverged after restore");
    assert_eq!(rec_dyn.positions(), full_dyn.positions(), "positions diverged after restore");
    let full_state = full_inc.checkpoint();
    let rec_state = rec_inc.checkpoint();
    assert_eq!(rec_state.candidates, full_state.candidates, "candidates diverged after restore");
    assert_eq!(rec_state.boundary, full_state.boundary, "boundary diverged after restore");
    assert_eq!(rec_state.groups, full_state.groups, "groups diverged after restore");
    assert_eq!(rec_state, full_state, "detector state diverged after restore");
    assert_eq!(rec_inc.detection(), full_inc.detection(), "detection diverged after restore");
}
