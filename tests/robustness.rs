//! Integration: the hardened protocol stack still reproduces the
//! centralized detector on an unreliable radio.
//!
//! Acceptance scenario (ISSUE 2): on the `SolidSphere` reference model,
//! with seeded link loss ≤ 10% and ≤ 5% of nodes transiently crashed,
//! hardened UBF and hardened grouping must produce exactly the
//! centralized detector's candidate flags and component labels. The
//! retransmission budgets are sized so every lost table/label is
//! re-offered until it lands; determinism of the fault layer makes this
//! test exactly reproducible.

use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetector;
use ballfit::grouping::group_boundaries;
use ballfit::protocols::{
    run_grouping_protocol, run_hardened_grouping, run_hardened_ubf, run_ubf_protocol, RetryConfig,
};
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_wsn::faults::FaultPlan;
use ballfit_wsn::flood::{fragment_sizes, HardenedFragmentFlood};
use ballfit_wsn::sim::Simulator;

fn model() -> NetworkModel {
    NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(200)
        .interior_nodes(300)
        .target_degree(14.0)
        .seed(77)
        .build()
        .expect("reference model generates")
}

/// ≤ 10% base link loss, some duplication and delay, and 5% of nodes
/// down from round 1 through round 5 (transient fail-stop).
fn acceptance_plan(n: usize) -> FaultPlan {
    FaultPlan::lossy(2026, 0.10).with_duplication(0.05).with_max_delay(1).with_random_crashes(
        n,
        0.05,
        1,
        Some(6),
    )
}

#[test]
fn hardened_pipeline_matches_centralized_under_loss_and_crashes() {
    let model = model();
    let cfg = DetectorConfig::paper(10, 3);
    let central = BoundaryDetector::new(cfg).detect(&model);
    let plan = acceptance_plan(model.len());
    let retry = RetryConfig::default();

    // Phase 1: hardened UBF matches the centralized candidate flags.
    let (flags, ubf_msgs) = run_hardened_ubf(&model, &cfg.ubf, &cfg.coordinates, retry, &plan)
        .expect("hardened UBF quiesces under the acceptance plan");
    assert_eq!(flags, central.candidates, "hardened UBF diverged under faults");

    // Phase 2: hardened IFF flood reproduces the fragment sizes exactly —
    // max-TTL tracking makes the flood monotone, so with enough repeats
    // it converges to the shortest-path TTL semantics of the centralized
    // count despite loss and transient crashes.
    let ttl = cfg.iff.ttl;
    let candidates = central.candidates.clone();
    let mut sim =
        Simulator::new(model.topology(), |id| HardenedFragmentFlood::new(candidates[id], ttl, 8));
    let stats = sim.run_with_faults(16 * (ttl as usize + 2) + plan.round_slack(), &plan);
    assert!(stats.quiescent, "hardened flood must quiesce");
    let sizes = fragment_sizes(model.topology(), ttl, |i| candidates[i]);
    for i in 0..model.len() {
        assert_eq!(sim.node(i).fragment_size(), sizes[i], "fragment size diverged at node {i}");
    }
    let theta = cfg.iff.theta;
    let via_protocol: Vec<bool> =
        (0..model.len()).map(|i| candidates[i] && sim.node(i).fragment_size() >= theta).collect();
    assert_eq!(via_protocol, central.boundary, "IFF filtering diverged under faults");

    // Phase 3: hardened grouping matches the centralized components.
    let (labels, group_msgs) =
        run_hardened_grouping(model.topology(), &central.boundary, retry, &plan)
            .expect("hardened grouping quiesces under the acceptance plan");
    let groups = group_boundaries(model.topology(), &central.boundary);
    for group in &groups {
        for &m in group {
            assert_eq!(labels[m], Some(group[0]), "node {m} mislabeled under faults");
        }
    }
    for i in 0..model.len() {
        if !central.boundary[i] {
            assert_eq!(labels[i], None, "non-member {i} acquired a label");
        }
    }

    // The radio genuinely misbehaved, and hardening has a real cost.
    assert!(ubf_msgs > 0 && group_msgs > 0);
}

#[test]
fn acceptance_plan_actually_injects_faults() {
    let model = model();
    let plan = acceptance_plan(model.len());
    let cfg = DetectorConfig::paper(10, 3);
    let retry = RetryConfig::default();
    let states_run = run_hardened_ubf(&model, &cfg.ubf, &cfg.coordinates, retry, &plan);
    // Re-run cheaply via the raw engine to inspect fault counters.
    let mut sim =
        Simulator::new(model.topology(), |id| HardenedFragmentFlood::new(id % 2 == 0, 3, 4));
    let stats = sim.run_with_faults(60 + plan.round_slack(), &plan);
    assert!(stats.faults.dropped > 0, "plan dropped nothing");
    assert!(stats.faults.crash_lost > 0, "plan crashed no deliveries");
    assert!(states_run.is_ok());
}

#[test]
fn hardened_stack_under_zero_faults_equals_plain_stack() {
    let model = model();
    let cfg = DetectorConfig::paper(10, 3);
    let retry = RetryConfig::default();
    let none = FaultPlan::none();

    let (plain_flags, _) =
        run_ubf_protocol(&model, &cfg.ubf, &cfg.coordinates).expect("plain quiesces");
    let (hard_flags, _) = run_hardened_ubf(&model, &cfg.ubf, &cfg.coordinates, retry, &none)
        .expect("hardened quiesces");
    assert_eq!(hard_flags, plain_flags);

    let central = BoundaryDetector::new(cfg).detect(&model);
    let (plain_labels, _) =
        run_grouping_protocol(model.topology(), &central.boundary).expect("plain quiesces");
    let (hard_labels, _) = run_hardened_grouping(model.topology(), &central.boundary, retry, &none)
        .expect("hardened quiesces");
    assert_eq!(hard_labels, plain_labels);
}
