//! Integration: quality of the constructed boundary surfaces — the
//! paper's 2-manifold claims, checked end to end.

use ballfit::config::{DetectorConfig, SurfaceConfig};
use ballfit::detector::BoundaryDetector;
use ballfit::surface::SurfaceBuilder;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::scenario::Scenario;

fn sphere_detection() -> (ballfit_netgen::model::NetworkModel, ballfit::BoundaryDetection) {
    let model = NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(700)
        .interior_nodes(1200)
        .target_degree(18.5)
        .seed(77)
        .build()
        .unwrap();
    let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
    (model, detection)
}

#[test]
fn sphere_mesh_at_coarse_k_is_a_closed_manifold() {
    let (model, detection) = sphere_detection();
    let surfaces =
        SurfaceBuilder::new(SurfaceConfig { k: 5, ..Default::default() }).build(&model, &detection);
    assert_eq!(surfaces.len(), 1);
    let s = &surfaces[0];
    // The paper's headline property: a locally planarized 2-manifold.
    assert_eq!(s.stats.audit.non_manifold_edges, 0, "{:?}", s.stats.audit);
    assert!(s.stats.audit.manifold_fraction() > 0.9, "too many border edges: {:?}", s.stats.audit);
    // Sphere topology when fully closed: Euler characteristic 2.
    if s.stats.audit.is_closed_manifold() {
        assert_eq!(s.stats.euler, 2);
        assert_eq!(s.mesh.genus(), Some(0));
    }
}

#[test]
fn finer_k_more_landmarks_lower_deviation() {
    let (model, detection) = sphere_detection();
    let shape = model.shape();
    let mut landmark_counts = Vec::new();
    for k in [3u32, 4, 5] {
        let surfaces = SurfaceBuilder::new(SurfaceConfig { k, ..Default::default() })
            .build(&model, &detection);
        let s = &surfaces[0];
        landmark_counts.push(s.stats.landmarks);
        // Mesh tracks the true sphere surface regardless of k.
        assert!(s.mesh.mean_abs_distance_to(&*shape) < 0.5, "k={k}: mesh deviates too far");
        // Every mesh face is a genuine empty clique: no face's edge may
        // border more than two faces.
        assert_eq!(s.stats.audit.non_manifold_edges, 0, "k={k}");
    }
    assert!(
        landmark_counts[0] > landmark_counts[1] && landmark_counts[1] > landmark_counts[2],
        "landmark counts must decrease with k: {landmark_counts:?}"
    );
}

#[test]
fn mesh_vertices_are_exactly_the_landmarks() {
    let (model, detection) = sphere_detection();
    let surfaces = SurfaceBuilder::default().build(&model, &detection);
    let s = &surfaces[0];
    assert_eq!(s.mesh.vertex_count(), s.landmarks.len());
    for (i, &lm) in s.landmarks.iter().enumerate() {
        assert_eq!(s.mesh.vertices()[i], model.positions()[lm]);
    }
    // All landmark-graph edges connect elected landmarks.
    for &(a, b) in &s.edges {
        assert!(s.landmarks.binary_search(&a).is_ok());
        assert!(s.landmarks.binary_search(&b).is_ok());
    }
}

#[test]
fn hole_boundary_also_meshes_when_large_enough() {
    let model = NetworkBuilder::new(Scenario::SpaceOneHole)
        .surface_nodes(1100)
        .interior_nodes(1700)
        .target_degree(18.5)
        .seed(5)
        .build()
        .unwrap();
    let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
    assert_eq!(detection.groups.len(), 2, "outer + hole");
    let surfaces = SurfaceBuilder::default().build(&model, &detection);
    assert_eq!(surfaces.len(), 2, "both boundaries must mesh");
    // The hole mesh hugs the hole sphere (radius 2 at the origin).
    let hole_mesh = &surfaces[1].mesh;
    for v in hole_mesh.vertices() {
        assert!((v.norm() - 2.0).abs() < 0.5, "hole landmark at {v} is far from the hole wall");
    }
}
