//! Integration: degraded and adversarial inputs are handled loudly and
//! predictably (failure injection).

use ballfit::config::{DetectorConfig, SurfaceConfig};
use ballfit::detector::BoundaryDetector;
use ballfit::surface::SurfaceBuilder;
use ballfit::Pipeline;
use ballfit_geom::Vec3;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_netgen::GenError;
use ballfit_wsn::Topology;

#[test]
fn generator_rejects_disconnected_networks() {
    let err = NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(30)
        .interior_nodes(30)
        .radio_range(0.05)
        .seed(1)
        .build()
        .unwrap_err();
    assert!(matches!(err, GenError::Disconnected { .. }));
}

#[test]
fn pipeline_survives_a_disconnected_network_when_allowed() {
    // Explicitly opting out of the connectivity check must not panic the
    // pipeline; isolated nodes are degenerate and become boundary nodes.
    let model = NetworkBuilder::new(Scenario::SolidBox)
        .surface_nodes(60)
        .interior_nodes(60)
        .radio_range(0.8)
        .require_connected(false)
        .seed(2)
        .build()
        .unwrap();
    let result = Pipeline::default().run(&model);
    assert_eq!(result.detection.boundary.len(), model.len());
}

#[test]
fn isolated_and_degenerate_nodes_are_boundary_by_default() {
    // A 3-node path plus an isolated node, positions on a line: every
    // neighborhood is degenerate (collinear or too small).
    let positions = vec![
        Vec3::ZERO,
        Vec3::new(0.5, 0.0, 0.0),
        Vec3::new(1.0, 0.0, 0.0),
        Vec3::new(9.0, 9.0, 9.0),
    ];
    let topo = Topology::from_positions(&positions, 0.7);
    let model = NetworkModel::from_parts(
        Scenario::SolidBox,
        0,
        positions,
        vec![true, true, true, true],
        0.7,
        topo,
    );
    let cfg = DetectorConfig {
        iff: ballfit::config::IffConfig { theta: 1, ttl: 1 },
        ..Default::default()
    };
    let detection = BoundaryDetector::new(cfg).detect(&model);
    // Collinear neighborhoods yield no balls; default config flags them.
    assert!(detection.boundary.iter().all(|&b| b), "{:?}", detection.boundary);
}

#[test]
fn duplicate_positions_do_not_break_detection() {
    let mut positions = vec![Vec3::ZERO; 5];
    positions.extend((0..40).map(|i| {
        let t = i as f64 / 40.0 * std::f64::consts::TAU;
        Vec3::new(t.cos(), t.sin(), (i % 5) as f64 * 0.2)
    }));
    let topo = Topology::from_positions(&positions, 1.2);
    let model = NetworkModel::from_parts(
        Scenario::SolidBox,
        0,
        positions.clone(),
        vec![false; positions.len()],
        1.2,
        topo,
    );
    let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
    assert_eq!(detection.boundary.len(), positions.len());
}

#[test]
fn surface_builder_handles_too_small_groups() {
    let positions = vec![Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0), Vec3::new(0.0, 0.5, 0.0)];
    let topo = Topology::from_positions(&positions, 1.0);
    let model = NetworkModel::from_parts(
        Scenario::SolidBox,
        0,
        positions,
        vec![true, true, true],
        1.0,
        topo,
    );
    let builder = SurfaceBuilder::new(SurfaceConfig::default());
    assert!(builder.build_group(&model, &[0, 1, 2]).is_none());
}

#[test]
fn hundred_percent_error_never_panics() {
    let model = NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(150)
        .interior_nodes(250)
        .target_degree(14.0)
        .seed(3)
        .build()
        .unwrap();
    for seed in 0..3 {
        let result = Pipeline::paper(100, seed).run(&model);
        assert_eq!(result.detection.boundary.len(), model.len());
    }
}
