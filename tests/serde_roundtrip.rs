//! Integration: models, meshes and statistics survive serde round trips
//! (experiment results are persisted as JSON/CSV).

use ballfit::metrics::DetectionStats;
use ballfit::Pipeline;
use ballfit_geom::mesh::TriMesh;
use ballfit_geom::Vec3;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;

fn model() -> NetworkModel {
    NetworkBuilder::new(Scenario::SolidBox)
        .surface_nodes(150)
        .interior_nodes(250)
        .target_degree(13.0)
        .require_connected(false)
        .seed(33)
        .build()
        .unwrap()
}

#[test]
fn network_model_roundtrip() {
    let m = model();
    let json = serde_json::to_string(&m).expect("serialize model");
    let back: NetworkModel = serde_json::from_str(&json).expect("deserialize model");
    assert_eq!(back.len(), m.len());
    assert_eq!(back.positions(), m.positions());
    assert_eq!(back.is_surface(), m.is_surface());
    assert_eq!(back.radio_range(), m.radio_range());
    assert_eq!(back.topology(), m.topology());
    assert_eq!(back.scenario(), m.scenario());
    // The reconstructed shape must behave identically.
    let p = Vec3::new(0.3, -0.2, 0.1);
    assert_eq!(back.shape().distance(p), m.shape().distance(p));
}

#[test]
fn mesh_roundtrip() {
    let mesh = TriMesh::new(
        vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z],
        vec![[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]],
    )
    .unwrap();
    let json = serde_json::to_string(&mesh).unwrap();
    let back: TriMesh = serde_json::from_str(&json).unwrap();
    assert_eq!(back, mesh);
    assert_eq!(back.euler_characteristic(), 2);
}

#[test]
fn fault_plan_roundtrip() {
    let plan = ballfit_wsn::faults::FaultPlan::none()
        .with_seed(42)
        .with_loss(0.15)
        .with_duplication(0.05)
        .with_max_delay(2)
        .with_crashes([
            ballfit_wsn::faults::Crash { node: 3, down_at: 2, up_at: Some(5) },
            ballfit_wsn::faults::Crash { node: 7, down_at: 1, up_at: None },
        ]);
    let json = serde_json::to_string(&plan).unwrap();
    let back: ballfit_wsn::faults::FaultPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back, plan);
    // A deserialized plan drives the identical fault stream.
    assert_eq!(back.stream().next_u64(), plan.stream().next_u64());
    assert_eq!(back.schedule(), plan.schedule());
}

#[test]
fn churn_plan_roundtrip() {
    let plan = ballfit_wsn::churn::ChurnPlan::none()
        .with_seed(9)
        .with_epochs(6)
        .with_join_rate(0.02)
        .with_leave_rate(0.03)
        .with_move_rate(0.05)
        .with_max_drift(0.75);
    let json = serde_json::to_string(&plan).unwrap();
    let back: ballfit_wsn::churn::ChurnPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back, plan);
    // A deserialized plan replays the identical event schedule.
    assert_eq!(back.schedule(200), plan.schedule(200));
}

#[test]
fn topology_snapshot_roundtrip() {
    let m = model();
    let mut dynamic = ballfit_wsn::churn::DynamicTopology::new(m.positions(), m.radio_range());
    dynamic.apply(&ballfit_wsn::churn::TopologyEvent::Leave { node: 3 });
    let snap = dynamic.snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: ballfit_wsn::churn::TopologySnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
    // The revived snapshot rebuilds the identical adjacency structure.
    let restored = ballfit_wsn::churn::DynamicTopology::restore(&back);
    assert_eq!(restored.topology(), dynamic.topology());
    assert_eq!(restored.positions(), dynamic.positions());
}

#[test]
fn detector_checkpoint_roundtrip() {
    let m = model();
    let dynamic = ballfit_wsn::churn::DynamicTopology::new(m.positions(), m.radio_range());
    let detector = ballfit::incremental::IncrementalDetector::new(
        ballfit::config::DetectorConfig::default(),
        &dynamic,
    );
    let checkpoint = detector.checkpoint();
    let json = serde_json::to_string(&checkpoint).unwrap();
    let back: ballfit::incremental::DetectorCheckpoint = serde_json::from_str(&json).unwrap();
    assert_eq!(back, checkpoint);
    // Restoring from the round-tripped checkpoint revives equal state.
    let restored = ballfit::incremental::IncrementalDetector::restore(
        &back,
        ballfit_par::Parallelism::sequential(),
    );
    assert_eq!(restored.checkpoint(), checkpoint);
    assert_eq!(restored.boundary(), detector.boundary());
}

#[test]
fn detection_outcome_roundtrip() {
    use ballfit::chaos::{DegradeCause, DetectionOutcome};
    let exact = DetectionOutcome::Exact { boundary: vec![1, 4, 9] };
    let degraded = DetectionOutcome::Degraded {
        boundary: vec![2, 3],
        coverage: 0.93,
        unreached: vec![5, 8],
        cause: DegradeCause::Partition,
    };
    for outcome in [exact, degraded] {
        let json = serde_json::to_string(&outcome).unwrap();
        let back: DetectionOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, outcome);
    }
    // The trace-verdict string form is part of the stable surface too.
    assert_eq!(DegradeCause::RetryExhausted.as_str(), "retry-exhausted");
}

#[test]
fn run_stats_roundtrip() {
    let m = model();
    let candidates: Vec<bool> = (0..m.len()).map(|i| i % 3 == 0).collect();
    let mut sim = ballfit_wsn::sim::Simulator::new(m.topology(), |id| {
        ballfit_wsn::flood::FragmentFlood::new(candidates[id], 4)
    });
    let stats = sim.run(8);
    // The per-round vectors are genuine decompositions of the totals.
    assert_eq!(stats.per_round_messages.iter().sum::<u64>(), stats.messages);
    assert_eq!(stats.per_round_bytes.iter().sum::<u64>(), stats.bytes);
    let json = serde_json::to_string(&stats).unwrap();
    let back: ballfit_wsn::sim::RunStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
    // RunStats carries a total order and hashing for result-set dedup.
    assert_eq!(back.cmp(&stats), std::cmp::Ordering::Equal);
}

#[test]
fn detection_stats_roundtrip() {
    let m = model();
    let result = Pipeline::default().run(&m);
    let json = serde_json::to_string(&result.stats).unwrap();
    let back: DetectionStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, result.stats);
}

#[test]
fn surface_stats_roundtrip() {
    let m = model();
    let result = Pipeline::default().run(&m);
    if let Some(surface) = result.surfaces.first() {
        let json = serde_json::to_string(&surface.stats).unwrap();
        let back: ballfit::surface::SurfaceStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, surface.stats);
    }
}
