//! Integration: models, meshes and statistics survive serde round trips
//! (experiment results are persisted as JSON/CSV).

use ballfit::metrics::DetectionStats;
use ballfit::Pipeline;
use ballfit_geom::mesh::TriMesh;
use ballfit_geom::Vec3;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;

fn model() -> NetworkModel {
    NetworkBuilder::new(Scenario::SolidBox)
        .surface_nodes(150)
        .interior_nodes(250)
        .target_degree(13.0)
        .require_connected(false)
        .seed(33)
        .build()
        .unwrap()
}

#[test]
fn network_model_roundtrip() {
    let m = model();
    let json = serde_json::to_string(&m).expect("serialize model");
    let back: NetworkModel = serde_json::from_str(&json).expect("deserialize model");
    assert_eq!(back.len(), m.len());
    assert_eq!(back.positions(), m.positions());
    assert_eq!(back.is_surface(), m.is_surface());
    assert_eq!(back.radio_range(), m.radio_range());
    assert_eq!(back.topology(), m.topology());
    assert_eq!(back.scenario(), m.scenario());
    // The reconstructed shape must behave identically.
    let p = Vec3::new(0.3, -0.2, 0.1);
    assert_eq!(back.shape().distance(p), m.shape().distance(p));
}

#[test]
fn mesh_roundtrip() {
    let mesh = TriMesh::new(
        vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z],
        vec![[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]],
    )
    .unwrap();
    let json = serde_json::to_string(&mesh).unwrap();
    let back: TriMesh = serde_json::from_str(&json).unwrap();
    assert_eq!(back, mesh);
    assert_eq!(back.euler_characteristic(), 2);
}

#[test]
fn fault_plan_roundtrip() {
    let plan = ballfit_wsn::faults::FaultPlan::none()
        .with_seed(42)
        .with_loss(0.15)
        .with_duplication(0.05)
        .with_max_delay(2)
        .with_crashes([
            ballfit_wsn::faults::Crash { node: 3, down_at: 2, up_at: Some(5) },
            ballfit_wsn::faults::Crash { node: 7, down_at: 1, up_at: None },
        ]);
    let json = serde_json::to_string(&plan).unwrap();
    let back: ballfit_wsn::faults::FaultPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back, plan);
    // A deserialized plan drives the identical fault stream.
    assert_eq!(back.stream().next_u64(), plan.stream().next_u64());
    assert_eq!(back.schedule(), plan.schedule());
}

#[test]
fn churn_plan_roundtrip() {
    let plan = ballfit_wsn::churn::ChurnPlan::none()
        .with_seed(9)
        .with_epochs(6)
        .with_join_rate(0.02)
        .with_leave_rate(0.03)
        .with_move_rate(0.05)
        .with_max_drift(0.75);
    let json = serde_json::to_string(&plan).unwrap();
    let back: ballfit_wsn::churn::ChurnPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back, plan);
    // A deserialized plan replays the identical event schedule.
    assert_eq!(back.schedule(200), plan.schedule(200));
}

#[test]
fn topology_snapshot_roundtrip() {
    let m = model();
    let mut dynamic = ballfit_wsn::churn::DynamicTopology::new(m.positions(), m.radio_range());
    dynamic.apply(&ballfit_wsn::churn::TopologyEvent::Leave { node: 3 });
    let snap = dynamic.snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: ballfit_wsn::churn::TopologySnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
    // The revived snapshot rebuilds the identical adjacency structure.
    let restored = ballfit_wsn::churn::DynamicTopology::restore(&back);
    assert_eq!(restored.topology(), dynamic.topology());
    assert_eq!(restored.positions(), dynamic.positions());
}

#[test]
fn detector_checkpoint_roundtrip() {
    let m = model();
    let dynamic = ballfit_wsn::churn::DynamicTopology::new(m.positions(), m.radio_range());
    let detector = ballfit::incremental::IncrementalDetector::new(
        ballfit::config::DetectorConfig::default(),
        &dynamic,
    );
    let checkpoint = detector.checkpoint();
    let json = serde_json::to_string(&checkpoint).unwrap();
    let back: ballfit::incremental::DetectorCheckpoint = serde_json::from_str(&json).unwrap();
    assert_eq!(back, checkpoint);
    // Restoring from the round-tripped checkpoint revives equal state.
    let restored = ballfit::incremental::IncrementalDetector::restore(
        &back,
        ballfit_par::Parallelism::sequential(),
    );
    assert_eq!(restored.checkpoint(), checkpoint);
    assert_eq!(restored.boundary(), detector.boundary());
}

#[test]
fn detection_outcome_roundtrip() {
    use ballfit::chaos::{DegradeCause, DetectionOutcome};
    let exact = DetectionOutcome::Exact { boundary: vec![1, 4, 9] };
    let degraded = DetectionOutcome::Degraded {
        boundary: vec![2, 3],
        coverage: 0.93,
        unreached: vec![5, 8],
        cause: DegradeCause::Partition,
    };
    for outcome in [exact, degraded] {
        let json = serde_json::to_string(&outcome).unwrap();
        let back: DetectionOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, outcome);
    }
    // The trace-verdict string form is part of the stable surface too.
    assert_eq!(DegradeCause::RetryExhausted.as_str(), "retry-exhausted");
}

#[test]
fn run_stats_roundtrip() {
    let m = model();
    let candidates: Vec<bool> = (0..m.len()).map(|i| i % 3 == 0).collect();
    let mut sim = ballfit_wsn::sim::Simulator::new(m.topology(), |id| {
        ballfit_wsn::flood::FragmentFlood::new(candidates[id], 4)
    });
    let stats = sim.run(8);
    // The per-round vectors are genuine decompositions of the totals.
    assert_eq!(stats.per_round_messages.iter().sum::<u64>(), stats.messages);
    assert_eq!(stats.per_round_bytes.iter().sum::<u64>(), stats.bytes);
    let json = serde_json::to_string(&stats).unwrap();
    let back: ballfit_wsn::sim::RunStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
    // RunStats carries a total order and hashing for result-set dedup.
    assert_eq!(back.cmp(&stats), std::cmp::Ordering::Equal);
}

#[test]
fn detection_stats_roundtrip() {
    let m = model();
    let result = Pipeline::default().run(&m);
    let json = serde_json::to_string(&result.stats).unwrap();
    let back: DetectionStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, result.stats);
}

#[test]
fn surface_stats_roundtrip() {
    let m = model();
    let result = Pipeline::default().run(&m);
    if let Some(surface) = result.surfaces.first() {
        let json = serde_json::to_string(&surface.stats).unwrap();
        let back: ballfit::surface::SurfaceStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, surface.stats);
    }
}

#[test]
fn serve_wire_request_roundtrip() {
    use ballfit_serve::{
        CreateSource, FaultKnobs, QueryKind, ServeRequest, WireBackend, WireCheckpoint, WireConfig,
        WireDetector, WireEvent, WireScene, WireSnapshot,
    };
    let requests = vec![
        ServeRequest::Create {
            id: "a".to_string(),
            source: CreateSource::Scene(WireScene {
                scenario: "two_holes".to_string(),
                surface: 90,
                interior: 140,
                degree: 12.5,
                seed: 3,
            }),
            config: WireConfig {
                error: Some(20),
                noise_seed: 5,
                theta: Some(16),
                ttl: Some(4),
                witness_hops: Some(2),
                backend: WireBackend::Stat,
            },
        },
        ServeRequest::Create {
            id: "b".to_string(),
            source: CreateSource::Positions {
                positions: vec![[0.0, 0.0, 0.0], [0.25, -0.5, 0.75]],
                range: 1.0,
            },
            config: WireConfig::default(),
        },
        ServeRequest::Events {
            id: "a".to_string(),
            events: vec![
                WireEvent::Join { position: [1.0, 2.0, 3.0] },
                WireEvent::Leave { node: 4 },
                WireEvent::Move { node: 2, to: [0.5, 0.5, 0.5] },
            ],
        },
        ServeRequest::Query { id: "a".to_string(), what: QueryKind::Mesh },
        ServeRequest::Checkpoint { id: "a".to_string() },
        ServeRequest::Restore {
            id: "c".to_string(),
            checkpoint: WireCheckpoint {
                epoch: 4,
                injects: 2,
                config: WireConfig::default(),
                snapshot: WireSnapshot {
                    range: 1.25,
                    positions: vec![[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]],
                    alive: vec![true, false],
                },
                detector: WireDetector {
                    candidates: vec![true, false],
                    degenerate: vec![false, true],
                    balls: vec![12, 0],
                    fragments: vec![1, 0],
                    boundary: vec![true, false],
                    groups: vec![vec![0]],
                },
            },
        },
        ServeRequest::Inject {
            id: "a".to_string(),
            faults: FaultKnobs {
                loss: 0.2,
                duplication: 0.01,
                max_delay: 2,
                crash_fraction: 0.1,
                crash_down: 2,
                crash_up: None,
                seed: 77,
            },
        },
        ServeRequest::Shutdown,
    ];
    for req in requests {
        let json = serde_json::to_string(&req).unwrap();
        let back: ServeRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
        // The serde surface and the canonical wire codec agree: a request
        // that went through serde still parses from its canonical line.
        let line = ballfit_serve::encode_request(&back);
        assert_eq!(ballfit_serve::parse_request(&line).unwrap(), req);
    }
}

#[test]
fn serve_wire_response_roundtrip() {
    use ballfit_serve::{MeshRow, ServeError, ServeResponse, StatsRow};
    let responses = vec![
        ServeResponse::Created {
            id: "a".to_string(),
            nodes: 200,
            live: 198,
            boundary: 80,
            groups: 2,
            balls: 12345,
        },
        ServeResponse::Applied {
            id: "a".to_string(),
            epoch: 3,
            applied: 2,
            promoted: 1,
            demoted: 0,
            regrouped: 4,
            halo: 31,
            balls: 88,
            boundary: 81,
            groups: 2,
        },
        ServeResponse::BoundaryNodes { id: "a".to_string(), nodes: vec![1, 5, 9] },
        ServeResponse::FragmentList { id: "a".to_string(), fragments: vec![(1, 40), (5, 41)] },
        ServeResponse::StatsRows {
            id: "a".to_string(),
            rows: vec![StatsRow {
                span: "churn-event".to_string(),
                nodes: 200,
                rounds: 0,
                messages: 0,
                bytes: 0,
                delivered: 0,
                dropped: 0,
                duplicated: 0,
                delayed: 0,
                crash_lost: 0,
                ball_tests: 64,
                tested_nodes: 7,
                retransmits: 0,
                reforwards: 0,
                verdicts: 0,
                degraded: 0,
                unreached: 0,
            }],
        },
        ServeResponse::MeshList {
            id: "a".to_string(),
            meshes: vec![MeshRow {
                group: 0,
                size: 80,
                landmarks: 12,
                faces: 20,
                euler: 2,
                manifold_ppm: 1_000_000,
            }],
        },
        ServeResponse::Injected {
            id: "a".to_string(),
            epoch: 1,
            exact: false,
            cause: "retry-exhausted".to_string(),
            coverage_ppm: 985_000,
            unreached: 3,
            boundary: 79,
            rounds: 44,
            clean_rounds: 28,
            repairs: 120,
            exhausted: 2,
            live: 195,
            crashed: 9,
        },
        ServeResponse::ShutdownOk,
        ServeResponse::Error(ServeError::DeadNode { id: "a".to_string(), node: 13 }),
    ];
    for resp in responses {
        let json = serde_json::to_string(&resp).unwrap();
        let back: ServeResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }
}

#[test]
fn wire_backend_roundtrip() {
    use ballfit_serve::{WireBackend, WireConfig};
    for backend in WireBackend::ALL {
        let json = serde_json::to_string(&backend).unwrap();
        let back: WireBackend = serde_json::from_str(&json).unwrap();
        assert_eq!(back, backend);
        // The wire spelling inverts too (serde uses variant names; the
        // canonical codec uses the registry spelling — both must hold).
        assert_eq!(WireBackend::by_name(backend.as_str()), Some(backend));
    }
    // A config that never mentions a backend keeps the reference detector.
    assert_eq!(WireConfig::default().backend, WireBackend::Ubf);
}

#[test]
fn serve_malformed_inputs_yield_typed_errors_not_panics() {
    use ballfit_serve::{QueryKind, ServeRequest, Service};
    // Parser layer: every malformed line maps to a typed code.
    for (line, code) in [
        ("", "bad-json"),
        ("{\"op\":", "bad-json"),
        ("42", "bad-request"),
        ("{\"op\":\"warp\"}", "unknown-op"),
        ("{\"op\":\"create\",\"id\":\"x\",\"positions\":[[0,0,0]],\"range\":0}", "bad-request"),
        ("{\"op\":\"inject\",\"id\":\"x\",\"faults\":{\"crash_fraction\":2}}", "bad-request"),
    ] {
        let err = ballfit_serve::parse_request(line).expect_err(line);
        assert_eq!(err.code(), code, "{line}");
    }
    // Service layer: unknown instance ids and events for crashed nodes
    // answer with typed errors and leave the service serving.
    let mut svc = Service::sequential();
    let transcript = concat!(
        "{\"op\":\"query\",\"id\":\"ghost\",\"what\":\"stats\"}\n",
        "{\"op\":\"create\",\"id\":\"n\",\"positions\":[[0,0,0],[0.5,0,0],[1,0,0]],\"range\":0.8}\n",
        "{\"op\":\"events\",\"id\":\"n\",\"events\":[{\"kind\":\"leave\",\"node\":1}]}\n",
        "{\"op\":\"events\",\"id\":\"n\",\"events\":[{\"kind\":\"move\",\"node\":1,\"to\":[0,1,0]}]}\n",
        "{\"op\":\"query\",\"id\":\"n\",\"what\":\"fragments\"}\n",
    );
    let out = svc.serve_jsonl(transcript);
    let lines: Vec<&str> = out.lines().collect();
    assert!(lines[0].starts_with("{\"err\":\"unknown-instance\""), "{out}");
    assert!(lines[1].starts_with("{\"ok\":\"create\""), "{out}");
    assert!(lines[2].starts_with("{\"ok\":\"events\""), "{out}");
    assert!(lines[3].starts_with("{\"err\":\"dead-node\""), "{out}");
    assert!(lines[4].starts_with("{\"ok\":\"query\""), "{out}");
    // The instance still answers typed queries after the rejected batch.
    assert!(matches!(
        svc.handle(&ServeRequest::Query { id: "n".to_string(), what: QueryKind::Boundary }),
        ballfit_serve::ServeResponse::BoundaryNodes { .. }
    ));
}
