//! Integration: the serve protocol's determinism contract.
//!
//! * **Replay identity** — one request log, one response log: byte-
//!   identical across repeated runs and across worker-thread counts
//!   (the E20 thread ladder).
//! * **Serve ≡ direct** — driving a single instance through the wire
//!   protocol produces exactly the state an in-process
//!   [`IncrementalDetector`] driver computes, event by event.
//! * **Checkpoint/restore through the wire** — checkpointing at event
//!   `k`, reviving on a *fresh* service, and replaying the tail matches
//!   the uninterrupted run byte-for-byte, inject epochs included.
//! * **Typed failure** — malformed lines and bad targets get typed
//!   error responses in place; nothing panics, and later requests on
//!   the same transcript are unaffected.

use ballfit::incremental::IncrementalDetector;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::churn::ChurnDriver;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_par::Parallelism;
use ballfit_serve::{
    encode_request, encode_response, CreateSource, FaultKnobs, QueryKind, ServeRequest,
    ServeResponse, Service, WireConfig, WireEvent,
};
use ballfit_wsn::churn::{ChurnPlan, DynamicTopology, TopologyEvent};

/// The E20 thread ladder.
const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

fn model(scenario: Scenario, seed: u64) -> NetworkModel {
    NetworkBuilder::new(scenario)
        .surface_nodes(120)
        .interior_nodes(180)
        .target_degree(13.0)
        .require_connected(false)
        .seed(seed)
        .build()
        .unwrap()
}

fn wire_positions(model: &NetworkModel) -> Vec<[f64; 3]> {
    model.positions().iter().map(|p| [p.x, p.y, p.z]).collect()
}

fn wire_event(ev: &TopologyEvent) -> WireEvent {
    match *ev {
        TopologyEvent::Join { position } => {
            WireEvent::Join { position: [position.x, position.y, position.z] }
        }
        TopologyEvent::Leave { node } => WireEvent::Leave { node },
        TopologyEvent::Move { node, to } => WireEvent::Move { node, to: [to.x, to.y, to.z] },
    }
}

/// A canned multi-tenant request log: three instances (one scene-built,
/// two from explicit positions), interleaved events, queries, injects,
/// and a checkpoint, closed by a shutdown.
fn multi_tenant_log() -> Vec<ServeRequest> {
    let m1 = model(Scenario::SolidSphere, 11);
    let m2 = model(Scenario::SolidBox, 12);
    let mut log = vec![
        ServeRequest::Create {
            id: "sphere".to_string(),
            source: CreateSource::Scene(ballfit_serve::WireScene {
                scenario: "sphere".to_string(),
                surface: 80,
                interior: 120,
                degree: 13.0,
                seed: 7,
            }),
            config: WireConfig { error: Some(0), ..WireConfig::default() },
        },
        ServeRequest::Create {
            id: "b1".to_string(),
            source: CreateSource::Positions {
                positions: wire_positions(&m1),
                range: m1.radio_range(),
            },
            config: WireConfig::default(),
        },
        ServeRequest::Create {
            id: "b2".to_string(),
            source: CreateSource::Positions {
                positions: wire_positions(&m2),
                range: m2.radio_range(),
            },
            config: WireConfig::default(),
        },
    ];
    let plan = ChurnPlan::none()
        .with_seed(5)
        .with_epochs(3)
        .with_join_rate(0.02)
        .with_leave_rate(0.02)
        .with_move_rate(0.03)
        .with_max_drift(0.4);
    for (i, (id, m)) in [("b1", &m1), ("b2", &m2)].iter().enumerate() {
        let mut driver = ChurnDriver::new(m, plan.seed.wrapping_add(i as u64));
        for ev in plan.schedule(m.len()) {
            let (resolved, _) = driver.step(&ev).unwrap();
            log.push(ServeRequest::Events {
                id: id.to_string(),
                events: vec![wire_event(&resolved)],
            });
        }
        log.push(ServeRequest::Query { id: id.to_string(), what: QueryKind::Boundary });
        log.push(ServeRequest::Query { id: id.to_string(), what: QueryKind::Groups });
        log.push(ServeRequest::Query { id: id.to_string(), what: QueryKind::Stats });
    }
    log.push(ServeRequest::Inject {
        id: "sphere".to_string(),
        faults: FaultKnobs { loss: 0.1, crash_fraction: 0.05, seed: 3, ..FaultKnobs::default() },
    });
    log.push(ServeRequest::Checkpoint { id: "b1".to_string() });
    log.push(ServeRequest::Query { id: "sphere".to_string(), what: QueryKind::Fragments });
    log.push(ServeRequest::Shutdown);
    log.push(ServeRequest::Query { id: "b2".to_string(), what: QueryKind::Boundary });
    log
}

#[test]
fn response_log_is_byte_identical_across_runs_and_thread_counts() {
    let log = multi_tenant_log();
    let jsonl: String = log.iter().map(|r| encode_request(r) + "\n").collect();

    let reference = Service::sequential().serve_jsonl(&jsonl);
    let again = Service::sequential().serve_jsonl(&jsonl);
    assert_eq!(reference, again, "repeat run diverged");
    assert_eq!(reference.lines().count(), log.len(), "one response line per request line");

    for threads in THREAD_LADDER {
        let out = Service::new(Parallelism::threads(threads)).serve_jsonl(&jsonl);
        assert_eq!(out, reference, "thread count {threads} changed response bytes");
    }
}

#[test]
fn serve_equals_direct_incremental_driver() {
    let m = model(Scenario::SpaceOneHole, 23);
    let plan = ChurnPlan::none()
        .with_seed(9)
        .with_epochs(4)
        .with_join_rate(0.02)
        .with_leave_rate(0.03)
        .with_move_rate(0.03)
        .with_max_drift(0.5);

    // Direct side: DynamicTopology + sequential IncrementalDetector.
    let mut driver = ChurnDriver::new(&m, plan.seed ^ 0xBEEF);
    let schedule = plan.schedule(m.len());
    let mut direct_dyn = DynamicTopology::new(m.positions(), m.radio_range());
    let mut direct = IncrementalDetector::new_with_parallelism(
        WireConfig::default().to_detector(),
        &direct_dyn,
        Parallelism::sequential(),
    );

    // Serve side: same network via the wire, events replayed batch by batch.
    let mut svc = Service::sequential();
    let created = svc.handle(&ServeRequest::Create {
        id: "x".to_string(),
        source: CreateSource::Positions { positions: wire_positions(&m), range: m.radio_range() },
        config: WireConfig::default(),
    });
    match created {
        ServeResponse::Created { nodes, balls, .. } => {
            assert_eq!(nodes, m.len());
            assert_eq!(balls, direct.detection().balls_tested, "bootstrap ball tally diverged");
        }
        other => panic!("unexpected {other:?}"),
    }

    for ev in &schedule {
        let (resolved, _) = driver.step(ev).unwrap();

        let delta = direct_dyn.apply(&resolved);
        let diff = direct.apply(&direct_dyn, &delta);

        let resp = svc.handle(&ServeRequest::Events {
            id: "x".to_string(),
            events: vec![wire_event(&resolved)],
        });
        match resp {
            ServeResponse::Applied { promoted, demoted, regrouped, halo, balls, .. } => {
                assert_eq!(promoted, diff.promoted.len(), "promoted diverged at {resolved:?}");
                assert_eq!(demoted, diff.demoted.len(), "demoted diverged at {resolved:?}");
                assert_eq!(regrouped, diff.regrouped.len(), "regrouped diverged at {resolved:?}");
                assert_eq!(halo, diff.halo.len(), "halo diverged at {resolved:?}");
                assert_eq!(balls, diff.balls, "ball tally diverged at {resolved:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    // Final state: the wire's boundary/groups are the direct detector's.
    let expected_boundary: Vec<usize> =
        (0..direct_dyn.len()).filter(|&i| direct.boundary()[i] && direct_dyn.is_live(i)).collect();
    match svc.handle(&ServeRequest::Query { id: "x".to_string(), what: QueryKind::Boundary }) {
        ServeResponse::BoundaryNodes { nodes, .. } => assert_eq!(nodes, expected_boundary),
        other => panic!("unexpected {other:?}"),
    }
    match svc.handle(&ServeRequest::Query { id: "x".to_string(), what: QueryKind::Groups }) {
        ServeResponse::GroupList { groups, .. } => {
            assert_eq!(groups.as_slice(), direct.groups(), "group lists diverged")
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn wire_checkpoint_restore_replay_matches_uninterrupted_run() {
    let m = model(Scenario::SolidSphere, 31);
    let plan = ChurnPlan::none()
        .with_seed(41)
        .with_epochs(6)
        .with_join_rate(0.02)
        .with_leave_rate(0.03)
        .with_move_rate(0.02)
        .with_max_drift(0.4);
    let mut driver = ChurnDriver::new(&m, 77);
    let mut batches: Vec<Vec<WireEvent>> = vec![Vec::new(); plan.epochs];
    for ev in plan.schedule(m.len()) {
        let (resolved, _) = driver.step(&ev).unwrap();
        batches[ev.epoch].push(wire_event(&resolved));
    }
    let create = ServeRequest::Create {
        id: "cp".to_string(),
        source: CreateSource::Positions { positions: wire_positions(&m), range: m.radio_range() },
        config: WireConfig { error: Some(0), ..WireConfig::default() },
    };
    let events_req =
        |b: &Vec<WireEvent>| ServeRequest::Events { id: "cp".to_string(), events: b.clone() };
    let inject_req = ServeRequest::Inject {
        id: "cp".to_string(),
        faults: FaultKnobs { loss: 0.08, crash_fraction: 0.04, seed: 13, ..FaultKnobs::default() },
    };
    let finals = [
        ServeRequest::Query { id: "cp".to_string(), what: QueryKind::Boundary },
        ServeRequest::Query { id: "cp".to_string(), what: QueryKind::Groups },
        ServeRequest::Query { id: "cp".to_string(), what: QueryKind::Fragments },
    ];

    // Uninterrupted reference: create, all 6 batches with an inject in
    // the middle, then the final queries.
    let mut uninterrupted = Service::sequential();
    uninterrupted.handle(&create);
    let mut reference_tail: Vec<String> = Vec::new();
    for (k, b) in batches.iter().enumerate() {
        let resp = uninterrupted.handle(&events_req(b));
        if k >= 3 {
            reference_tail.push(encode_response(&resp));
        }
        if k == 4 {
            reference_tail.push(encode_response(&uninterrupted.handle(&inject_req)));
        }
    }
    for q in &finals {
        reference_tail.push(encode_response(&uninterrupted.handle(q)));
    }

    // Interrupted: first 3 batches, wire checkpoint, fresh service,
    // wire restore, replay the tail.
    let mut first = Service::sequential();
    first.handle(&create);
    for b in &batches[..3] {
        first.handle(&events_req(b));
    }
    let checkpoint = match first.handle(&ServeRequest::Checkpoint { id: "cp".to_string() }) {
        ServeResponse::CheckpointTaken { checkpoint, .. } => checkpoint,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(checkpoint.epoch, 3, "three events epochs before the checkpoint");

    // Round-trip the checkpoint through its wire encoding: the revived
    // service must work from parsed bytes, not shared memory.
    let restore_line = encode_request(&ServeRequest::Restore { id: "cp".to_string(), checkpoint });
    let restore = ballfit_serve::parse_request(&restore_line).unwrap();

    let mut second = Service::sequential();
    match second.handle(&restore) {
        ServeResponse::Restored { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
    let mut replay_tail: Vec<String> = Vec::new();
    for (k, b) in batches.iter().enumerate().skip(3) {
        replay_tail.push(encode_response(&second.handle(&events_req(b))));
        if k == 4 {
            replay_tail.push(encode_response(&second.handle(&inject_req)));
        }
    }
    for q in &finals {
        replay_tail.push(encode_response(&second.handle(q)));
    }
    assert_eq!(replay_tail, reference_tail, "restored replay diverged from uninterrupted run");
}

#[test]
fn malformed_lines_and_bad_targets_get_typed_errors_in_place() {
    let input = concat!(
        "{\"op\":\"events\",\"id\":\"nope\",\"events\":[]}\n",
        "{]\n",
        "{\"op\":\"create\",\"id\":\"a\",\"positions\":[[0,0,0],[0.9,0,0]],\"range\":1.0}\n",
        "{\"op\":\"create\",\"id\":\"a\",\"positions\":[[0,0,0]],\"range\":1.0}\n",
        "{\"op\":\"events\",\"id\":\"a\",\"events\":[{\"kind\":\"leave\",\"node\":0},{\"kind\":\"move\",\"node\":0,\"to\":[1,1,1]}]}\n",
        "{\"op\":\"create\",\"id\":\"s\",\"scene\":{\"scenario\":\"klein_bottle\"}}\n",
        "{\"op\":\"query\",\"id\":\"a\",\"what\":\"boundary\"}\n",
        "{\"op\":\"shutdown\"}\n",
        "{\"op\":\"query\",\"id\":\"a\",\"what\":\"boundary\"}\n",
    );
    let out = Service::sequential().serve_jsonl(input);
    let codes: Vec<&str> = out
        .lines()
        .map(|l| {
            if let Some(rest) = l.strip_prefix("{\"err\":\"") {
                rest.split('"').next().unwrap()
            } else {
                "ok"
            }
        })
        .collect();
    assert_eq!(
        codes,
        vec![
            "unknown-instance",
            "bad-json",
            "ok",
            "duplicate-instance",
            "dead-node",
            "bad-scene",
            "ok",
            "ok",
            "after-shutdown",
        ],
        "full transcript:\n{out}"
    );
}
