//! Integration: the whole stack is deterministic in its seeds — identical
//! inputs produce bit-identical outputs, which the experiment harness
//! depends on.

use ballfit::Pipeline;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::scenario::Scenario;

#[test]
fn generation_detection_and_meshing_are_deterministic() {
    let build = || {
        NetworkBuilder::new(Scenario::SpaceOneHole)
            .surface_nodes(250)
            .interior_nodes(350)
            .target_degree(15.0)
            .seed(12)
            .build()
            .unwrap()
    };
    let a = build();
    let b = build();
    assert_eq!(a.positions(), b.positions());

    let run = |m| Pipeline::paper(30, 7).run(m);
    let ra = run(&a);
    let rb = run(&b);
    assert_eq!(ra.detection.boundary, rb.detection.boundary);
    assert_eq!(ra.detection.groups, rb.detection.groups);
    assert_eq!(ra.stats, rb.stats);
    assert_eq!(ra.surfaces.len(), rb.surfaces.len());
    for (sa, sb) in ra.surfaces.iter().zip(&rb.surfaces) {
        assert_eq!(sa.landmarks, sb.landmarks);
        assert_eq!(sa.edges, sb.edges);
        assert_eq!(sa.mesh.faces(), sb.mesh.faces());
        assert_eq!(sa.stats, sb.stats);
    }
}

#[test]
fn different_noise_seeds_differ_under_error() {
    let model = NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(200)
        .interior_nodes(300)
        .target_degree(14.0)
        .seed(13)
        .build()
        .unwrap();
    let a = Pipeline::paper(60, 1).run(&model);
    let b = Pipeline::paper(60, 2).run(&model);
    // Same network, different measurement noise: boundary flags should
    // differ somewhere (60% error is extremely noisy).
    assert_ne!(a.detection.boundary, b.detection.boundary);
    // But at 0% error the noise seed is irrelevant.
    let c = Pipeline::paper(0, 1).run(&model);
    let d = Pipeline::paper(0, 2).run(&model);
    assert_eq!(c.detection.boundary, d.detection.boundary);
}
