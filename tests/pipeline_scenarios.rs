//! Integration: the full pipeline on every paper scenario, with asserted
//! quality floors at 0% and 30% distance error.

use ballfit::Pipeline;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;

fn build(scenario: Scenario, seed: u64) -> NetworkModel {
    // Hole scenarios span large shapes: they need enough surface nodes
    // that each hole boundary exceeds the IFF fragment threshold (θ=20).
    let (surface, interior) = match scenario {
        Scenario::BendedPipe => (350, 550),
        Scenario::SpaceOneHole | Scenario::SpaceTwoHoles => (900, 1400),
        _ => (450, 750),
    };
    NetworkBuilder::new(scenario)
        .surface_nodes(surface)
        .interior_nodes(interior)
        .target_degree(17.0)
        .seed(seed)
        .build()
        .unwrap_or_else(|e| panic!("{scenario}: generation failed: {e}"))
}

#[test]
fn sphere_perfect_coordinates() {
    let model = build(Scenario::SolidSphere, 1);
    let result = Pipeline::default().run(&model);
    assert!(result.stats.recall() > 0.9, "{}", result.stats);
    assert!(result.stats.precision() > 0.8, "{}", result.stats);
    assert_eq!(result.detection.groups.len(), 1);
    assert_eq!(result.surfaces.len(), 1);
    assert!(result.surfaces[0].stats.faces > 20);
    assert_eq!(result.surfaces[0].stats.audit.non_manifold_edges, 0);
}

#[test]
fn one_hole_finds_two_boundaries() {
    let model = build(Scenario::SpaceOneHole, 2);
    let result = Pipeline::paper(0, 1).run(&model);
    assert!(result.stats.recall() > 0.8, "{}", result.stats);
    assert_eq!(
        result.detection.groups.len(),
        2,
        "expected outer hull + one hole, got {} groups",
        result.detection.groups.len()
    );
    // The hole boundary is the smaller group and should still be meshable.
    assert!(result.detection.groups[1].len() > 20);
}

#[test]
fn two_holes_find_three_boundaries() {
    let model = build(Scenario::SpaceTwoHoles, 3);
    let result = Pipeline::paper(0, 1).run(&model);
    assert!(result.stats.recall() > 0.8, "{}", result.stats);
    assert_eq!(result.detection.groups.len(), 3, "outer + two holes");
}

#[test]
fn underwater_boundary_detected() {
    let model = build(Scenario::Underwater, 4);
    let result = Pipeline::paper(0, 1).run(&model);
    assert!(result.stats.recall() > 0.8, "{}", result.stats);
    assert!(!result.surfaces.is_empty());
}

#[test]
fn bended_pipe_boundary_detected() {
    let model = build(Scenario::BendedPipe, 5);
    let result = Pipeline::paper(0, 1).run(&model);
    assert!(result.stats.recall() > 0.8, "{}", result.stats);
    assert!(!result.surfaces.is_empty());
}

#[test]
fn sphere_at_30_percent_error_stays_accurate() {
    // The paper: "our algorithm performs almost perfectly to identify
    // boundary nodes when the distance measurement error is less than 30%".
    let model = build(Scenario::SolidSphere, 6);
    let result = Pipeline::paper(30, 2).run(&model);
    // Paper: "almost perfectly ... below 30%"; our knee sits at ~30%
    // (see EXPERIMENTS.md), so the floor here is the knee value.
    assert!(result.stats.recall() > 0.7, "{}", result.stats);
    // Mistaken nodes stay within 3 hops of correctly identified ones.
    if result.stats.mistaken > 0 {
        let (f1, f2, f3, _) = result.stats.mistaken_hops.fractions();
        assert!(f1 + f2 + f3 > 0.85, "mistaken nodes too far: {:?}", result.stats.mistaken_hops);
    }
}

#[test]
fn heavy_error_degrades_gracefully() {
    let model = build(Scenario::SolidSphere, 7);
    let light = Pipeline::paper(0, 3).run(&model);
    let heavy = Pipeline::paper(100, 3).run(&model);
    // Detection still produces something, and quality orders correctly.
    assert!(heavy.stats.found > 0);
    assert!(heavy.stats.recall() <= light.stats.recall() + 0.05);
}

#[test]
fn missing_nodes_hug_detected_boundary() {
    // Fig. 11(c): ~100% of missing nodes within 1 hop of a correct node.
    let model = build(Scenario::SolidSphere, 8);
    let result = Pipeline::paper(20, 4).run(&model);
    if result.stats.missing > 0 {
        let (f1, f2, _, _) = result.stats.missing_hops.fractions();
        assert!(
            f1 + f2 > 0.9,
            "missing nodes should sit next to detected boundary: {:?}",
            result.stats.missing_hops
        );
    }
}
