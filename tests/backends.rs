//! Backend conformance: the `BoundaryBackend` trait must be a zero-cost
//! reshaping of the detection entry points, not a fork of them.
//!
//! * `UbfBackend` verdicts are byte-identical to
//!   `BoundaryDetector::detect_view` on every paper-gallery scenario —
//!   the trait adapter cannot drift from the reference pipeline.
//! * Both backends are replay-bit-identical (same input ⇒ same output
//!   *and* same trace) and byte-identical across the {1, 2, 4, 8}
//!   thread ladder.
//! * The message/byte/round tallies a backend reports equal what
//!   `obs::summary` reconstructs from its trace — the numbers in
//!   `results/backend_matrix.json` are the numbers in the events.

use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetector;
use ballfit::metrics::DetectionStats;
use ballfit::view::NetView;
use ballfit_backends::{by_name, configured, StatisticalBackend, UbfBackend};
use ballfit_backends::{BoundaryBackend, NAMES};
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_obs::summary::summarize;
use ballfit_obs::Trace;
use ballfit_par::Parallelism;

fn build(scenario: Scenario, seed: u64) -> NetworkModel {
    // Same sizing rationale as tests/pipeline_scenarios.rs: hole
    // scenarios need enough surface nodes that each hole boundary
    // exceeds the IFF fragment threshold.
    let (surface, interior) = match scenario {
        Scenario::BendedPipe => (350, 550),
        Scenario::SpaceOneHole | Scenario::SpaceTwoHoles => (900, 1400),
        _ => (450, 750),
    };
    NetworkBuilder::new(scenario)
        .surface_nodes(surface)
        .interior_nodes(interior)
        .target_degree(17.0)
        .seed(seed)
        .build()
        .unwrap_or_else(|e| panic!("{scenario}: generation failed: {e}"))
}

#[test]
fn ubf_backend_matches_detect_view_on_every_gallery_scenario() {
    for (i, &scenario) in Scenario::PAPER_GALLERY.iter().enumerate() {
        let model = build(scenario, 40 + i as u64);
        let view = NetView::from_model(&model);
        let cfg = DetectorConfig::default();
        let direct = BoundaryDetector::new(cfg).detect_view(&view);
        let adapted = UbfBackend::new(cfg).detect(&view, &mut Trace::disabled());
        assert_eq!(adapted.detection, direct, "{scenario}: trait adapter diverged");
        // The UBF table exchange alone is one broadcast per node
        // (2·|E| messages); IFF and grouping add to it.
        let exchange_floor = 2 * model.topology().edge_count() as u64;
        assert!(adapted.messages > exchange_floor, "{scenario}: missing exchange traffic");
        assert!(adapted.bytes > 0 && adapted.rounds > 0, "{scenario}: empty cost tally");
    }
}

#[test]
fn ubf_backend_matches_detect_view_with_paper_coordinates() {
    let model = build(Scenario::SolidSphere, 9);
    let view = NetView::from_model(&model);
    let cfg = DetectorConfig::paper(10, 3);
    let direct = BoundaryDetector::new(cfg).detect_view(&view);
    let adapted = UbfBackend::new(cfg).detect(&view, &mut Trace::disabled());
    assert_eq!(adapted.detection, direct, "noisy-MDS adapter diverged");
}

#[test]
fn stat_backend_replays_bit_identically() {
    let model = build(Scenario::SolidSphere, 11);
    let view = NetView::from_model(&model);
    let backend = StatisticalBackend::new(42);
    let mut t1 = Trace::enabled();
    let mut t2 = Trace::enabled();
    let first = backend.detect(&view, &mut t1);
    let second = backend.detect(&view, &mut t2);
    assert_eq!(first, second, "stat backend replay diverged");
    assert_eq!(t1.records(), t2.records(), "stat backend trace diverged");
}

#[test]
fn thread_ladder_is_byte_identical_for_every_backend() {
    let model = build(Scenario::SolidSphere, 13);
    let view = NetView::from_model(&model);
    for &name in &NAMES {
        let reference = configured(name, DetectorConfig::default(), 7, Parallelism::sequential())
            .expect("registered")
            .detect(&view, &mut Trace::disabled());
        for threads in [2usize, 4, 8] {
            let got = configured(name, DetectorConfig::default(), 7, Parallelism::threads(threads))
                .expect("registered")
                .detect(&view, &mut Trace::disabled());
            assert_eq!(got, reference, "{name}: diverged at {threads} threads");
        }
    }
}

#[test]
fn reported_tallies_equal_obs_summary_totals() {
    let model = build(Scenario::SolidSphere, 17);
    let view = NetView::from_model(&model);
    for &name in &NAMES {
        let backend = by_name(name).expect("registered");
        let mut trace = Trace::enabled();
        let result = backend.detect(&view, &mut trace);
        let summary = summarize(trace.records());
        let messages: u64 = summary.rows.iter().map(|r| r.messages).sum();
        let bytes: u64 = summary.rows.iter().map(|r| r.bytes).sum();
        let rounds: u64 = summary.rows.iter().map(|r| r.rounds).sum();
        let ball_tests: u64 = summary.rows.iter().map(|r| r.ball_tests).sum();
        assert_eq!(messages, result.messages, "{name}: message tally != summary");
        assert_eq!(bytes, result.bytes, "{name}: byte tally != summary");
        // Each simulator run emits a round-0 start-phase event that
        // `RunStats::rounds` does not count, so the summary sees exactly
        // one extra round per exchange phase (ubf/iff/grouping for the
        // reference backend, degree-exchange/grouping for stat).
        let phases = match name {
            "ubf" => 3,
            "stat" => 2,
            other => panic!("unknown backend {other}: extend the phase table"),
        };
        assert_eq!(rounds, (result.rounds + phases) as u64, "{name}: round tally != summary");
        assert_eq!(ball_tests, result.ball_tests(), "{name}: ball-test tally != summary");
    }
}

#[test]
fn stat_backend_is_a_credible_cheap_rival_on_the_sphere() {
    let model = build(Scenario::SolidSphere, 5);
    let view = NetView::from_model(&model);
    let stat = StatisticalBackend::new(42).detect(&view, &mut Trace::disabled());
    let ubf = UbfBackend::new(DetectorConfig::default()).detect(&view, &mut Trace::disabled());
    let stats = DetectionStats::evaluate(&model, &stat.detection);
    // Degree statistics trade recall for traffic: well below UBF's
    // near-perfect J, far above chance, at a fraction of the messages
    // and zero ball tests.
    assert!(stats.precision() > 0.75, "stat precision collapsed: {stats}");
    assert!(stats.recall() > 0.3, "stat recall collapsed: {stats}");
    assert!(stat.messages * 2 < ubf.messages, "stat lost its traffic advantage");
    assert_eq!(stat.ball_tests(), 0, "stat fits no balls");
    assert!(ubf.ball_tests() > 0, "ubf reports its ball tests");
}
