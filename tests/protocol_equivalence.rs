//! Integration: the message-passing protocol executions agree with the
//! centralized-equivalent executors across the whole pipeline.

use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetector;
use ballfit::grouping::group_boundaries;
use ballfit::iff::apply_iff;
use ballfit::landmarks::elect_landmarks;
use ballfit::protocols::{run_grouping_protocol, run_landmark_protocol, run_ubf_protocol};
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::scenario::Scenario;
use ballfit_wsn::flood::{fragment_sizes, FragmentFlood};
use ballfit_wsn::sim::Simulator;

fn model(seed: u64) -> ballfit_netgen::model::NetworkModel {
    NetworkBuilder::new(Scenario::SpaceOneHole)
        .surface_nodes(300)
        .interior_nodes(420)
        .target_degree(14.0)
        .seed(seed)
        .build()
        .expect("model generates")
}

#[test]
fn full_pipeline_protocols_agree_with_centralized() {
    let model = model(101);
    let cfg = DetectorConfig::paper(20, 9);
    let central = BoundaryDetector::new(cfg).detect(&model);

    // Phase 1: UBF.
    let (ubf_flags, ubf_msgs) =
        run_ubf_protocol(&model, &cfg.ubf, &cfg.coordinates).expect("perfect radio quiesces");
    assert_eq!(ubf_flags, central.candidates);
    assert_eq!(ubf_msgs, 2 * model.topology().edge_count() as u64);

    // Phase 2: IFF.
    let mut sim = Simulator::new(model.topology(), |id| {
        FragmentFlood::new(central.candidates[id], cfg.iff.ttl)
    });
    assert!(sim.run(cfg.iff.ttl as usize + 2).quiescent);
    let sizes = fragment_sizes(model.topology(), cfg.iff.ttl, |n| central.candidates[n]);
    for i in 0..model.len() {
        assert_eq!(sim.node(i).fragment_size(), sizes[i]);
    }
    let boundary: Vec<bool> = (0..model.len())
        .map(|i| central.candidates[i] && sim.node(i).fragment_size() >= cfg.iff.theta)
        .collect();
    assert_eq!(boundary, apply_iff(model.topology(), &central.candidates, &cfg.iff));
    assert_eq!(boundary, central.boundary);

    // Grouping.
    let (labels, _) =
        run_grouping_protocol(model.topology(), &boundary).expect("perfect radio quiesces");
    let groups = group_boundaries(model.topology(), &boundary);
    for group in &groups {
        for &member in group {
            assert_eq!(labels[member], Some(group[0]));
        }
    }

    // Landmarks on every group that can mesh.
    for group in groups.iter().filter(|g| g.len() >= 4) {
        for k in [3u32, 4] {
            let central_lm = elect_landmarks(model.topology(), group, k);
            let (protocol_lm, _) =
                run_landmark_protocol(model.topology(), group, k).expect("election converges");
            assert_eq!(protocol_lm, central_lm, "k={k}");
        }
    }
}

#[test]
fn protocol_equivalence_across_error_levels() {
    let model = model(202);
    for error in [0u32, 40, 80] {
        let cfg = DetectorConfig::paper(error, 5);
        let central = BoundaryDetector::new(cfg).detect(&model);
        let (flags, _) =
            run_ubf_protocol(&model, &cfg.ubf, &cfg.coordinates).expect("perfect radio quiesces");
        assert_eq!(flags, central.candidates, "error={error}%");
    }
}
