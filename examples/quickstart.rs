//! Quickstart: generate a 3D network, detect its boundary, build the mesh.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ballfit::Pipeline;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a 3D wireless network inside a sphere: 400 ground-truth
    //    boundary nodes on the surface, 800 interior nodes, radio range
    //    calibrated to an average nodal degree of ~18.5 (the paper's
    //    density).
    let model = NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(400)
        .interior_nodes(800)
        .target_degree(18.5)
        .seed(2010)
        .build()?;
    println!(
        "network: {} nodes, radio range {:.3}, avg degree {:.1}, connected: {}",
        model.len(),
        model.radio_range(),
        model.topology().degree_stats().mean,
        model.topology().is_connected(),
    );

    // 2. Run the paper's pipeline with 10% distance-measurement error:
    //    local-MDS coordinates → Unit Ball Fitting → Isolated Fragment
    //    Filtering → grouping → landmark mesh construction.
    let result = Pipeline::paper(10, 1).run(&model);

    println!("detection: {}", result.stats);
    println!("mistaken nodes within 1/2/3 hops of the boundary: {:?}", result.stats.mistaken_hops);

    // 3. Inspect the constructed boundary surface.
    for (i, surface) in result.surfaces.iter().enumerate() {
        let s = &surface.stats;
        println!(
            "boundary {i}: {} nodes -> {} landmarks, {} CDG edges, {} CDM edges, \
             +{} completion edges, {} flips, {} faces (manifold fraction {:.2}, Euler {})",
            s.group_size,
            s.landmarks,
            s.cdg_edges,
            s.cdm_edges,
            s.added_edges,
            s.flips,
            s.faces,
            s.audit.manifold_fraction(),
            s.euler,
        );
    }
    Ok(())
}
