//! Interior-hole discovery (the paper's Figs. 7–8 motif): a space network
//! whose sensors drifted away from two pockets. The pipeline must report
//! three separate boundaries — the outer hull and one per hole — without
//! any global information.
//!
//! ```sh
//! cargo run --release --example hole_discovery
//! ```

use ballfit::Pipeline;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = NetworkBuilder::new(Scenario::SpaceTwoHoles)
        .surface_nodes(800)
        .interior_nodes(1500)
        .target_degree(18.5)
        .seed(8)
        .build()?;
    println!(
        "space network: {} nodes, avg degree {:.1}, expecting {} boundaries",
        model.len(),
        model.topology().degree_stats().mean,
        model.scenario().expected_boundaries()
    );

    let result = Pipeline::paper(10, 2).run(&model);
    println!("detection: {}", result.stats);
    println!("boundary groups found: {}", result.detection.groups.len());

    for (i, group) in result.detection.groups.iter().enumerate() {
        // Identify which boundary this is by its centroid.
        let centroid = ballfit_geom::vec3::centroid(
            &group.iter().map(|&n| model.positions()[n]).collect::<Vec<_>>(),
        );
        let kind = if i == 0 { "outer hull" } else { "interior hole" };
        println!(
            "  group {i}: {} nodes, centroid ({:.1}, {:.1}, {:.1}) — likely {kind}",
            group.len(),
            centroid.x,
            centroid.y,
            centroid.z
        );
    }

    for (i, surface) in result.surfaces.iter().enumerate() {
        println!(
            "  mesh {i}: {} landmarks, {} faces, Euler {} (sphere-like boundaries give 2)",
            surface.stats.landmarks, surface.stats.faces, surface.stats.euler
        );
    }
    Ok(())
}
