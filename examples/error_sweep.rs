//! A miniature version of the paper's Fig. 11 error sweep: detection
//! quality from 0% to 100% distance-measurement error on a small sphere
//! network, printed as a table.
//!
//! ```sh
//! cargo run --release --example error_sweep
//! ```

use ballfit::Pipeline;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::scenario::Scenario;
use ballfit_repro::{format_table, pct};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(300)
        .interior_nodes(550)
        .target_degree(16.0)
        .seed(4)
        .build()?;
    println!(
        "sphere network: {} nodes, {} ground-truth boundary nodes\n",
        model.len(),
        model.surface_count()
    );

    let mut rows = vec![vec![
        "error".to_string(),
        "found".to_string(),
        "correct".to_string(),
        "mistaken".to_string(),
        "missing".to_string(),
        "recall".to_string(),
        "mistaken ≤2 hops".to_string(),
    ]];
    for error in [0u32, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let result = Pipeline::paper(error, 1).run(&model);
        let s = &result.stats;
        let (m1, m2, _, _) = s.mistaken_hops.fractions();
        rows.push(vec![
            format!("{error}%"),
            s.found.to_string(),
            s.correct.to_string(),
            s.mistaken.to_string(),
            s.missing.to_string(),
            pct(s.recall()),
            if s.mistaken == 0 { "-".into() } else { pct(m1 + m2) },
        ]);
    }
    println!("{}", format_table(&rows));
    println!("(the paper reports near-perfect detection below ~30% error,\n with mistaken nodes concentrated within 1–2 hops of the true boundary)");
    Ok(())
}
