//! Surface construction + export on the bended pipe (Fig. 9): runs the
//! pipeline, audits the mesh (manifoldness, Euler characteristic), and
//! writes OBJ + PLY files for external viewers.
//!
//! ```sh
//! cargo run --release --example surface_mesh_export
//! ```

use std::fs::File;
use std::io::BufWriter;

use ballfit::config::SurfaceConfig;
use ballfit::Pipeline;
use ballfit_geom::io::{write_obj, write_ply};
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = NetworkBuilder::new(Scenario::BendedPipe)
        .surface_nodes(600)
        .interior_nodes(900)
        .target_degree(17.0)
        .seed(19)
        .build()?;
    println!(
        "bended pipe: {} nodes, avg degree {:.1}",
        model.len(),
        model.topology().degree_stats().mean
    );

    let mut pipeline = Pipeline::paper(0, 0);
    pipeline.surface = SurfaceConfig { k: 3, ..Default::default() };
    let result = pipeline.run(&model);
    println!("detection: {}", result.stats);

    std::fs::create_dir_all("results")?;
    for (i, surface) in result.surfaces.iter().enumerate() {
        let audit = &surface.stats.audit;
        println!(
            "mesh {i}: V={} E={} F={} | Euler {} | manifold edges {}/{} | border {} | non-manifold {}",
            surface.mesh.vertex_count(),
            surface.mesh.edge_count(),
            surface.mesh.face_count(),
            surface.stats.euler,
            audit.manifold_edges,
            audit.edges,
            audit.border_edges,
            audit.non_manifold_edges,
        );
        for record in &surface.flip_records {
            println!(
                "  flip: removed {:?}, apexes {:?}, added {:?}",
                record.removed, record.apexes, record.added
            );
        }
        let obj = format!("results/pipe_mesh_{i}.obj");
        write_obj(BufWriter::new(File::create(&obj)?), &surface.mesh)?;
        let ply = format!("results/pipe_mesh_{i}.ply");
        write_ply(BufWriter::new(File::create(&ply)?), &surface.mesh)?;
        println!("  exported {obj} and {ply}");
    }
    Ok(())
}
