//! Applications on the constructed boundary surface (the paper's
//! motivation for building 2-manifold meshes): greedy geographic routing
//! and balanced surface partition.
//!
//! ```sh
//! cargo run --release --example surface_applications
//! ```

use ballfit::applications::partition::partition_surface;
use ballfit::applications::routing::{evaluate_routing, GreedyRouter};
use ballfit::Pipeline;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(500)
        .interior_nodes(900)
        .target_degree(18.5)
        .seed(77)
        .build()?;
    let result = Pipeline::paper(10, 1).run(&model);
    let surface = result.surfaces.first().expect("sphere boundary meshes");
    println!(
        "boundary mesh: {} landmarks, {} faces, Euler {}",
        surface.stats.landmarks, surface.stats.faces, surface.stats.euler
    );

    // Greedy geographic routing over the landmark mesh.
    let router = GreedyRouter::new(surface);
    let stats = evaluate_routing(&router, 2000);
    println!(
        "greedy routing: {}/{} pairs delivered ({:.1}%), mean stretch {:.2}",
        stats.delivered,
        stats.pairs,
        100.0 * stats.success_rate(),
        stats.mean_stretch
    );

    // Partition the surface into 4 balanced regions.
    let partition = partition_surface(surface, 4);
    println!(
        "partition into {} regions (imbalance {:.2}):",
        partition.regions(),
        partition.imbalance()
    );
    for r in 0..partition.regions() {
        println!(
            "  region {r}: {} landmarks (seed vertex {})",
            partition.members(r).len(),
            partition.seeds[r]
        );
    }
    Ok(())
}
