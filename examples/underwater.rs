//! The paper's underwater reconnaissance scenario (Fig. 6): nodes from the
//! ocean surface down to a bumpy bottom. Detects the boundary (smooth
//! surface + rough floor as one closed boundary) and exports the detected
//! nodes and the constructed mesh as OBJ for visualization.
//!
//! ```sh
//! cargo run --release --example underwater
//! ```

use std::fs::File;
use std::io::BufWriter;

use ballfit::Pipeline;
use ballfit_geom::io::{write_obj, write_obj_points};
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = NetworkBuilder::new(Scenario::Underwater)
        .surface_nodes(700)
        .interior_nodes(1400)
        .target_degree(18.5)
        .seed(6)
        .build()?;
    println!(
        "underwater network: {} nodes ({} on the true boundary), avg degree {:.1}",
        model.len(),
        model.surface_count(),
        model.topology().degree_stats().mean,
    );

    let result = Pipeline::paper(10, 0).run(&model);
    println!("detection: {}", result.stats);
    println!("boundary groups: {}", result.detection.groups.len());

    std::fs::create_dir_all("results")?;

    // Detected boundary nodes as a labeled point cloud.
    let labels: Vec<&str> = (0..model.len())
        .map(|i| if result.detection.boundary[i] { "boundary" } else { "interior" })
        .collect();
    let cloud = BufWriter::new(File::create("results/underwater_nodes.obj")?);
    write_obj_points(cloud, model.positions(), Some(&labels))?;

    // The constructed triangular boundary mesh (landmark graph, Fig. 6(c)).
    for (i, surface) in result.surfaces.iter().enumerate() {
        let path = format!("results/underwater_mesh_{i}.obj");
        let out = BufWriter::new(File::create(&path)?);
        write_obj(out, &surface.mesh)?;
        println!(
            "mesh {i}: {} landmarks, {} faces, Euler {} -> {path}",
            surface.stats.landmarks, surface.stats.faces, surface.stats.euler
        );
    }

    // How closely does the mesh follow the true water body?
    let shape = model.shape();
    if let Some(surface) = result.surfaces.first() {
        println!(
            "mean landmark deviation from the true surface: {:.3} radio ranges",
            surface.mesh.mean_abs_distance_to(&*shape)
        );
    }
    Ok(())
}
