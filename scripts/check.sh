#!/usr/bin/env bash
# Single pre-PR gate for the ballfit workspace:
#
#   1. cargo fmt --check        formatting
#   2. cargo clippy -D warnings style lints ([workspace.lints] deny set)
#   3. ballfit-lint             the 10 token-level passes (determinism /
#                               locality / panic-safety / float-safety /
#                               fault-scope / churn-scope / par-scope /
#                               obs-scope / recovery-scope / serve-scope)
#                               plus the interprocedural
#                               determinism-taint / panic-reachability /
#                               transitive-locality passes and the
#                               stale-allow audit (crates/lint). The step
#                               also emits the machine-readable report
#                               twice (must be byte-identical), validates
#                               it with the in-process bench::json
#                               validator, and diffs fingerprints against
#                               the committed results/lint_baseline.json.
#                               After a deliberate lint change, regenerate
#                               the baseline and commit it:
#                                 cargo run -p ballfit-lint -- \
#                                     --json results/lint_baseline.json
#   4. cargo test               tier-1 test suite, run with
#                               BALLFIT_THREADS=2 so the deterministic
#                               pool's parallel path is exercised
#   5. robustness_sweep --smoke fault-injection sweep emits valid JSON
#                               (validated in-process via --validate)
#   6. churn_sweep --smoke      incremental-vs-full churn sweep emits
#                               valid JSON (exactness asserted per event)
#   7. cost_profile --smoke     traced cost profile emits valid JSON and a
#                               valid JSONL trace; a second run plus
#                               trace_diff pins the trace byte-identical
#   8. chaos_sweep --smoke      combined fault+churn chaos sweep emits
#                               valid JSON (adaptive recovery exercised;
#                               outcomes graded by the watchdog)
#   9. ballfit-serve replay     a canned JSONL request log piped through
#                               the daemon twice (different worker
#                               counts) must produce byte-identical,
#                               JSONL-valid response logs; then
#                               serve_load --smoke emits valid JSON
#  10. scale_ladder --smoke     CSR scaling ladder (small rungs, one
#                               subprocess per rung) emits valid JSON;
#                               two --deterministic runs must be
#                               byte-identical
#
# Usage: scripts/check.sh [--fast]
#   --fast skips clippy and runs tests in the default profile only.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
    FAST=1
fi

step() {
    echo
    echo "==> $*"
}

step "cargo fmt --check"
cargo fmt --all -- --check

if [[ "$FAST" -eq 0 ]]; then
    step "cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT

step "ballfit-lint (invariant analyzer + report + drift gate)"
cargo run -q -p ballfit-lint -- --json "$SMOKE_DIR/lint_a.json"
cargo run -q --release -p ballfit-bench --bin robustness_sweep -- --validate "$SMOKE_DIR/lint_a.json"
cargo run -q -p ballfit-lint -- --json "$SMOKE_DIR/lint_b.json"
cmp "$SMOKE_DIR/lint_a.json" "$SMOKE_DIR/lint_b.json"
cargo run -q -p ballfit-lint -- --diff results/lint_baseline.json

step "cargo test (BALLFIT_THREADS=2)"
BALLFIT_THREADS=2 cargo test -q --workspace

step "robustness_sweep --smoke (fault-injection degradation sweep)"
BALLFIT_RESULTS="$SMOKE_DIR" cargo run -q --release -p ballfit-bench --bin robustness_sweep -- --smoke
cargo run -q --release -p ballfit-bench --bin robustness_sweep -- --validate "$SMOKE_DIR/robustness_sweep.json"

step "churn_sweep --smoke (incremental boundary maintenance sweep)"
BALLFIT_RESULTS="$SMOKE_DIR" cargo run -q --release -p ballfit-bench --bin churn_sweep -- --smoke
cargo run -q --release -p ballfit-bench --bin churn_sweep -- --validate "$SMOKE_DIR/churn_sweep.json"

step "cost_profile --smoke (traced cost profile + trace determinism)"
BALLFIT_RESULTS="$SMOKE_DIR" cargo run -q --release -p ballfit-bench --bin cost_profile -- --smoke --trace "$SMOKE_DIR/cost_profile_a.jsonl"
cargo run -q --release -p ballfit-bench --bin cost_profile -- --validate "$SMOKE_DIR/cost_profile.json"
cargo run -q --release -p ballfit-bench --bin cost_profile -- --validate-trace "$SMOKE_DIR/cost_profile_a.jsonl"
BALLFIT_RESULTS="$SMOKE_DIR" cargo run -q --release -p ballfit-bench --bin cost_profile -- --smoke --trace "$SMOKE_DIR/cost_profile_b.jsonl"
cargo run -q --release -p ballfit-obs --bin trace_diff -- "$SMOKE_DIR/cost_profile_a.jsonl" "$SMOKE_DIR/cost_profile_b.jsonl"

step "chaos_sweep --smoke (faults under churn: adaptive recovery sweep)"
BALLFIT_RESULTS="$SMOKE_DIR" cargo run -q --release -p ballfit-bench --bin chaos_sweep -- --smoke
cargo run -q --release -p ballfit-bench --bin chaos_sweep -- --validate "$SMOKE_DIR/chaos_sweep.json"

step "ballfit-serve (wire replay determinism + serve_load --smoke)"
cat > "$SMOKE_DIR/serve_requests.jsonl" <<'EOF'
{"op":"create","id":"a","scene":{"scenario":"sphere","surface":80,"interior":120,"degree":13,"seed":7},"config":{"error":0}}
{"op":"events","id":"a","events":[{"kind":"join","position":[0.1,0.2,0.3]},{"kind":"leave","node":5}]}
{"op":"query","id":"a","what":"boundary"}
{"op":"query","id":"a","what":"stats"}
{"op":"inject","id":"a","faults":{"loss":0.1,"crash_fraction":0.05,"seed":3}}
{"op":"checkpoint","id":"a"}
{"op":"query","id":"nope","what":"boundary"}
{"op":"shutdown"}
EOF
cargo run -q --release -p ballfit-serve --bin ballfit-serve -- --threads 1 \
    < "$SMOKE_DIR/serve_requests.jsonl" > "$SMOKE_DIR/serve_responses_a.jsonl"
cargo run -q --release -p ballfit-serve --bin ballfit-serve -- --threads 4 \
    < "$SMOKE_DIR/serve_requests.jsonl" > "$SMOKE_DIR/serve_responses_b.jsonl"
cmp "$SMOKE_DIR/serve_responses_a.jsonl" "$SMOKE_DIR/serve_responses_b.jsonl"
cargo run -q --release -p ballfit-bench --bin serve_load -- --validate-log "$SMOKE_DIR/serve_responses_a.jsonl"
BALLFIT_RESULTS="$SMOKE_DIR" cargo run -q --release -p ballfit-bench --bin serve_load -- --smoke
cargo run -q --release -p ballfit-bench --bin serve_load -- --validate "$SMOKE_DIR/serve_load.json"

step "scale_ladder --smoke (CSR scaling ladder + byte reproducibility)"
cargo run -q --release -p ballfit-bench --bin scale_ladder -- --smoke --deterministic --out "$SMOKE_DIR/scale_ladder_a.json"
cargo run -q --release -p ballfit-bench --bin scale_ladder -- --validate "$SMOKE_DIR/scale_ladder_a.json"
cargo run -q --release -p ballfit-bench --bin scale_ladder -- --smoke --deterministic --out "$SMOKE_DIR/scale_ladder_b.json"
cmp "$SMOKE_DIR/scale_ladder_a.json" "$SMOKE_DIR/scale_ladder_b.json"

step "backend_matrix --smoke (E22 cross-backend head-to-head + byte reproducibility)"
cargo run -q --release -p ballfit-bench --bin backend_matrix -- --smoke --threads 1 --out "$SMOKE_DIR/backend_matrix_a.json"
cargo run -q --release -p ballfit-bench --bin backend_matrix -- --validate "$SMOKE_DIR/backend_matrix_a.json"
cargo run -q --release -p ballfit-bench --bin backend_matrix -- --smoke --threads 4 --out "$SMOKE_DIR/backend_matrix_b.json"
cmp "$SMOKE_DIR/backend_matrix_a.json" "$SMOKE_DIR/backend_matrix_b.json"

echo
echo "check.sh: all gates green"
