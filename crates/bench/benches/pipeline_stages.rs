//! End-to-end and per-stage benchmarks of the full pipeline on a
//! moderate network: generation, local MDS frames, UBF+IFF detection,
//! and surface construction.

use ballfit::config::{CoordinateSource, DetectorConfig, SurfaceConfig};
use ballfit::detector::BoundaryDetector;
use ballfit::iff::apply_iff;
use ballfit::localizer::neighborhood_frame;
use ballfit::surface::SurfaceBuilder;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::scenario::Scenario;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_model() -> ballfit_netgen::model::NetworkModel {
    NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(250)
        .interior_nodes(450)
        .target_degree(15.0)
        .seed(8)
        .build()
        .expect("bench network generates")
}

fn pipeline_benches(c: &mut Criterion) {
    let model = bench_model();

    c.bench_function("netgen_build_700_nodes", |b| {
        b.iter(|| {
            NetworkBuilder::new(Scenario::SolidSphere)
                .surface_nodes(250)
                .interior_nodes(450)
                .target_degree(15.0)
                .seed(std::hint::black_box(8))
                .build()
                .unwrap()
        });
    });

    c.bench_function("local_mds_frame_one_node", |b| {
        let source = CoordinateSource::paper_error(10, 1);
        let node = (0..model.len()).max_by_key(|&i| model.topology().degree(i)).unwrap();
        b.iter(|| neighborhood_frame(&model, std::hint::black_box(node), &source));
    });

    c.bench_function("detect_ground_truth_700_nodes", |b| {
        let det = BoundaryDetector::new(DetectorConfig::default());
        b.iter(|| det.detect(std::hint::black_box(&model)));
    });

    c.bench_function("detect_mds_10pct_700_nodes", |b| {
        let det = BoundaryDetector::new(DetectorConfig::paper(10, 1));
        b.iter(|| det.detect(std::hint::black_box(&model)));
    });

    let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);

    c.bench_function("iff_700_nodes", |b| {
        let cfg = ballfit::config::IffConfig::default();
        b.iter(|| apply_iff(model.topology(), std::hint::black_box(&detection.candidates), &cfg));
    });

    c.bench_function("surface_build_700_nodes", |b| {
        let builder = SurfaceBuilder::new(SurfaceConfig::default());
        b.iter(|| builder.build(std::hint::black_box(&model), &detection));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = pipeline_benches
}
criterion_main!(benches);
