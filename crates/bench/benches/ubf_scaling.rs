//! E8 — complexity microbenchmarks for Unit Ball Fitting.
//!
//! Theorem 1: a node decides by testing `Θ(ρ²)` unit balls with `Θ(ρ)`
//! emptiness checks each, i.e. `Θ(ρ³)` work in the neighborhood size ρ.
//! The `ubf_interior_by_density` group should therefore scale roughly
//! cubically in the neighbor count (interior nodes are the worst case —
//! no early exit).

use ballfit::config::UbfConfig;
use ballfit::ubf::ubf_test;
use ballfit_geom::Vec3;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An interior node at the origin caged by `n` random neighbors within
/// radius 0.9 (dense enough that no unit ball is empty).
fn interior_neighborhood(n: usize, seed: u64) -> Vec<Vec3> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = vec![Vec3::ZERO];
    while coords.len() <= n {
        let v =
            Vec3::new(rng.gen_range(-0.9..0.9), rng.gen_range(-0.9..0.9), rng.gen_range(-0.9..0.9));
        if v.norm() <= 0.9 && v.norm() > 0.05 {
            coords.push(v);
        }
    }
    coords
}

/// A boundary node: neighbors fill only the lower half-space.
fn boundary_neighborhood(n: usize, seed: u64) -> Vec<Vec3> {
    interior_neighborhood(2 * n, seed).into_iter().filter(|v| v.z <= 0.0).take(n + 1).collect()
}

fn ubf_benches(c: &mut Criterion) {
    let cfg = UbfConfig::default();

    let mut group = c.benchmark_group("ubf_interior_by_density");
    for &n in &[10usize, 15, 20, 30, 40] {
        let coords = interior_neighborhood(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &coords, |b, coords| {
            b.iter(|| ubf_test(std::hint::black_box(coords), 0, 1.0, &cfg));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ubf_boundary_early_exit");
    for &n in &[10usize, 20, 40] {
        let coords = boundary_neighborhood(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &coords, |b, coords| {
            b.iter(|| {
                let out = ubf_test(std::hint::black_box(coords), 0, 1.0, &cfg);
                assert!(out.is_boundary);
                out
            });
        });
    }
    group.finish();

    c.bench_function("balls_through_three_points", |b| {
        let p = [Vec3::new(0.4, 0.1, -0.2), Vec3::new(-0.3, 0.5, 0.1), Vec3::new(0.2, -0.4, 0.3)];
        b.iter(|| {
            ballfit_geom::sphere::balls_through_three_points(
                std::hint::black_box(p[0]),
                p[1],
                p[2],
                1.0,
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = ubf_benches
}
criterion_main!(benches);
