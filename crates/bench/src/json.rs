//! Minimal in-process JSON validator for the sweep outputs.
//!
//! `scripts/check.sh` used to pipe the smoke JSON through
//! `python3 -m json.tool` — and silently skipped the check when `python3`
//! was absent, so the gate could green-light malformed output. The bench
//! bins now validate their own files via `--validate <path>` using this
//! dependency-free recursive-descent checker (RFC 8259 syntax; no value
//! tree is built, only well-formedness is checked).

/// Validates that `src` is exactly one well-formed JSON value (plus
/// whitespace). Returns a byte offset + description on the first error.
pub fn validate(src: &str) -> Result<(), String> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the top-level value"));
    }
    Ok(())
}

/// Reads `path` and validates it with [`validate`].
pub fn validate_file(path: &std::path::Path) -> Result<(), String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    validate(&src).map_err(|e| format!("{}: {e}", path.display()))
}

/// Validates JSONL (one well-formed JSON value per non-empty line) —
/// the `ballfit-obs` trace export format. Errors carry 1-based line
/// numbers.
pub fn validate_jsonl(src: &str) -> Result<(), String> {
    for (i, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate(line).map_err(|e| format!("line {}: {e}", i + 1))?;
    }
    Ok(())
}

/// Reads `path` and validates it with [`validate_jsonl`].
pub fn validate_jsonl_file(path: &std::path::Path) -> Result<(), String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    validate_jsonl(&src).map_err(|e| format!("{}: {e}", path.display()))
}

/// Nesting guard: the sweep outputs are ~4 levels deep; anything past
/// this is malformed input, not data, and must not overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<(), String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.keyword("true"),
            Some(b'f') => self.keyword("false"),
            Some(b'n') => self.keyword("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.depth += 1;
        self.pos += 1; // consume '{'
        self.skip_ws();
        if self.eat(b'}') {
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after key"));
            }
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                self.depth -= 1;
                return Ok(());
            }
            return Err(self.err("expected ',' or '}' in object"));
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.depth += 1;
        self.pos += 1; // consume '['
        self.skip_ws();
        if self.eat(b']') {
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                self.depth -= 1;
                return Ok(());
            }
            return Err(self.err("expected ',' or ']' in array"));
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.pos += 1; // consume '"'
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                                    return Err(self.err("expected 4 hex digits after \\u"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("unescaped control character")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn keyword(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let _ = self.eat(b'-');
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected a digit")),
        }
        if self.eat(b'.') {
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.err("expected a digit after '.'"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.err("expected a digit in exponent"));
            }
            self.digits();
        }
        Ok(())
    }

    fn digits(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "null",
            "true",
            " false ",
            "0",
            "-12.5e3",
            "1e+9",
            r#""a \"quoted\" é string""#,
            "[]",
            "{}",
            "[1, 2, [3, {\"k\": null}]]",
            r#"{"meta": {"smoke": true, "nodes": 180}, "cells": [{"loss": 0.1}]}"#,
        ] {
            assert!(validate(ok).is_ok(), "should accept: {ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a: 1}",
            "nul",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\x escape\"",
            "[1] trailing",
            "NaN",
        ] {
            assert!(validate(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn rejects_runaway_nesting() {
        let deep = "[".repeat(4096);
        assert!(validate(&deep).is_err());
    }

    #[test]
    fn validates_jsonl_line_by_line() {
        assert!(validate_jsonl("").is_ok());
        assert!(validate_jsonl("{\"seq\":0}\n{\"seq\":1}\n").is_ok());
        assert!(validate_jsonl("{\"seq\":0}\n\n{\"seq\":1}").is_ok(), "blank lines are skipped");
        let err = validate_jsonl("{\"seq\":0}\n{broken\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "error must carry the line number: {err}");
    }

    #[test]
    fn validates_files() {
        let dir = std::env::temp_dir().join("ballfit_json_validate");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        std::fs::write(&good, "{\"ok\": true}\n").unwrap();
        assert!(validate_file(&good).is_ok());
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"ok\": }\n").unwrap();
        assert!(validate_file(&bad).is_err());
        assert!(validate_file(&dir.join("missing.json")).is_err());
    }
}
