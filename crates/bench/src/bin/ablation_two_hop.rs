//! E13 — ablation of UBF's witness scope (Sec. II-A2 vs II-A3).
//!
//! Lemma 1's correctness argument ranges over the full `2r` ball, but the
//! paper's Algorithm 1 deliberately restricts both ball definition and
//! emptiness witnesses to the one-hop neighborhood for a "truly localized"
//! protocol. The cost of that approximation is hidden witnesses: a ball
//! can test empty while nodes 1–2 hops away actually pierce it.
//!
//! On TetGen-like (blue-noise) workloads the approximation is nearly free
//! — that is the regime the paper evaluates. On *uniform* clouds the
//! hidden-witness false positives appear, and the 2-hop variant recovers
//! most of the lost precision at the price of one extra exchange round and
//! ~an-order-of-magnitude more ball tests.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin ablation_two_hop
//! ```

use ballfit::config::{DetectorConfig, UbfConfig};
use ballfit::detector::BoundaryDetector;
use ballfit::metrics::DetectionStats;
use ballfit_bench::{format_table, pct, write_csv};
use ballfit_netgen::builder::{NetworkBuilder, Placement};
use ballfit_netgen::scenario::Scenario;

fn main() {
    let mut table = vec![vec![
        "placement".into(),
        "witnesses".into(),
        "found".into(),
        "recall".into(),
        "precision".into(),
        "balls tested".into(),
    ]];
    let mut rows = Vec::new();
    for (placement, label) in
        [(Placement::BlueNoise, "blue-noise"), (Placement::Uniform, "uniform")]
    {
        let model = NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(450)
            .interior_nodes(750)
            .target_degree(17.0)
            .placement(placement)
            .require_connected(false)
            .seed(13)
            .build()
            .expect("ablation network generates");
        for hops in [1u32, 2] {
            let cfg = DetectorConfig {
                ubf: UbfConfig { witness_hops: hops, ..Default::default() },
                ..Default::default()
            };
            let detection = BoundaryDetector::new(cfg).detect(&model);
            let stats = DetectionStats::evaluate(&model, &detection);
            table.push(vec![
                label.into(),
                format!("{hops}-hop"),
                stats.found.to_string(),
                pct(stats.recall()),
                pct(stats.precision()),
                detection.balls_tested.to_string(),
            ]);
            rows.push(vec![
                label.into(),
                hops.to_string(),
                stats.found.to_string(),
                format!("{:.4}", stats.recall()),
                format!("{:.4}", stats.precision()),
                detection.balls_tested.to_string(),
            ]);
        }
    }
    println!("UBF witness-scope ablation (ground-truth coordinates):");
    println!("{}", format_table(&table));
    let p = write_csv(
        "ablation_two_hop.csv",
        &["placement", "witness_hops", "found", "recall", "precision", "balls_tested"],
        &rows,
    );
    println!("wrote {}", p.display());
}
