//! E5 — Fig. 1(b–f): the surface-construction pipeline stage by stage on
//! one network: boundary nodes → landmarks → CDG → CDM → triangular mesh.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin fig1_pipeline_stages [-- --small]
//! ```
//!
//! Prints per-boundary stage counters and exports the final meshes as OBJ.

use ballfit::config::{DetectorConfig, SurfaceConfig};
use ballfit::detector::BoundaryDetector;
use ballfit::surface::SurfaceBuilder;
use ballfit_bench::{export_mesh, fig1_network, fig1_network_small, format_table};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let model = if small { fig1_network_small(1) } else { fig1_network(1) };
    println!(
        "network: {} nodes, avg degree {:.1}, scenario {} (expected boundaries: {})",
        model.len(),
        model.topology().degree_stats().mean,
        model.scenario(),
        model.scenario().expected_boundaries()
    );

    // Fig. 1(b): boundary detection (ground-truth coordinates — the figure
    // panel is the error-free pipeline; Figs. 1(j–l) add errors).
    let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
    println!(
        "detected boundary nodes: {} in {} groups (balls tested: {})",
        detection.boundary_count(),
        detection.groups.len(),
        detection.balls_tested
    );

    // Figs. 1(c–f): landmarks, CDG, CDM, triangulation, flips — per group.
    let surfaces = SurfaceBuilder::new(SurfaceConfig::default()).build(&model, &detection);
    let mut table = vec![vec![
        "boundary".into(),
        "nodes".into(),
        "landmarks".into(),
        "CDG".into(),
        "CDM".into(),
        "added".into(),
        "dropped".into(),
        "flips".into(),
        "faces".into(),
        "manifold%".into(),
        "Euler".into(),
    ]];
    for (i, s) in surfaces.iter().enumerate() {
        let st = &s.stats;
        table.push(vec![
            i.to_string(),
            st.group_size.to_string(),
            st.landmarks.to_string(),
            st.cdg_edges.to_string(),
            st.cdm_edges.to_string(),
            st.added_edges.to_string(),
            st.dropped_edges.to_string(),
            st.flips.to_string(),
            st.faces.to_string(),
            format!("{:.1}", 100.0 * st.audit.manifold_fraction()),
            st.euler.to_string(),
        ]);
    }
    println!("\npipeline stages per boundary (Fig. 1(c)–1(f)):");
    println!("{}", format_table(&table));

    let shape = model.shape();
    for (i, s) in surfaces.iter().enumerate() {
        let path = export_mesh(&format!("fig1f_mesh_{i}.obj"), &s.mesh);
        println!(
            "mesh {i}: deviation from true surface {:.3} radio ranges -> {}",
            s.mesh.mean_abs_distance_to(&*shape),
            path.display()
        );
    }
}
