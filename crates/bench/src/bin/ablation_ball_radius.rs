//! E9 — ablation of the unit-ball radius `r` (Sec. II-A3): "the size of
//! holes to be detected is adjustable by varying r. If one is interested
//! in the boundary nodes of large holes only, a larger r can be chosen."
//!
//! On the one-hole network (hole radius 2 ≈ 2.2 radio ranges), sweeping
//! the ball-radius factor should keep the outer boundary detected at every
//! setting while the hole boundary disappears once the ball no longer fits
//! into the hole.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin ablation_ball_radius
//! ```

use ballfit::config::{DetectorConfig, UbfConfig};
use ballfit::detector::BoundaryDetector;
use ballfit::metrics::DetectionStats;
use ballfit_bench::{format_table, gallery_network, parallel_map, pct, write_csv};
use ballfit_netgen::scenario::Scenario;

fn main() {
    let model = gallery_network(Scenario::SpaceOneHole, 9);
    let hole_radius_in_ranges = 2.0 / model.radio_range();
    println!(
        "one-hole network: {} nodes, radio range {:.3} (hole radius ≈ {:.2} ranges)",
        model.len(),
        model.radio_range(),
        hole_radius_in_ranges
    );

    let factors = [0.75f64, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0];
    let runs = parallel_map(factors.to_vec(), |&factor| {
        let cfg = DetectorConfig {
            ubf: UbfConfig { ball_radius_factor: factor, ..Default::default() },
            ..Default::default()
        };
        let detection = BoundaryDetector::new(cfg).detect(&model);
        let stats = DetectionStats::evaluate(&model, &detection);
        (factor, detection.groups.len(), stats)
    });

    let mut table = vec![vec![
        "r factor".into(),
        "found".into(),
        "groups".into(),
        "recall".into(),
        "precision".into(),
    ]];
    let mut rows = Vec::new();
    for (factor, groups, stats) in &runs {
        table.push(vec![
            format!("{factor:.2}"),
            stats.found.to_string(),
            groups.to_string(),
            pct(stats.recall()),
            pct(stats.precision()),
        ]);
        rows.push(vec![
            format!("{factor:.2}"),
            stats.found.to_string(),
            groups.to_string(),
            format!("{:.4}", stats.recall()),
            format!("{:.4}", stats.precision()),
        ]);
    }
    println!("\nball-radius ablation (expect the hole group to vanish once r > hole radius):");
    println!("{}", format_table(&table));
    let p = write_csv(
        "ablation_ball_radius.csv",
        &["radius_factor", "found", "groups", "recall", "precision"],
        &rows,
    );
    println!("wrote {}", p.display());
}
