//! E20 — serve load: the multi-tenant daemon under concurrent instances.
//!
//! Builds one deterministic JSONL request log that creates many network
//! instances (cycling through the scenario gallery), drives each through
//! several churn epochs, interleaves boundary/stats queries, and injects
//! fault epochs on a rotating subset — then serves the log twice, once
//! sequentially and once on the full worker pool, and asserts the two
//! response logs are **byte-identical** before reporting anything. The
//! report is therefore a pure function of the request log: per-instance
//! rows (final live population, boundary size, recomputed balls, inject
//! verdicts) plus aggregate inject-round quantiles.
//!
//! Every reported quantity derives from the typed response stream — no
//! wall-clock fields — so repeated runs are byte-identical and the
//! committed `results/serve_load.json` doubles as a regression pin.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin serve_load            # full load
//! cargo run --release -p ballfit-bench --bin serve_load -- --smoke # CI smoke run
//! cargo run --release -p ballfit-bench --bin serve_load -- --validate out.json
//! ```
//!
//! Instances shard over workers (`--threads N` / `BALLFIT_THREADS`,
//! default all cores); each instance's detector runs single-threaded so
//! the response bytes are independent of the worker count — which is
//! exactly what the built-in identity assertion re-proves on every run.

use std::fmt::Write as _;
use std::path::PathBuf;

use ballfit_bench::{json, Parallelism};

use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::churn::ChurnDriver;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_serve::{
    encode_request, CreateSource, FaultKnobs, QueryKind, ServeRequest, ServeResponse, Service,
    WireConfig, WireEvent,
};
use ballfit_wsn::churn::{ChurnPlan, TopologyEvent};

struct Load {
    instances: usize,
    epochs: usize,
    surface: usize,
    interior: usize,
}

fn load(smoke: bool) -> Load {
    if smoke {
        Load { instances: 8, epochs: 2, surface: 40, interior: 60 }
    } else {
        Load { instances: 12, epochs: 5, surface: 80, interior: 120 }
    }
}

/// Fault knobs rotate with the epoch so the load covers a clean channel,
/// mild loss and heavy loss without exploding the request count.
const LOSSES: [f64; 3] = [0.0, 0.1, 0.25];

fn instance_model(scenario: Scenario, load: &Load, seed: u64) -> NetworkModel {
    NetworkBuilder::new(scenario)
        .surface_nodes(load.surface)
        .interior_nodes(load.interior)
        .target_degree(12.0)
        .require_connected(false)
        .seed(seed)
        .build()
        .expect("instance model generates")
}

fn wire_event(ev: &TopologyEvent) -> WireEvent {
    match *ev {
        TopologyEvent::Join { position } => {
            WireEvent::Join { position: [position.x, position.y, position.z] }
        }
        TopologyEvent::Leave { node } => WireEvent::Leave { node },
        TopologyEvent::Move { node, to } => WireEvent::Move { node, to: [to.x, to.y, to.z] },
    }
}

/// Builds the whole request log up front: `create` for every instance,
/// then per epoch an `events` batch + `boundary` query per instance and
/// an `inject` on the rotating third, then a final `stats` sweep, one
/// `checkpoint`, and `shutdown`. The churn streams are produced by a
/// local [`ChurnDriver`] mirror per instance, so every `events` batch is
/// valid by construction and the log is a deterministic function of the
/// seeds alone.
fn request_log(load: &Load) -> (Vec<ServeRequest>, Vec<String>) {
    let mut log = Vec::new();
    let mut ids = Vec::new();
    let mut batches: Vec<Vec<Vec<WireEvent>>> = Vec::new();

    for i in 0..load.instances {
        let scenario = Scenario::ALL[i % Scenario::ALL.len()];
        let model = instance_model(scenario, load, 100 + i as u64);
        let id = format!("{}-{i:02}", scenario.name());
        let positions: Vec<[f64; 3]> = model.positions().iter().map(|p| [p.x, p.y, p.z]).collect();
        log.push(ServeRequest::Create {
            id: id.clone(),
            source: CreateSource::Positions { positions, range: model.radio_range() },
            // Zero-noise paper config: the injected chaos epochs are
            // judged against the incremental oracle, and only matched
            // coordinates make a clean channel reproduce it exactly
            // (same contract as E19's cell config).
            config: WireConfig { error: Some(0), ..WireConfig::default() },
        });
        let plan = ChurnPlan::none()
            .with_seed(40 + i as u64)
            .with_epochs(load.epochs)
            .with_join_rate(0.02)
            .with_leave_rate(0.02)
            .with_move_rate(0.03)
            .with_max_drift(0.4 * model.radio_range());
        let mut driver = ChurnDriver::new(&model, 0xE20_0000 + i as u64);
        let mut per_epoch = vec![Vec::new(); load.epochs];
        for ev in plan.schedule(model.len()) {
            let (resolved, _) = driver.step(&ev).expect("mirror driver stays in sync");
            per_epoch[ev.epoch].push(wire_event(&resolved));
        }
        ids.push(id);
        batches.push(per_epoch);
    }

    for epoch in 0..load.epochs {
        for (i, id) in ids.iter().enumerate() {
            log.push(ServeRequest::Events { id: id.clone(), events: batches[i][epoch].clone() });
            log.push(ServeRequest::Query { id: id.clone(), what: QueryKind::Boundary });
            if (i + epoch) % 3 == 0 {
                log.push(ServeRequest::Inject {
                    id: id.clone(),
                    faults: FaultKnobs {
                        loss: LOSSES[epoch % LOSSES.len()],
                        crash_fraction: 0.04,
                        seed: (epoch * 31 + i) as u64,
                        ..FaultKnobs::default()
                    },
                });
            }
        }
    }
    for id in &ids {
        log.push(ServeRequest::Query { id: id.clone(), what: QueryKind::Stats });
    }
    log.push(ServeRequest::Checkpoint { id: ids[0].clone() });
    log.push(ServeRequest::Shutdown);
    (log, ids)
}

#[derive(Default)]
struct Row {
    nodes: usize,
    live: usize,
    boundary: usize,
    groups: usize,
    epochs: usize,
    applied: usize,
    balls: u64,
    injects: usize,
    inject_exact: usize,
    inject_rounds: Vec<usize>,
    messages: u64,
    bytes: u64,
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[usize], p: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn results_path(out: Option<PathBuf>) -> PathBuf {
    if let Some(p) = out {
        return p;
    }
    let dir = std::env::var_os("BALLFIT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("results directory is creatable");
    dir.join("serve_load.json")
}

fn main() {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out requires a path"))),
            "--threads" => {
                let n = args.next().expect("--threads requires a count");
                threads = Some(n.parse().expect("--threads requires a positive integer"));
            }
            "--validate" => {
                let path = PathBuf::from(args.next().expect("--validate requires a path"));
                match json::validate_file(&path) {
                    Ok(()) => {
                        println!("{}: valid JSON", path.display());
                        return;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            }
            "--validate-log" => {
                let path = PathBuf::from(args.next().expect("--validate-log requires a path"));
                match json::validate_jsonl_file(&path) {
                    Ok(()) => {
                        println!("{}: valid JSONL", path.display());
                        return;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            }
            other => panic!(
                "unknown argument {other} (expected --smoke / --out <path> / --threads <n> / \
                 --validate <path> / --validate-log <path>)"
            ),
        }
    }
    let parallelism = threads.map(Parallelism::threads).unwrap_or_default();
    let cores = Parallelism::available().get();

    let spec = load(smoke);
    let (log, ids) = request_log(&spec);
    let jsonl: String = log.iter().map(|r| encode_request(r) + "\n").collect();
    eprintln!(
        "serve load: {} instances x {} epochs, {} requests, {} worker(s){}",
        spec.instances,
        spec.epochs,
        log.len(),
        parallelism.get(),
        if smoke { " (smoke)" } else { "" }
    );

    // The determinism contract, re-proved on every run: the response log
    // is a pure function of the request log, independent of the pool.
    let pooled = Service::new(parallelism).serve_jsonl(&jsonl);
    let sequential = Service::new(Parallelism::sequential()).serve_jsonl(&jsonl);
    assert_eq!(pooled, sequential, "response log must not depend on the worker count");

    let responses = Service::new(parallelism).serve_log(&log);
    assert_eq!(responses.len(), log.len(), "one response per request");
    let index_of = |id: &str| ids.iter().position(|x| x == id).expect("known instance id");
    let mut rows: Vec<Row> = ids.iter().map(|_| Row::default()).collect();
    for resp in &responses {
        match resp {
            ServeResponse::Created { id, nodes, live, boundary, groups, .. } => {
                let row = &mut rows[index_of(id)];
                row.nodes = *nodes;
                row.live = *live;
                row.boundary = *boundary;
                row.groups = *groups;
            }
            ServeResponse::Applied { id, applied, balls, boundary, groups, .. } => {
                let row = &mut rows[index_of(id)];
                row.epochs += 1;
                row.applied += applied;
                row.balls += balls;
                row.boundary = *boundary;
                row.groups = *groups;
            }
            ServeResponse::Injected { id, exact, rounds, live, .. } => {
                let row = &mut rows[index_of(id)];
                row.injects += 1;
                row.inject_exact += usize::from(*exact);
                row.inject_rounds.push(*rounds);
                row.live = *live;
            }
            ServeResponse::StatsRows { id, rows: stats } => {
                let row = &mut rows[index_of(id)];
                row.messages = stats.iter().map(|r| r.messages).sum();
                row.bytes = stats.iter().map(|r| r.bytes).sum();
            }
            ServeResponse::Error(e) => panic!("load log must serve cleanly, got {e}"),
            _ => {}
        }
    }
    for (id, row) in ids.iter().zip(&rows) {
        eprintln!(
            "  {id}: {} -> {} live, boundary {} ({} groups), {} balls, {}/{} exact injects",
            row.nodes, row.live, row.boundary, row.groups, row.balls, row.inject_exact, row.injects,
        );
    }

    let mut all_rounds: Vec<usize> = rows.iter().flat_map(|r| r.inject_rounds.clone()).collect();
    all_rounds.sort_unstable();
    let injects: usize = rows.iter().map(|r| r.injects).sum();
    let exact: usize = rows.iter().map(|r| r.inject_exact).sum();

    let mut doc = String::new();
    doc.push_str("{\n");
    let _ = writeln!(
        doc,
        "  \"meta\": {{\"experiment\": \"E20-serve-load\", \"smoke\": {smoke}, \
         \"instances\": {}, \"epochs\": {}, \"requests\": {}, \
         \"surface\": {}, \"interior\": {}, \
         \"available_parallelism\": {cores}, \
         \"determinism\": \"pooled response log byte-identical to sequential, asserted per run\"}},",
        spec.instances,
        spec.epochs,
        log.len(),
        spec.surface,
        spec.interior
    );
    doc.push_str("  \"instances\": [\n");
    for (i, (id, row)) in ids.iter().zip(&rows).enumerate() {
        let _ = write!(
            doc,
            "    {{\"id\": \"{id}\", \"nodes\": {}, \"live\": {}, \"boundary\": {}, \
             \"groups\": {}, \"epochs\": {}, \"events_applied\": {}, \"balls\": {}, \
             \"injects\": {}, \"inject_exact\": {}, \"messages\": {}, \"bytes\": {}}}",
            row.nodes,
            row.live,
            row.boundary,
            row.groups,
            row.epochs,
            row.applied,
            row.balls,
            row.injects,
            row.inject_exact,
            row.messages,
            row.bytes,
        );
        doc.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    doc.push_str("  ],\n");
    let _ = writeln!(
        doc,
        "  \"aggregate\": {{\"injects\": {injects}, \"inject_exact\": {exact}, \
         \"inject_rounds_p50\": {}, \"inject_rounds_p99\": {}, \
         \"events_applied\": {}, \"balls\": {}}}",
        percentile(&all_rounds, 50.0),
        percentile(&all_rounds, 99.0),
        rows.iter().map(|r| r.applied).sum::<usize>(),
        rows.iter().map(|r| r.balls).sum::<u64>(),
    );
    doc.push_str("}\n");

    let path = results_path(out);
    std::fs::write(&path, &doc).expect("load JSON is writable");
    println!("wrote {}", path.display());
}
