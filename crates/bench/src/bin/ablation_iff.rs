//! E11 — ablation of the IFF thresholds (Sec. II-B): the paper sets
//! θ = 20 (icosahedron bound) and TTL T = 3. Under heavy distance error,
//! UBF promotes isolated interior fragments; IFF must remove them without
//! eating genuine boundaries.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin ablation_iff
//! ```

use ballfit::config::{CoordinateSource, DetectorConfig, IffConfig};
use ballfit::detector::BoundaryDetector;
use ballfit::metrics::DetectionStats;
use ballfit_bench::{format_table, gallery_network, parallel_map, pct, write_csv};
use ballfit_netgen::scenario::Scenario;

fn main() {
    let model = gallery_network(Scenario::SolidSphere, 5);
    println!("sphere network: {} nodes, 40% distance error", model.len());

    let mut configs = Vec::new();
    for theta in [1usize, 5, 10, 20, 40, 80] {
        for ttl in [1u32, 2, 3, 4] {
            configs.push(IffConfig { theta, ttl });
        }
    }
    let runs = parallel_map(configs, |&iff| {
        let cfg = DetectorConfig {
            coordinates: CoordinateSource::paper_error(40, 3),
            iff,
            ..Default::default()
        };
        let detection = BoundaryDetector::new(cfg).detect(&model);
        let candidates = detection.candidates.iter().filter(|&&b| b).count();
        let stats = DetectionStats::evaluate(&model, &detection);
        let groups = detection.groups.len();
        (iff, candidates, groups, stats)
    });

    let mut table = vec![vec![
        "theta".into(),
        "TTL".into(),
        "candidates".into(),
        "kept".into(),
        "groups".into(),
        "recall".into(),
        "precision".into(),
    ]];
    let mut rows = Vec::new();
    for (iff, candidates, groups, stats) in &runs {
        table.push(vec![
            iff.theta.to_string(),
            iff.ttl.to_string(),
            candidates.to_string(),
            stats.found.to_string(),
            groups.to_string(),
            pct(stats.recall()),
            pct(stats.precision()),
        ]);
        rows.push(vec![
            iff.theta.to_string(),
            iff.ttl.to_string(),
            candidates.to_string(),
            stats.found.to_string(),
            groups.to_string(),
            format!("{:.4}", stats.recall()),
            format!("{:.4}", stats.precision()),
        ]);
    }
    println!("\nIFF ablation (θ × TTL at 40% error; paper default θ=20, T=3):");
    println!("{}", format_table(&table));
    let p = write_csv(
        "ablation_iff.csv",
        &["theta", "ttl", "candidates", "kept", "groups", "recall", "precision"],
        &rows,
    );
    println!("wrote {}", p.display());
}
