//! E12 — protocol audit: runs every localized protocol on the round-based
//! message-passing simulator and checks it against the
//! centralized-equivalent executor, reporting message complexity.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin protocol_audit
//! ```

use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetector;
use ballfit::grouping::group_boundaries;
use ballfit::iff::apply_iff;
use ballfit::landmarks::elect_landmarks;
use ballfit::protocols::{run_grouping_protocol, run_landmark_protocol, run_ubf_protocol};
use ballfit::surface::SurfaceBuilder;
use ballfit_bench::format_table;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::scenario::Scenario;
use ballfit_wsn::flood::{fragment_sizes, FragmentFlood};
use ballfit_wsn::sim::Simulator;

fn main() {
    let model = NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(250)
        .interior_nodes(400)
        .target_degree(14.0)
        .seed(99)
        .build()
        .expect("audit network generates");
    let topo = model.topology();
    let n = model.len();
    let edges = topo.edge_count();
    println!("audit network: {n} nodes, {edges} edges");

    let cfg = DetectorConfig::paper(10, 5);
    let detector = BoundaryDetector::new(cfg);
    let central = detector.detect(&model);

    let mut table = vec![vec![
        "protocol".into(),
        "matches centralized".into(),
        "messages".into(),
        "msg/node".into(),
    ]];

    // 1. UBF: one neighbor-table broadcast per node.
    let (ubf_flags, ubf_msgs) =
        run_ubf_protocol(&model, &cfg.ubf, &cfg.coordinates).expect("perfect radio quiesces");
    table.push(vec![
        "UBF (table exchange)".into(),
        (ubf_flags == central.candidates).to_string(),
        ubf_msgs.to_string(),
        format!("{:.1}", ubf_msgs as f64 / n as f64),
    ]);

    // 2. IFF: scoped flooding with TTL 3 among candidates.
    let candidates = central.candidates.clone();
    let mut sim = Simulator::new(topo, |id| FragmentFlood::new(candidates[id], cfg.iff.ttl));
    let stats = sim.run(cfg.iff.ttl as usize + 2);
    let via_protocol: Vec<bool> =
        (0..n).map(|i| candidates[i] && sim.node(i).fragment_size() >= cfg.iff.theta).collect();
    let central_iff = apply_iff(topo, &candidates, &cfg.iff);
    let sizes_match = {
        let sizes = fragment_sizes(topo, cfg.iff.ttl, |i| candidates[i]);
        (0..n).all(|i| sim.node(i).fragment_size() == sizes[i])
    };
    table.push(vec![
        "IFF (scoped flood)".into(),
        (via_protocol == central_iff && sizes_match).to_string(),
        stats.messages.to_string(),
        format!("{:.1}", stats.messages as f64 / n as f64),
    ]);

    // 3. Grouping: min-ID label flooding.
    let (labels, group_msgs) =
        run_grouping_protocol(topo, &central.boundary).expect("perfect radio quiesces");
    let groups = group_boundaries(topo, &central.boundary);
    let grouping_ok = groups.iter().all(|g| g.iter().all(|&m| labels[m] == Some(g[0])));
    table.push(vec![
        "grouping (min-ID flood)".into(),
        grouping_ok.to_string(),
        group_msgs.to_string(),
        format!("{:.1}", group_msgs as f64 / n as f64),
    ]);

    // 4. Landmark election on the largest boundary group.
    if let Some(group) = groups.first() {
        let k = 3;
        let central_lm = elect_landmarks(topo, group, k);
        let (dist_lm, lm_msgs) = run_landmark_protocol(topo, group, k).expect("election converges");
        table.push(vec![
            "landmark election (k=3)".into(),
            (dist_lm == central_lm).to_string(),
            lm_msgs.to_string(),
            format!("{:.1}", lm_msgs as f64 / group.len() as f64),
        ]);
    }

    // 5. CDM / triangulation probes are source-routed unicasts; their cost
    //    is the total path length (one probe + one ACK per edge).
    let surfaces = SurfaceBuilder::default().build(&model, &central);
    for s in &surfaces {
        let path_hops: usize = {
            // Recover path lengths from the final edges' hop distances.
            let member = |x: usize| s.group.binary_search(&x).is_ok();
            s.edges
                .iter()
                .map(|&(a, b)| {
                    ballfit_wsn::bfs::shortest_path(topo, a, b, member)
                        .map(|p| p.len() - 1)
                        .unwrap_or(0)
                })
                .sum()
        };
        table.push(vec![
            "CDM+completion probes".into(),
            "n/a (deterministic routes)".into(),
            (2 * path_hops).to_string(),
            format!("{:.1}", (2 * path_hops) as f64 / s.group.len() as f64),
        ]);
    }

    println!("{}", format_table(&table));
    println!(
        "UBF exchanges exactly 2|E| = {} messages; IFF and grouping stay within the boundary \
         subgraph — all protocols are one-hop localized (enforced by the simulator).",
        2 * edges
    );
}
