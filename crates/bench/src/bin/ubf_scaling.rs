//! E17 — thread-scaling of the UBF candidacy sweep.
//!
//! Runs the full from-scratch detector (`detect_view`) on the Fig. 1
//! one-hole network (4210 nodes, degree 18.8) at a ladder of worker
//! thread counts, asserts that every run's detection state is
//! **byte-identical** to the single-threaded run (the `ballfit-par`
//! determinism contract), and reports per-count wall-clock plus speedup
//! over one thread. Results land in `$BALLFIT_RESULTS/ubf_scaling.json`
//! (or `results/`).
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin ubf_scaling             # 4210 nodes
//! cargo run --release -p ballfit-bench --bin ubf_scaling -- --smoke  # ~1150 nodes
//! cargo run --release -p ballfit-bench --bin ubf_scaling -- --validate out.json
//! ```
//!
//! The hardware caps what the speedup can show: on a single-core host
//! every count measures ~1×. The JSON records `available_parallelism` so
//! a reader can tell a scaling failure from a core-starved machine.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use ballfit::config::DetectorConfig;
use ballfit::detector::{BoundaryDetection, BoundaryDetector};
use ballfit::view::NetView;
use ballfit_bench::{fig1_network, fig1_network_small, json, Parallelism};
use ballfit_netgen::model::NetworkModel;

/// Thread-count ladder of the acceptance criterion.
const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// Timed repetitions per thread count; best-of is reported (the usual
/// guard against scheduler noise on a shared machine).
const REPS: usize = 3;

fn identical(a: &BoundaryDetection, b: &BoundaryDetection) -> bool {
    a.candidates == b.candidates
        && a.boundary == b.boundary
        && a.groups == b.groups
        && a.balls_tested == b.balls_tested
        && a.degenerate_nodes == b.degenerate_nodes
}

struct Row {
    threads: usize,
    best_secs: f64,
}

fn sweep(model: &NetworkModel, ladder: &[usize]) -> Vec<Row> {
    let view = NetView::from_model(model);
    let cfg = DetectorConfig::default();
    let reference =
        BoundaryDetector::new(cfg).with_parallelism(Parallelism::sequential()).detect_view(&view);

    let mut rows = Vec::new();
    for &threads in ladder {
        let det = BoundaryDetector::new(cfg).with_parallelism(Parallelism::threads(threads));
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let detection = det.detect_view(&view);
            let dt = t0.elapsed().as_secs_f64();
            assert!(
                identical(&detection, &reference),
                "detection at {threads} threads diverged from the sequential run"
            );
            best = best.min(dt);
        }
        eprintln!("  threads={threads}: best of {REPS} runs {best:.3}s (byte-identical)");
        rows.push(Row { threads, best_secs: best });
    }
    rows
}

fn results_path(out: Option<PathBuf>) -> PathBuf {
    if let Some(p) = out {
        return p;
    }
    let dir = std::env::var_os("BALLFIT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("results directory is creatable");
    dir.join("ubf_scaling.json")
}

fn main() {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out requires a path"))),
            "--trace" => {
                trace_out = Some(PathBuf::from(args.next().expect("--trace requires a path")));
            }
            "--validate" => {
                let path = PathBuf::from(args.next().expect("--validate requires a path"));
                match json::validate_file(&path) {
                    Ok(()) => {
                        println!("{}: valid JSON", path.display());
                        return;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            }
            other => {
                panic!(
                    "unknown argument {other} (expected --smoke / --out <path> / \
                     --trace <path> / --validate <path>)"
                )
            }
        }
    }

    let model = if smoke { fig1_network_small(42) } else { fig1_network(42) };
    let cores = Parallelism::available().get();
    eprintln!(
        "ubf scaling: {} nodes, thread ladder {THREAD_LADDER:?}, {cores} core(s) available{}",
        model.len(),
        if smoke { " (smoke)" } else { "" }
    );
    let rows = sweep(&model, &THREAD_LADDER);
    let base = rows[0].best_secs;

    let mut doc = String::new();
    doc.push_str("{\n");
    let _ = writeln!(
        doc,
        "  \"meta\": {{\"experiment\": \"E17-ubf-thread-scaling\", \"smoke\": {smoke}, \
         \"nodes\": {}, \"edges\": {}, \"reps\": {REPS}, \
         \"available_parallelism\": {cores}, \
         \"determinism\": \"byte-identical to sequential, asserted per run\"}},",
        model.len(),
        model.topology().edge_count()
    );
    doc.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            doc,
            "    {{\"threads\": {}, \"best_secs\": {:.6}, \"speedup_vs_1\": {:.3}}}",
            r.threads,
            r.best_secs,
            base / r.best_secs
        );
        doc.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    doc.push_str("  ]\n}\n");

    let path = results_path(out);
    std::fs::write(&path, &doc).expect("scaling JSON is writable");
    println!("wrote {}", path.display());

    if let Some(tp) = trace_out {
        // One traced sequential detection: the trace is byte-identical
        // at every thread count, so one representative run suffices.
        let mut trace = ballfit_obs::Trace::enabled();
        BoundaryDetector::new(DetectorConfig::default())
            .with_parallelism(Parallelism::sequential())
            .detect_view_traced(&NetView::from_model(&model), &mut trace);
        trace.write_jsonl(&tp).expect("trace JSONL is writable");
        println!("wrote trace {}", tp.display());
    }
}
