//! E6 — Figs. 6–10: the five scenario galleries (underwater, one hole,
//! two holes, bended pipe, sphere): boundary detection + mesh quality per
//! scenario at the paper's default settings.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin scenario_gallery
//! ```
//!
//! Emits `results/gallery.csv` and one OBJ mesh per boundary.

use ballfit::Pipeline;
use ballfit_bench::{export_mesh, format_table, gallery_network, parallel_map, pct, write_csv};
use ballfit_netgen::scenario::Scenario;

fn main() {
    let runs = parallel_map(Scenario::PAPER_GALLERY.to_vec(), |&scenario| {
        let model = gallery_network(scenario, 42);
        let result = Pipeline::paper(10, 7).run(&model);
        (scenario, model, result)
    });

    let mut table = vec![vec![
        "scenario".into(),
        "nodes".into(),
        "truth".into(),
        "recall".into(),
        "precision".into(),
        "groups".into(),
        "expected".into(),
        "meshes".into(),
        "faces".into(),
        "deviation".into(),
    ]];
    let mut rows = Vec::new();
    for (scenario, model, result) in &runs {
        let shape = model.shape();
        let faces: usize = result.surfaces.iter().map(|s| s.stats.faces).sum();
        let deviation = if result.surfaces.is_empty() {
            f64::NAN
        } else {
            result.surfaces.iter().map(|s| s.mesh.mean_abs_distance_to(&*shape)).sum::<f64>()
                / result.surfaces.len() as f64
        };
        table.push(vec![
            scenario.to_string(),
            model.len().to_string(),
            result.stats.truth.to_string(),
            pct(result.stats.recall()),
            pct(result.stats.precision()),
            result.detection.groups.len().to_string(),
            scenario.expected_boundaries().to_string(),
            result.surfaces.len().to_string(),
            faces.to_string(),
            format!("{deviation:.3}"),
        ]);
        rows.push(vec![
            scenario.name().to_string(),
            model.len().to_string(),
            result.stats.truth.to_string(),
            format!("{:.4}", result.stats.recall()),
            format!("{:.4}", result.stats.precision()),
            result.detection.groups.len().to_string(),
            scenario.expected_boundaries().to_string(),
            faces.to_string(),
            format!("{deviation:.4}"),
        ]);
        for (i, s) in result.surfaces.iter().enumerate() {
            export_mesh(&format!("gallery_{}_mesh_{i}.obj", scenario.name()), &s.mesh);
        }
    }
    println!("Figs. 6–10 — scenario gallery (10% distance error):");
    println!("{}", format_table(&table));
    let p = write_csv(
        "gallery.csv",
        &[
            "scenario",
            "nodes",
            "truth",
            "recall",
            "precision",
            "groups",
            "expected_boundaries",
            "faces",
            "mesh_deviation",
        ],
        &rows,
    );
    println!("wrote {}", p.display());
}
