//! E10 — ablation of the landmark spacing `k` (Sec. III): "k determines
//! the fineness of the mesh. It is usually set between 3 to 5. [...] The
//! larger the k, the coarser the mesh surfaces, resulting in more nodes
//! left outside."
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin ablation_k
//! ```

use ballfit::config::{DetectorConfig, SurfaceConfig};
use ballfit::detector::BoundaryDetector;
use ballfit::surface::SurfaceBuilder;
use ballfit_bench::{format_table, gallery_network, parallel_map, write_csv};
use ballfit_netgen::scenario::Scenario;

fn main() {
    let scenarios = [Scenario::SolidSphere, Scenario::BendedPipe];
    let mut table = vec![vec![
        "scenario".into(),
        "k".into(),
        "landmarks".into(),
        "faces".into(),
        "manifold%".into(),
        "deviation".into(),
        "node->mesh".into(),
        "strict manifold%".into(),
    ]];
    let mut rows = Vec::new();
    for scenario in scenarios {
        let model = gallery_network(scenario, 77);
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        let shape = model.shape();
        let runs = parallel_map(vec![3u32, 4, 5], |&k| {
            let surfaces = SurfaceBuilder::new(SurfaceConfig { k, ..Default::default() })
                .build(&model, &detection);
            (k, surfaces)
        });
        for (k, surfaces) in &runs {
            let landmarks: usize = surfaces.iter().map(|s| s.stats.landmarks).sum();
            let faces: usize = surfaces.iter().map(|s| s.stats.faces).sum();
            let manifold = if surfaces.is_empty() {
                0.0
            } else {
                surfaces.iter().map(|s| s.stats.audit.manifold_fraction()).sum::<f64>()
                    / surfaces.len() as f64
            };
            let deviation = if surfaces.is_empty() {
                f64::NAN
            } else {
                surfaces.iter().map(|s| s.mesh.mean_abs_distance_to(&*shape)).sum::<f64>()
                    / surfaces.len() as f64
            };
            // "Nodes left outside the mesh" (paper, Sec. III): a coarser
            // mesh cuts corners, leaving boundary nodes farther from the
            // nearest mesh face. Mean node→mesh distance captures that.
            let mut dist_sum = 0.0;
            let mut dist_count = 0usize;
            for s in surfaces {
                for &n in &s.group {
                    if let Some(d) = s.mesh.distance_to_point(model.positions()[n]) {
                        dist_sum += d;
                        dist_count += 1;
                    }
                }
            }
            let node_mesh = if dist_count == 0 { f64::NAN } else { dist_sum / dist_count as f64 };
            // Paper-faithful completion (no detour) for comparison.
            let strict = SurfaceBuilder::new(SurfaceConfig {
                k: *k,
                route_around: false,
                ..Default::default()
            })
            .build(&model, &detection);
            let strict_manifold = if strict.is_empty() {
                0.0
            } else {
                strict.iter().map(|s| s.stats.audit.manifold_fraction()).sum::<f64>()
                    / strict.len() as f64
            };
            table.push(vec![
                scenario.to_string(),
                k.to_string(),
                landmarks.to_string(),
                faces.to_string(),
                format!("{:.1}", 100.0 * manifold),
                format!("{deviation:.3}"),
                format!("{node_mesh:.3}"),
                format!("{:.1}", 100.0 * strict_manifold),
            ]);
            rows.push(vec![
                scenario.name().to_string(),
                k.to_string(),
                landmarks.to_string(),
                faces.to_string(),
                format!("{manifold:.4}"),
                format!("{deviation:.4}"),
                format!("{node_mesh:.4}"),
                format!("{strict_manifold:.4}"),
            ]);
        }
    }
    println!("landmark-spacing ablation (k ∈ 3..5):");
    println!("{}", format_table(&table));
    let p = write_csv(
        "ablation_k.csv",
        &[
            "scenario",
            "k",
            "landmarks",
            "faces",
            "manifold_fraction",
            "mesh_deviation",
            "node_mesh_distance",
            "strict_manifold_fraction",
        ],
        &rows,
    );
    println!("wrote {}", p.display());
}
