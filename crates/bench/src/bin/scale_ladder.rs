//! E21 — wall-time and memory scaling of the CSR pipeline, 10³ → 10⁶.
//!
//! The flat-CSR refactor of the topology storage claims near-linear
//! end-to-end scaling: one contiguous `u32` arena instead of a million
//! heap-allocated neighbor `Vec`s, struct-of-arrays positions, and
//! two-pass grid→CSR construction whose peak memory is the final arena.
//! This experiment measures that claim directly instead of trusting it:
//!
//! * A node-count ladder (10³, 10⁴, 10⁵, 10⁶) is run on two gallery
//!   shapes (SolidSphere and SpaceOneHole) at fixed expected density:
//!   surface nodes scale as n^(2/3), the radio range is calibrated once
//!   at the 10³ base rung (target degree 18.5) and scaled by
//!   (n₀/n)^(1/3) so degree stays roughly constant in the fixed volume.
//! * Every rung runs in a **fresh subprocess** (re-invoking this binary
//!   with `--rung <scenario> <n>`) so `VmHWM` in `/proc/self/status` is
//!   that rung's true peak RSS, not the high-water mark of whatever rung
//!   ran before it.
//! * Per rung: generation + detection wall time, peak RSS, measured mean
//!   degree, CSR arena size, boundary/group counts, Theorem-1 ball-test
//!   totals. Log-log fits of wall time and RSS against n estimate the
//!   scaling exponents (acceptance: wall-time exponent ≤ ~1.15).
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin scale_ladder              # full ladder
//! cargo run --release -p ballfit-bench --bin scale_ladder -- --smoke   # 2 small rungs
//! cargo run --release -p ballfit-bench --bin scale_ladder -- --smoke --deterministic
//! cargo run --release -p ballfit-bench --bin scale_ladder -- --validate out.json
//! ```
//!
//! Results land in `$BALLFIT_RESULTS/scale_ladder.json` (or `results/`).
//! `--deterministic` zeroes the measured wall/RSS fields (and their fits)
//! so `scripts/check.sh` can pin two runs byte-identical; everything else
//! in the report — structure, degrees, boundary counts, ball tests — is
//! deterministic by construction.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetector;
use ballfit_bench::json;
use ballfit_netgen::builder::{NetworkBuilder, Placement};
use ballfit_netgen::scenario::Scenario;

/// Node-count ladder of the full run.
const LADDER: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Reduced ladder for the smoke gate.
const SMOKE_LADDER: [usize; 2] = [1_000, 2_000];

/// Shapes measured (one convex gallery shape, one with an inner hole).
const SCENARIOS: [Scenario; 2] = [Scenario::SolidSphere, Scenario::SpaceOneHole];

/// Network seed family (per-scenario offset keeps clouds independent).
const SEED: u64 = 911;

/// Paper density target, calibrated once at the base rung.
const TARGET_DEGREE: f64 = 18.5;

/// Anchor for the surface-node count; scales as n^(2/3) (area vs volume).
const BASE_N: usize = 1_000;

/// Surface nodes at the anchor; scales as n^(2/3).
const BASE_SURFACE: usize = 140;

/// Degree calibration happens at this node count; other rungs scale the
/// calibrated range by (CAL_N / n)^(1/3). Calibrating mid-ladder (rather
/// than at 10³) centers the finite-size degree drift — smaller rungs
/// lose a little degree to boundary deficit, larger rungs gain a little
/// as the deficit shrinks — so the 10⁶ rung stays near nominal density
/// instead of 35% above it.
const CAL_N: usize = 10_000;

fn surface_nodes(n: usize) -> usize {
    let s = BASE_SURFACE as f64 * (n as f64 / BASE_N as f64).powf(2.0 / 3.0);
    (s.round() as usize).min(n - 1).max(1)
}

fn seed_for(scenario: Scenario) -> u64 {
    SEED + SCENARIOS.iter().position(|&s| s == scenario).expect("ladder scenario") as u64
}

/// Radio range for a rung: calibrate the [`CAL_N`] rung to the paper's
/// target degree, then scale as n^(-1/3) to hold density in the fixed
/// volume.
fn rung_range(scenario: Scenario, n: usize) -> f64 {
    let cal = NetworkBuilder::new(scenario)
        .surface_nodes(surface_nodes(CAL_N))
        .interior_nodes(CAL_N - surface_nodes(CAL_N))
        .target_degree(TARGET_DEGREE)
        .placement(Placement::Uniform)
        .require_connected(false)
        .seed(seed_for(scenario))
        .build()
        .expect("calibration rung builds");
    cal.radio_range() * (CAL_N as f64 / n as f64).powf(1.0 / 3.0)
}

fn peak_rss_mb() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Runs one rung in-process and prints its JSON row on stdout. Invoked in
/// a fresh subprocess per rung so peak RSS is per-rung.
fn run_rung(scenario: Scenario, n: usize, deterministic: bool) {
    let surface = surface_nodes(n);
    let range = rung_range(scenario, n);

    let t0 = Instant::now();
    let model = NetworkBuilder::new(scenario)
        .surface_nodes(surface)
        .interior_nodes(n - surface)
        .radio_range(range)
        .placement(Placement::Uniform)
        .require_connected(false)
        .seed(seed_for(scenario))
        .build()
        .expect("rung builds");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
    let detect_ms = t1.elapsed().as_secs_f64() * 1e3;

    let topo = model.topology();
    let boundary = detection.boundary.iter().filter(|&&b| b).count();
    let candidates = detection.candidates.iter().filter(|&&b| b).count();
    let (build_ms, detect_ms, rss) =
        if deterministic { (0.0, 0.0, 0.0) } else { (build_ms, detect_ms, peak_rss_mb()) };
    println!(
        "{{\"scenario\": \"{}\", \"n\": {}, \"surface_nodes\": {}, \"interior_nodes\": {}, \
         \"radio_range\": {:.6}, \"mean_degree\": {:.4}, \"edges\": {}, \"arena_slots\": {}, \
         \"candidates\": {}, \"boundary_nodes\": {}, \"groups\": {}, \"balls_tested\": {}, \
         \"build_wall_ms\": {:.2}, \"detect_wall_ms\": {:.2}, \"total_wall_ms\": {:.2}, \
         \"peak_rss_mb\": {:.2}}}",
        scenario.name(),
        n,
        surface,
        n - surface,
        range,
        topo.degree_stats().mean,
        topo.edge_count(),
        topo.arena_slots(),
        candidates,
        boundary,
        detection.groups.len(),
        detection.balls_tested,
        build_ms,
        detect_ms,
        build_ms + detect_ms,
        rss,
    );
}

/// Extracts the numeric value following `"key": ` in a one-line JSON row.
fn field_f64(row: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\": ");
    let start = row.find(&pat).unwrap_or_else(|| panic!("row missing {key}: {row}")) + pat.len();
    let rest = &row[start..];
    let end = rest.find([',', '}']).expect("terminated value");
    rest[..end].trim().parse().unwrap_or_else(|e| panic!("bad {key} in row: {e}"))
}

/// Least-squares slope of `ln y` against `ln x`.
fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut mx, mut my) = (0.0, 0.0);
    for &(x, y) in points {
        mx += x.ln();
        my += y.ln();
    }
    mx /= n;
    my /= n;
    let (mut cov, mut var) = (0.0, 0.0);
    for &(x, y) in points {
        cov += (x.ln() - mx) * (y.ln() - my);
        var += (x.ln() - mx) * (x.ln() - mx);
    }
    cov / var
}

fn results_path(out: Option<PathBuf>) -> PathBuf {
    if let Some(p) = out {
        return p;
    }
    let dir = std::env::var_os("BALLFIT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("results directory is creatable");
    dir.join("scale_ladder.json")
}

fn main() {
    let mut smoke = false;
    let mut deterministic = false;
    let mut out: Option<PathBuf> = None;
    let mut rung: Option<(Scenario, usize)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--deterministic" => deterministic = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out requires a path"))),
            "--rung" => {
                let name = args.next().expect("--rung requires a scenario name");
                let scenario =
                    Scenario::by_name(&name).unwrap_or_else(|| panic!("unknown scenario {name:?}"));
                let n: usize =
                    args.next().expect("--rung requires a node count").parse().expect("usize");
                rung = Some((scenario, n));
            }
            "--validate" => {
                let path = PathBuf::from(args.next().expect("--validate requires a path"));
                match json::validate_file(&path) {
                    Ok(()) => {
                        println!("{}: valid JSON", path.display());
                        return;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            }
            other => panic!(
                "unknown argument {other} (expected --smoke / --deterministic / --out <path> / \
                 --rung <scenario> <n> / --validate <path>)"
            ),
        }
    }

    if let Some((scenario, n)) = rung {
        run_rung(scenario, n, deterministic);
        return;
    }

    let ladder: &[usize] = if smoke { &SMOKE_LADDER } else { &LADDER };
    let exe = std::env::current_exe().expect("own binary path");
    eprintln!(
        "scale ladder: n in {ladder:?} on {:?}{}",
        SCENARIOS.map(|s| s.name()),
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<String> = Vec::new();
    let mut fits = String::new();
    for (si, &scenario) in SCENARIOS.iter().enumerate() {
        let mut wall_points = Vec::new();
        let mut rss_points = Vec::new();
        for &n in ladder {
            let mut cmd = Command::new(&exe);
            cmd.arg("--rung").arg(scenario.name()).arg(n.to_string());
            if deterministic {
                cmd.arg("--deterministic");
            }
            let output = cmd.output().expect("rung subprocess spawns");
            assert!(
                output.status.success(),
                "rung {} n={n} failed: {}",
                scenario.name(),
                String::from_utf8_lossy(&output.stderr)
            );
            let row = String::from_utf8(output.stdout).expect("utf8 row");
            let row = row.trim().to_string();
            eprintln!(
                "  {} n={n}: degree {:.2}, {} boundary nodes, {:.0} ms, {:.0} MB peak",
                scenario.name(),
                field_f64(&row, "mean_degree"),
                field_f64(&row, "boundary_nodes"),
                field_f64(&row, "total_wall_ms"),
                field_f64(&row, "peak_rss_mb"),
            );
            wall_points.push((n as f64, field_f64(&row, "total_wall_ms")));
            rss_points.push((n as f64, field_f64(&row, "peak_rss_mb")));
            rows.push(row);
        }
        let (wall_slope, rss_slope) = if deterministic {
            (0.0, 0.0)
        } else {
            (loglog_slope(&wall_points), loglog_slope(&rss_points))
        };
        let _ = write!(
            fits,
            "\"{0}_wall_loglog_slope\": {1:.4}, \"{0}_rss_loglog_slope\": {2:.4}",
            scenario.name(),
            wall_slope,
            rss_slope
        );
        if si + 1 < SCENARIOS.len() {
            fits.push_str(", ");
        }
        if !deterministic {
            eprintln!(
                "  {}: wall ~ n^{wall_slope:.2}, peak RSS ~ n^{rss_slope:.2}",
                scenario.name()
            );
        }
    }

    let mut doc = String::new();
    doc.push_str("{\n");
    let _ = writeln!(
        doc,
        "  \"meta\": {{\"experiment\": \"E21-scale-ladder\", \"smoke\": {smoke}, \
         \"deterministic\": {deterministic}, \"seed\": {SEED}, \
         \"target_degree\": {TARGET_DEGREE}, \"base_rung\": {BASE_N}, \
         \"scenarios\": [\"sphere\", \"one_hole\"]}},"
    );
    doc.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(doc, "    {row}");
        doc.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    doc.push_str("  ],\n");
    let _ = writeln!(doc, "  \"fits\": {{{fits}}}");
    doc.push_str("}\n");

    let path = results_path(out);
    std::fs::write(&path, &doc).expect("scale-ladder JSON is writable");
    println!("wrote {}", path.display());
}
