//! E3 — Fig. 1(i) / 11(c): hop-distance distribution of *missing*
//! boundary nodes (distance to the nearest correctly identified boundary
//! node) vs distance measurement error.
//!
//! The paper's claim: almost 100% of missing boundary nodes are within the
//! one-hop neighborhood of a correctly identified boundary node, so the
//! missing nodes are uniformly scattered and do not open "holes" in the
//! detected boundary.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin fig_missing_distribution
//! ```

use ballfit_bench::{error_sweep, fig1_network_small, format_table, pct, PAPER_ERROR_SWEEP};

fn main() {
    let model = fig1_network_small(2);
    println!("network: {} nodes ({} boundary ground truth)", model.len(), model.surface_count());
    let sweep = error_sweep(&model, &PAPER_ERROR_SWEEP, 23);

    let mut table = vec![vec![
        "error".to_string(),
        "missing".to_string(),
        "1 hop".to_string(),
        "2 hop".to_string(),
        "3 hop".to_string(),
        ">3 hop".to_string(),
    ]];
    for (e, s) in &sweep {
        let (f1, f2, f3, fb) = s.missing_hops.fractions();
        table.push(vec![
            format!("{e}%"),
            s.missing.to_string(),
            pct(f1),
            pct(f2),
            pct(f3),
            pct(fb),
        ]);
    }
    println!("\nFig. 1(i) — distribution of missing boundary nodes:");
    println!("{}", format_table(&table));
}
