//! E22 — backend matrix: the first cross-algorithm head-to-head. Every
//! registered [`BoundaryBackend`] runs over the full paper gallery, the
//! E15 fault grid, and the E16 churn grid, and each cell reports quality
//! against a reference alongside the cost totals (`messages`, `bytes`,
//! `rounds`, `ball_tests`) that `obs::summary` reconstructs from the
//! backend's own trace — the same reconstruction the conformance tests
//! pin against the backend's self-reported tallies.
//!
//! Quality references per grid:
//!
//! * **gallery** — ground-truth surface membership of the generated
//!   model (recall / precision / Jaccard as in E2).
//! * **faults** — the fault-free reference detection on the intact
//!   topology, scored over *alive* nodes only (E15 semantics). The view
//!   itself is degraded structurally: crashed nodes are isolated and
//!   each surviving link is dropped i.i.d. with the loss probability,
//!   both from seeded per-cell draws.
//! * **churn** — a from-scratch reference detection on the *final*
//!   post-churn topology, scored over live nodes (E16 semantics). The
//!   `ubf` backend scores J = 1 here by construction; the row anchors
//!   what the rivals' agreement numbers mean.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin backend_matrix            # full grid
//! cargo run --release -p ballfit-bench --bin backend_matrix -- --smoke # CI smoke run
//! cargo run --release -p ballfit-bench --bin backend_matrix -- --validate out.json
//! ```
//!
//! Grid cells run in parallel (`--threads N` / `BALLFIT_THREADS`, default
//! all cores); every backend inside a cell runs single-threaded and the
//! cells are collected in grid order, so the JSON is byte-identical at
//! every thread count — there is no wall-clock anywhere in the output.
//! `--validate <path>` checks an emitted file for JSON well-formedness
//! in-process and exits.

use std::fmt::Write as _;
use std::path::PathBuf;

use ballfit_bench::{gallery_network, json, Parallelism};

use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetector;
use ballfit::view::NetView;
use ballfit_backends::{configured, NAMES};
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::churn::ChurnDriver;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_obs::summary::summarize;
use ballfit_obs::Trace;
use ballfit_wsn::churn::ChurnPlan;
use ballfit_wsn::faults::FaultPlan;
use ballfit_wsn::topology::Topology;

/// Network seed shared by every gallery cell.
const GALLERY_SEED: u64 = 42;

struct Grids {
    gallery: Vec<Scenario>,
    losses: Vec<f64>,
    crash_fractions: Vec<f64>,
    fault_seeds: Vec<u64>,
    churn_scenarios: Vec<Scenario>,
    churn_rates: Vec<f64>,
    churn_seeds: Vec<u64>,
    churn_epochs: usize,
}

fn grids(smoke: bool) -> Grids {
    if smoke {
        Grids {
            gallery: vec![Scenario::SolidSphere],
            losses: vec![0.0, 0.1],
            crash_fractions: vec![0.0, 0.05],
            fault_seeds: vec![1],
            churn_scenarios: vec![Scenario::SolidSphere],
            churn_rates: vec![0.02],
            churn_seeds: vec![1],
            churn_epochs: 3,
        }
    } else {
        Grids {
            gallery: Scenario::PAPER_GALLERY.to_vec(),
            losses: vec![0.0, 0.05, 0.1, 0.2, 0.3],
            crash_fractions: vec![0.0, 0.05, 0.1],
            fault_seeds: vec![1, 2, 3],
            churn_scenarios: vec![Scenario::SolidSphere, Scenario::SpaceOneHole],
            churn_rates: vec![0.01, 0.02, 0.05, 0.10],
            churn_seeds: vec![1, 2, 3],
            churn_epochs: 12,
        }
    }
}

/// The 500-node sphere shared by the fault and churn grids (the E15/E16
/// acceptance configuration; the churn grid builds one per scenario).
fn reference_model(scenario: Scenario, smoke: bool) -> NetworkModel {
    let (surface, interior, degree, seed) =
        if smoke { (80, 100, 12.0, 7) } else { (200, 300, 14.0, 77) };
    NetworkBuilder::new(scenario)
        .surface_nodes(surface)
        .interior_nodes(interior)
        .target_degree(degree)
        .require_connected(false)
        .seed(seed)
        .build()
        .expect("reference model generates")
}

fn gallery_model(scenario: Scenario, smoke: bool) -> NetworkModel {
    if smoke {
        reference_model(scenario, true)
    } else {
        gallery_network(scenario, GALLERY_SEED)
    }
}

/// Finalizer of murmur3 (fmix64): the per-edge drop hash.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// Uniform draw in `[0, 1)` keyed on `(seed, i, j)` — the link-drop coin.
fn edge_draw(seed: u64, i: usize, j: usize) -> f64 {
    let key = seed ^ ((i as u64) << 32 | j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mix64(key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Quality of `got` vs `truth`, restricted to nodes where `consider`
/// holds. `None` when a denominator is empty.
struct Quality {
    recall: Option<f64>,
    precision: Option<f64>,
    jaccard: Option<f64>,
}

fn quality(truth: &[bool], got: &[bool], consider: &[bool]) -> Quality {
    let (mut tp, mut fp, mut missed) = (0usize, 0usize, 0usize);
    for i in 0..truth.len() {
        if !consider[i] {
            continue;
        }
        match (truth[i], got[i]) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => missed += 1,
            (false, false) => {}
        }
    }
    let rate = |num: usize, den: usize| (den > 0).then(|| num as f64 / den as f64);
    Quality {
        recall: rate(tp, tp + missed),
        precision: rate(tp, tp + fp),
        jaccard: rate(tp, tp + fp + missed),
    }
}

/// One backend's run in one cell: quality plus the cost totals that
/// `obs::summary` rolls up from the backend's trace.
struct BackendRow {
    backend: &'static str,
    boundary: usize,
    groups: usize,
    quality: Quality,
    messages: u64,
    bytes: u64,
    rounds: u64,
    ball_tests: u64,
}

/// Runs one registered backend over `view` with an enabled trace and
/// scores it. Costs come from `obs::summary` over the emitted trace, not
/// from the backend's own tally (`tests/backends.rs` pins the two equal).
fn run_backend(
    name: &'static str,
    view: &NetView<'_>,
    seed: u64,
    truth: &[bool],
    consider: &[bool],
) -> BackendRow {
    // Cells shard over workers; every backend inside a cell runs
    // single-threaded so the emitted JSON is identical at every ladder
    // rung.
    let backend = configured(name, DetectorConfig::default(), seed, Parallelism::sequential())
        .expect("registry names resolve");
    let mut trace = Trace::enabled();
    let result = backend.detect(view, &mut trace);
    let summary = summarize(trace.records());
    let messages: u64 = summary.rows.iter().map(|r| r.messages).sum();
    let bytes: u64 = summary.rows.iter().map(|r| r.bytes).sum();
    let rounds: u64 = summary.rows.iter().map(|r| r.rounds).sum();
    let ball_tests: u64 = summary.rows.iter().map(|r| r.ball_tests).sum();
    BackendRow {
        backend: name,
        boundary: result.boundary_count(),
        groups: result.detection.groups.len(),
        quality: quality(truth, result.boundary(), consider),
        messages,
        bytes,
        rounds,
        ball_tests,
    }
}

struct GalleryCell {
    scenario: String,
    nodes: usize,
    edges: usize,
    rows: Vec<BackendRow>,
}

fn run_gallery_cell(scenario: Scenario, smoke: bool) -> GalleryCell {
    let model = gallery_model(scenario, smoke);
    let view = NetView::from_model(&model);
    let truth = model.is_surface();
    let consider = vec![true; model.len()];
    let rows = NAMES
        .iter()
        .map(|&name| run_backend(name, &view, GALLERY_SEED, truth, &consider))
        .collect();
    GalleryCell {
        scenario: scenario.name().to_string(),
        nodes: model.len(),
        edges: model.topology().edge_count(),
        rows,
    }
}

struct FaultCell {
    loss: f64,
    crash_fraction: f64,
    seed: u64,
    crashed: usize,
    dropped_links: usize,
    rows: Vec<BackendRow>,
}

fn run_fault_cell(
    model: &NetworkModel,
    reference: &[bool],
    loss: f64,
    crash_fraction: f64,
    seed: u64,
) -> FaultCell {
    let n = model.len();
    // Crash sampling matches E15: the FaultPlan's own seeded draw.
    let plan = FaultPlan::lossy(seed, loss).with_random_crashes(n, crash_fraction, 1, None);
    let mut alive = vec![true; n];
    for c in &plan.crashes {
        if c.node < n {
            alive[c.node] = false;
        }
    }
    let crashed = alive.iter().filter(|a| !**a).count();

    // Structural degradation: crashed nodes lose every link; surviving
    // links drop i.i.d. with the loss probability (symmetric — one coin
    // per undirected edge).
    let topo = model.topology();
    let mut edges = Vec::with_capacity(topo.edge_count());
    let mut dropped_links = 0usize;
    for i in 0..n {
        for &j in topo.neighbors(i) {
            let j = j as usize;
            if i >= j || !alive[i] || !alive[j] {
                continue;
            }
            if loss > 0.0 && edge_draw(seed, i, j) < loss {
                dropped_links += 1;
            } else {
                edges.push((i, j));
            }
        }
    }
    let degraded = Topology::from_edges(n, &edges);
    let view = NetView::new(&degraded, model.positions(), model.radio_range());
    let rows =
        NAMES.iter().map(|&name| run_backend(name, &view, seed, reference, &alive)).collect();
    FaultCell { loss, crash_fraction, seed, crashed, dropped_links, rows }
}

struct ChurnCell {
    scenario: String,
    rate: f64,
    seed: u64,
    events: usize,
    live_final: usize,
    rows: Vec<BackendRow>,
}

fn run_churn_cell(
    model: &NetworkModel,
    scenario: Scenario,
    rate: f64,
    seed: u64,
    epochs: usize,
) -> ChurnCell {
    let plan = ChurnPlan::none()
        .with_seed(seed)
        .with_epochs(epochs)
        .with_join_rate(rate)
        .with_leave_rate(rate)
        .with_move_rate(rate)
        .with_max_drift(0.5 * model.radio_range());
    let schedule = plan.schedule(model.len());
    let mut driver = ChurnDriver::new(model, seed ^ 0x9E37_79B9_7F4A_7C15);
    for ev in &schedule {
        driver.step(ev).expect("in-shape sampling never exhausts");
    }
    let dynamic = driver.dynamic();
    let view = NetView::new(dynamic.topology(), dynamic.positions(), dynamic.radio_range());
    // From-scratch reference on the final topology; live slots only
    // (left nodes linger as isolated slots in the dynamic arena).
    let reference = BoundaryDetector::new(DetectorConfig::default())
        .with_parallelism(Parallelism::sequential())
        .detect_view(&view);
    let consider: Vec<bool> = (0..dynamic.len()).map(|i| dynamic.is_live(i)).collect();
    let rows = NAMES
        .iter()
        .map(|&name| run_backend(name, &view, seed, &reference.boundary, &consider))
        .collect();
    ChurnCell {
        scenario: scenario.name().to_string(),
        rate,
        seed,
        events: schedule.len(),
        live_final: dynamic.live_count(),
        rows,
    }
}

fn json_opt(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => format!("{v:.4}"),
        _ => "null".to_string(),
    }
}

fn push_rows(out: &mut String, rows: &[BackendRow]) {
    out.push_str("\"backends\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"backend\": \"{}\", \"boundary\": {}, \"groups\": {}, \
             \"recall\": {}, \"precision\": {}, \"jaccard\": {}, \
             \"messages\": {}, \"bytes\": {}, \"rounds\": {}, \"ball_tests\": {}}}",
            r.backend,
            r.boundary,
            r.groups,
            json_opt(r.quality.recall),
            json_opt(r.quality.precision),
            json_opt(r.quality.jaccard),
            r.messages,
            r.bytes,
            r.rounds,
            r.ball_tests,
        );
        out.push_str(if i + 1 < rows.len() { ", " } else { "" });
    }
    out.push_str("]");
}

fn results_path(out: Option<PathBuf>) -> PathBuf {
    if let Some(p) = out {
        return p;
    }
    ballfit_bench::results_dir().join("backend_matrix.json")
}

fn main() {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out requires a path"))),
            "--threads" => {
                let n = args.next().expect("--threads requires a count");
                threads = Some(n.parse().expect("--threads requires a positive integer"));
            }
            "--validate" => {
                let path = PathBuf::from(args.next().expect("--validate requires a path"));
                match json::validate_file(&path) {
                    Ok(()) => {
                        println!("{}: valid JSON", path.display());
                        return;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            }
            other => panic!(
                "unknown argument {other} (expected --smoke / --out <path> / --threads <n> / \
                 --validate <path>)"
            ),
        }
    }
    let parallelism = threads.map(Parallelism::threads).unwrap_or_default();
    let grids = grids(smoke);
    let fault_cells_n = grids.losses.len() * grids.crash_fractions.len() * grids.fault_seeds.len();
    let churn_cells_n =
        grids.churn_scenarios.len() * grids.churn_rates.len() * grids.churn_seeds.len();
    eprintln!(
        "backend matrix: {} backends x ({} gallery + {} fault + {} churn cells), {} thread(s){}",
        NAMES.len(),
        grids.gallery.len(),
        fault_cells_n,
        churn_cells_n,
        parallelism.get(),
        if smoke { " (smoke)" } else { "" }
    );

    // Phase 1: gallery.
    let gallery_cells =
        ballfit_par::par_map(parallelism, &grids.gallery, |&s| run_gallery_cell(s, smoke));
    for c in &gallery_cells {
        for r in &c.rows {
            eprintln!(
                "  gallery {:<12} {:<4}: J={} boundary={} msgs={} balls={}",
                c.scenario,
                r.backend,
                json_opt(r.quality.jaccard),
                r.boundary,
                r.messages,
                r.ball_tests,
            );
        }
    }

    // Phase 2: faults. Reference detection once, fault-free and intact.
    let fault_model = reference_model(Scenario::SolidSphere, smoke);
    let fault_reference = BoundaryDetector::new(DetectorConfig::default())
        .with_parallelism(parallelism)
        .detect_view(&NetView::from_model(&fault_model));
    let mut fault_params = Vec::new();
    for &loss in &grids.losses {
        for &crash_fraction in &grids.crash_fractions {
            for &seed in &grids.fault_seeds {
                fault_params.push((loss, crash_fraction, seed));
            }
        }
    }
    let fault_cells = ballfit_par::par_map(parallelism, &fault_params, |&(loss, crash, seed)| {
        run_fault_cell(&fault_model, &fault_reference.boundary, loss, crash, seed)
    });
    for c in &fault_cells {
        for r in &c.rows {
            eprintln!(
                "  fault loss={:>4} crash={:>4} seed={} {:<4}: J={} msgs={}",
                c.loss,
                c.crash_fraction,
                c.seed,
                r.backend,
                json_opt(r.quality.jaccard),
                r.messages,
            );
        }
    }

    // Phase 3: churn.
    let churn_models: Vec<(Scenario, NetworkModel)> =
        grids.churn_scenarios.iter().map(|&s| (s, reference_model(s, smoke))).collect();
    let mut churn_params = Vec::new();
    for (mi, _) in churn_models.iter().enumerate() {
        for &rate in &grids.churn_rates {
            for &seed in &grids.churn_seeds {
                churn_params.push((mi, rate, seed));
            }
        }
    }
    let churn_cells = ballfit_par::par_map(parallelism, &churn_params, |&(mi, rate, seed)| {
        let (scenario, model) = &churn_models[mi];
        run_churn_cell(model, *scenario, rate, seed, grids.churn_epochs)
    });
    for c in &churn_cells {
        for r in &c.rows {
            eprintln!(
                "  churn {:<12} rate={:>4} seed={} {:<4}: J={} msgs={}",
                c.scenario,
                c.rate,
                c.seed,
                r.backend,
                json_opt(r.quality.jaccard),
                r.messages,
            );
        }
    }

    let mut body = String::new();
    body.push_str("{\n");
    let _ = writeln!(
        body,
        "  \"meta\": {{\"experiment\": \"E22-backend-matrix\", \"smoke\": {smoke}, \
         \"backends\": [{}], \"coordinates\": \"ground-truth\", \
         \"quality\": {{\"gallery\": \"vs generated ground truth\", \
         \"faults\": \"alive nodes vs fault-free reference\", \
         \"churn\": \"live nodes vs from-scratch reference on the final topology\"}}}},",
        NAMES.iter().map(|n| format!("\"{n}\"")).collect::<Vec<_>>().join(", "),
    );
    body.push_str("  \"gallery\": [\n");
    for (i, c) in gallery_cells.iter().enumerate() {
        let _ = write!(
            body,
            "    {{\"scenario\": \"{}\", \"nodes\": {}, \"edges\": {}, ",
            c.scenario, c.nodes, c.edges
        );
        push_rows(&mut body, &c.rows);
        body.push_str("}");
        body.push_str(if i + 1 < gallery_cells.len() { ",\n" } else { "\n" });
    }
    body.push_str("  ],\n");
    let _ = writeln!(
        body,
        "  \"fault_model\": {{\"nodes\": {}, \"edges\": {}}},",
        fault_model.len(),
        fault_model.topology().edge_count()
    );
    body.push_str("  \"faults\": [\n");
    for (i, c) in fault_cells.iter().enumerate() {
        let _ = write!(
            body,
            "    {{\"loss\": {}, \"crash_fraction\": {}, \"seed\": {}, \"crashed\": {}, \
             \"dropped_links\": {}, ",
            c.loss, c.crash_fraction, c.seed, c.crashed, c.dropped_links
        );
        push_rows(&mut body, &c.rows);
        body.push_str("}");
        body.push_str(if i + 1 < fault_cells.len() { ",\n" } else { "\n" });
    }
    body.push_str("  ],\n");
    body.push_str("  \"churn\": [\n");
    for (i, c) in churn_cells.iter().enumerate() {
        let _ = write!(
            body,
            "    {{\"scenario\": \"{}\", \"rate\": {}, \"seed\": {}, \"events\": {}, \
             \"live_final\": {}, ",
            c.scenario, c.rate, c.seed, c.events, c.live_final
        );
        push_rows(&mut body, &c.rows);
        body.push_str("}");
        body.push_str(if i + 1 < churn_cells.len() { ",\n" } else { "\n" });
    }
    body.push_str("  ]\n}\n");

    let path = results_path(out);
    std::fs::write(&path, &body).expect("matrix JSON is writable");
    println!("wrote {}", path.display());
}
