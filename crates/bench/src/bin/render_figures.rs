//! Renders paper-style SVG figures: the network model, the detected
//! boundary nodes, and the constructed triangular mesh (the three panels
//! of Figs. 6–10), for every gallery scenario.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin render_figures
//! ```

use std::fs::File;
use std::io::BufWriter;

use ballfit::Pipeline;
use ballfit_bench::{gallery_network, results_dir};
use ballfit_geom::svg::{OrthoCamera, SvgScene};
use ballfit_geom::Vec3;
use ballfit_netgen::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let camera = OrthoCamera::isometric();
    for &scenario in &Scenario::PAPER_GALLERY {
        let model = gallery_network(scenario, 42);
        let result = Pipeline::paper(10, 7).run(&model);

        let interior: Vec<Vec3> = (0..model.len())
            .filter(|&i| !result.detection.boundary[i])
            .map(|i| model.positions()[i])
            .collect();
        let boundary: Vec<Vec3> =
            result.detection.boundary_indices().iter().map(|&i| model.positions()[i]).collect();

        // Panel (a): the raw network.
        let mut panel_a = SvgScene::new();
        panel_a.add_points(model.positions(), "#888888", 1.4);
        write_scene(&panel_a, &camera, &format!("fig_{}_a_network.svg", scenario.name()))?;

        // Panel (b): detected boundary nodes over faint interior.
        let mut panel_b = SvgScene::new();
        panel_b.add_points(&interior, "#cccccc", 1.0);
        panel_b.add_points(&boundary, "#d62728", 1.8);
        write_scene(&panel_b, &camera, &format!("fig_{}_b_boundary.svg", scenario.name()))?;

        // Panel (c): the triangular mesh(es).
        let mut panel_c = SvgScene::new();
        panel_c.add_points(&boundary, "#f2b6b6", 1.0);
        for surface in &result.surfaces {
            panel_c.add_mesh(&surface.mesh, "#1f77b4");
        }
        write_scene(&panel_c, &camera, &format!("fig_{}_c_mesh.svg", scenario.name()))?;

        println!(
            "{}: rendered 3 panels ({} nodes, {} boundary, {} meshes)",
            scenario.name(),
            model.len(),
            boundary.len(),
            result.surfaces.len()
        );
    }
    Ok(())
}

fn write_scene(
    scene: &SvgScene,
    camera: &OrthoCamera,
    name: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let path = results_dir().join(name);
    let w = BufWriter::new(File::create(&path)?);
    scene.render(w, camera, 640.0)?;
    Ok(())
}
