//! E7 — Fig. 1(j–l): mesh robustness under 20%, 30% and 40% distance
//! measurement errors. The paper's observation: the triangular mesh is
//! "not seriously deformed" — mistaken nodes hug the true boundary and
//! missing nodes scatter uniformly, so landmark election and meshing
//! barely change.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin mesh_under_error [-- --small]
//! ```

use ballfit::Pipeline;
use ballfit_bench::{
    export_mesh, fig1_network, fig1_network_small, format_table, parallel_map, write_csv,
};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let model = if small { fig1_network_small(4) } else { fig1_network(4) };
    println!("network: {} nodes", model.len());
    let shape = model.shape();

    let errors = [0u32, 20, 30, 40];
    let runs = parallel_map(errors.to_vec(), |&e| (e, Pipeline::paper(e, 11).run(&model)));

    let baseline_faces: usize =
        runs[0].1.surfaces.iter().map(|s| s.stats.faces).sum::<usize>().max(1);

    let mut table = vec![vec![
        "error".into(),
        "boundary".into(),
        "meshes".into(),
        "landmarks".into(),
        "faces".into(),
        "face drift".into(),
        "manifold%".into(),
        "deviation".into(),
    ]];
    let mut rows = Vec::new();
    for (e, result) in &runs {
        let landmarks: usize = result.surfaces.iter().map(|s| s.stats.landmarks).sum();
        let faces: usize = result.surfaces.iter().map(|s| s.stats.faces).sum();
        let manifold = if result.surfaces.is_empty() {
            0.0
        } else {
            result.surfaces.iter().map(|s| s.stats.audit.manifold_fraction()).sum::<f64>()
                / result.surfaces.len() as f64
        };
        let deviation = if result.surfaces.is_empty() {
            f64::NAN
        } else {
            result.surfaces.iter().map(|s| s.mesh.mean_abs_distance_to(&*shape)).sum::<f64>()
                / result.surfaces.len() as f64
        };
        let drift = (faces as f64 - baseline_faces as f64) / baseline_faces as f64;
        table.push(vec![
            format!("{e}%"),
            result.detection.boundary_count().to_string(),
            result.surfaces.len().to_string(),
            landmarks.to_string(),
            faces.to_string(),
            format!("{:+.1}%", 100.0 * drift),
            format!("{:.1}", 100.0 * manifold),
            format!("{deviation:.3}"),
        ]);
        rows.push(vec![
            e.to_string(),
            result.detection.boundary_count().to_string(),
            result.surfaces.len().to_string(),
            landmarks.to_string(),
            faces.to_string(),
            format!("{drift:.4}"),
            format!("{manifold:.4}"),
            format!("{deviation:.4}"),
        ]);
        for (i, s) in result.surfaces.iter().enumerate() {
            export_mesh(&format!("fig1jkl_mesh_err{e}_{i}.obj"), &s.mesh);
        }
    }
    println!("\nFig. 1(j–l) — mesh under distance measurement error:");
    println!("{}", format_table(&table));
    let p = write_csv(
        "fig1jkl_mesh_under_error.csv",
        &[
            "error_pct",
            "boundary_nodes",
            "meshes",
            "landmarks",
            "faces",
            "face_drift",
            "manifold_fraction",
            "mesh_deviation",
        ],
        &rows,
    );
    println!("wrote {}", p.display());
}
