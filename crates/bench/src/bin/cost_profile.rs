//! E18 — measured per-node cost profile vs density ρ.
//!
//! The paper's efficiency statements are asymptotic: Lemma 1 bounds the
//! candidate balls a node may test by the cube of its neighborhood size,
//! Theorem 1 tightens the *expected* work to Θ(ρ²) for constant-density
//! deployments, and the protocol analysis claims per-node message
//! overhead linear in ρ (one table broadcast per node for UBF, scoped
//! flooding for IFF, monotone label flooding for grouping). This
//! experiment measures all of those counts with the `ballfit-obs`
//! tracing subsystem instead of trusting hand-derived numbers:
//!
//! * Fixed-shape networks (SolidSphere, constant node count) are built
//!   at a ladder of target densities ρ.
//! * Each rung runs the traced detector plus the traced UBF / IFF /
//!   grouping protocol executions into one trace; `obs::summary` rolls
//!   the trace into per-protocol msgs/node, bytes/node and
//!   ball-tests/node.
//! * Log-log least-squares fits of those per-node counts against the
//!   *measured* mean degree estimate the growth exponents, which the
//!   JSON reports next to the claimed Θ(ρ²) (expected) and O(ρ³)
//!   (worst-case) targets.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin cost_profile             # full ladder
//! cargo run --release -p ballfit-bench --bin cost_profile -- --smoke  # 2 rungs, small net
//! cargo run --release -p ballfit-bench --bin cost_profile -- --trace t.jsonl --smoke
//! cargo run --release -p ballfit-bench --bin cost_profile -- --validate out.json
//! cargo run --release -p ballfit-bench --bin cost_profile -- --validate-trace t.jsonl
//! ```
//!
//! Results land in `$BALLFIT_RESULTS/cost_profile.json` (or `results/`);
//! `--trace` additionally writes the concatenated per-rung JSONL traces
//! (deterministic byte-for-byte, which `scripts/check.sh` pins with a
//! `trace_diff` self-compare).

use std::fmt::Write as _;
use std::path::PathBuf;

use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetector;
use ballfit::protocols::{run_grouping_protocol_traced, run_ubf_protocol_traced};
use ballfit::view::NetView;
use ballfit_bench::json;
use ballfit_netgen::builder::{NetworkBuilder, Placement};
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_obs::summary::summarize;
use ballfit_obs::Trace;
use ballfit_wsn::flood::FragmentFlood;
use ballfit_wsn::sim::Simulator;

/// Target-degree ladder of the full run (fixed shape, varying density).
const DEGREE_LADDER: [f64; 6] = [8.0, 10.0, 12.0, 14.0, 16.0, 18.0];

/// Reduced ladder for the smoke gate.
const SMOKE_LADDER: [f64; 2] = [10.0, 14.0];

/// Network seed (matches the E15 reference model family).
const SEED: u64 = 77;

/// Node count of the at-scale re-fit (5 000 under `--smoke`): the small
/// fixed-shape ladder above measures exponents at a few hundred nodes,
/// where boundary effects are large; this section re-fits the Theorem-1
/// ball-test exponent at 10⁵ nodes on the flat-CSR storage.
const AT_SCALE_N: usize = 100_000;

/// Degree calibration happens at this node count, then the range is
/// scaled by (cal/n)^(1/3) to hold density in the fixed volume.
const AT_SCALE_CAL_N: usize = 2_000;

struct Row {
    target_degree: f64,
    mean_degree: f64,
    nodes: usize,
    edges: usize,
    ball_tests_per_node: f64,
    ubf_msgs_per_node: f64,
    ubf_bytes_per_node: f64,
    iff_msgs_per_node: f64,
    grouping_msgs_per_node: f64,
}

fn build(density: f64, smoke: bool) -> NetworkModel {
    let (surface, interior) = if smoke { (70, 110) } else { (200, 300) };
    NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(surface)
        .interior_nodes(interior)
        .target_degree(density)
        .seed(SEED)
        .build()
        .unwrap_or_else(|e| panic!("cost-profile network at degree {density} failed: {e}"))
}

/// Runs the traced pipeline + protocols on one rung and rolls the trace
/// up. Returns the row plus the rung's JSONL trace.
fn profile(density: f64, smoke: bool) -> (Row, String) {
    let model = build(density, smoke);
    let n = model.len();
    let edges = model.topology().edge_count();
    let cfg = DetectorConfig::default();
    let mut trace = Trace::enabled();

    // Centralized-equivalent detection: ball-test counts per node.
    let detection =
        BoundaryDetector::new(cfg).detect_view_traced(&NetView::from_model(&model), &mut trace);

    // Message-passing executions: UBF table exchange, IFF scoped
    // flooding over the candidates, min-label grouping over the final
    // boundary. The runner spans reuse the detector's phase names, so
    // each summary row carries both the computation and the traffic.
    run_ubf_protocol_traced(&model, &cfg.ubf, &cfg.coordinates, &mut trace)
        .expect("perfect radio quiesces");
    let candidates = detection.candidates.clone();
    let mut sim =
        Simulator::new(model.topology(), |id| FragmentFlood::new(candidates[id], cfg.iff.ttl));
    trace.open("iff");
    let stats = sim.run_traced(cfg.iff.ttl as usize + 2, &mut trace);
    trace.close();
    assert!(stats.quiescent, "IFF flood quiesces on a perfect radio");
    run_grouping_protocol_traced(model.topology(), &detection.boundary, &mut trace)
        .expect("perfect radio quiesces");

    let summary = summarize(trace.records());
    let per_node = |name: &str, field: fn(&ballfit_obs::summary::ProtocolSummary) -> u64| {
        summary.get(name).map_or(0.0, |row| field(row) as f64 / n as f64)
    };
    let row = Row {
        target_degree: density,
        mean_degree: 2.0 * edges as f64 / n as f64,
        nodes: n,
        edges,
        ball_tests_per_node: per_node("ubf", |r| r.ball_tests),
        ubf_msgs_per_node: per_node("ubf", |r| r.messages),
        ubf_bytes_per_node: per_node("ubf", |r| r.bytes),
        iff_msgs_per_node: per_node("iff", |r| r.messages),
        grouping_msgs_per_node: per_node("grouping", |r| r.messages),
    };
    (row, trace.to_jsonl())
}

/// One rung of the at-scale section: untraced detection only (protocol
/// simulators at 10⁵ nodes would dominate the runtime without changing
/// the exponent being measured — ball tests are counted by the detector
/// itself).
struct ScaleRow {
    target_degree: f64,
    mean_degree: f64,
    nodes: usize,
    edges: usize,
    ball_tests_per_node: f64,
}

fn profile_at_scale(density: f64, smoke: bool) -> ScaleRow {
    let n = if smoke { 5_000 } else { AT_SCALE_N };
    let surface_of = |total: usize| -> usize {
        let cal_surface = 2 * AT_SCALE_CAL_N / 5;
        let s = cal_surface as f64 * (total as f64 / AT_SCALE_CAL_N as f64).powf(2.0 / 3.0);
        (s.round() as usize).min(total - 1).max(1)
    };
    // Calibrate the range at a tractable size, then scale it down as
    // n^(-1/3). Uniform placement: blue-noise pool thinning at 10⁵ nodes
    // is infeasible and irrelevant to the exponent.
    let build = |total: usize, range: Option<f64>| -> NetworkModel {
        let surface = surface_of(total);
        let builder = NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(surface)
            .interior_nodes(total - surface)
            .placement(Placement::Uniform)
            .require_connected(false)
            .seed(SEED);
        match range {
            Some(r) => builder.radio_range(r),
            None => builder.target_degree(density),
        }
        .build()
        .unwrap_or_else(|e| panic!("at-scale network at degree {density} failed: {e}"))
    };
    let cal = build(AT_SCALE_CAL_N, None);
    let range = cal.radio_range() * (AT_SCALE_CAL_N as f64 / n as f64).powf(1.0 / 3.0);
    let model = build(n, Some(range));
    let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
    let edges = model.topology().edge_count();
    ScaleRow {
        target_degree: density,
        mean_degree: 2.0 * edges as f64 / n as f64,
        nodes: n,
        edges,
        ball_tests_per_node: detection.balls_tested as f64 / n as f64,
    }
}

/// Least-squares slope of `ln y` against `ln x`: the measured growth
/// exponent of `y ~ x^slope`.
fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut mx, mut my) = (0.0, 0.0);
    for &(x, y) in points {
        mx += x.ln();
        my += y.ln();
    }
    mx /= n;
    my /= n;
    let (mut cov, mut var) = (0.0, 0.0);
    for &(x, y) in points {
        cov += (x.ln() - mx) * (y.ln() - my);
        var += (x.ln() - mx) * (x.ln() - mx);
    }
    cov / var
}

fn results_path(out: Option<PathBuf>) -> PathBuf {
    if let Some(p) = out {
        return p;
    }
    let dir = std::env::var_os("BALLFIT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("results directory is creatable");
    dir.join("cost_profile.json")
}

fn main() {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out requires a path"))),
            "--trace" => {
                trace_out = Some(PathBuf::from(args.next().expect("--trace requires a path")));
            }
            "--validate" => {
                let path = PathBuf::from(args.next().expect("--validate requires a path"));
                match json::validate_file(&path) {
                    Ok(()) => {
                        println!("{}: valid JSON", path.display());
                        return;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            }
            "--validate-trace" => {
                let path = PathBuf::from(args.next().expect("--validate-trace requires a path"));
                match json::validate_jsonl_file(&path) {
                    Ok(()) => {
                        println!("{}: valid JSONL", path.display());
                        return;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            }
            other => panic!(
                "unknown argument {other} (expected --smoke / --out <path> / --trace <path> / \
                 --validate <path> / --validate-trace <path>)"
            ),
        }
    }

    let ladder: &[f64] = if smoke { &SMOKE_LADDER } else { &DEGREE_LADDER };
    eprintln!("cost profile: degree ladder {ladder:?}{}", if smoke { " (smoke)" } else { "" });
    let mut rows = Vec::new();
    let mut traces = String::new();
    for &density in ladder {
        let (row, jsonl) = profile(density, smoke);
        eprintln!(
            "  rho={:>4.1}: measured degree {:.2}, {:.1} ball tests/node, {:.1} UBF msgs/node",
            row.target_degree, row.mean_degree, row.ball_tests_per_node, row.ubf_msgs_per_node
        );
        traces.push_str(&jsonl);
        rows.push(row);
    }

    let pick = |f: fn(&Row) -> f64| -> Vec<(f64, f64)> {
        rows.iter().map(|r| (r.mean_degree, f(r))).collect()
    };
    let ball_slope = loglog_slope(&pick(|r| r.ball_tests_per_node));
    let ubf_msg_slope = loglog_slope(&pick(|r| r.ubf_msgs_per_node));
    let ubf_byte_slope = loglog_slope(&pick(|r| r.ubf_bytes_per_node));

    eprintln!(
        "at-scale re-fit: degree ladder {ladder:?} at n={}",
        if smoke { 5_000 } else { AT_SCALE_N }
    );
    let mut scale_rows = Vec::new();
    for &density in ladder {
        let row = profile_at_scale(density, smoke);
        eprintln!(
            "  rho={:>4.1}: measured degree {:.2}, {:.1} ball tests/node (n={})",
            row.target_degree, row.mean_degree, row.ball_tests_per_node, row.nodes
        );
        scale_rows.push(row);
    }
    let at_scale_points: Vec<(f64, f64)> =
        scale_rows.iter().map(|r| (r.mean_degree, r.ball_tests_per_node)).collect();
    let at_scale_ball_slope = loglog_slope(&at_scale_points);

    let mut doc = String::new();
    doc.push_str("{\n");
    let _ = writeln!(
        doc,
        "  \"meta\": {{\"experiment\": \"E18-cost-profile\", \"smoke\": {smoke}, \
         \"scenario\": \"SolidSphere\", \"seed\": {SEED}, \
         \"claims\": {{\"ball_tests_expected\": \"Theta(rho^2)\", \
         \"ball_tests_worst_case\": \"O(rho^3)\", \
         \"ubf_msgs\": \"Theta(rho)\"}}}},"
    );
    doc.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            doc,
            "    {{\"target_degree\": {:.1}, \"mean_degree\": {:.4}, \"nodes\": {}, \
             \"edges\": {}, \"ball_tests_per_node\": {:.4}, \"ubf_msgs_per_node\": {:.4}, \
             \"ubf_bytes_per_node\": {:.4}, \"iff_msgs_per_node\": {:.4}, \
             \"grouping_msgs_per_node\": {:.4}}}",
            r.target_degree,
            r.mean_degree,
            r.nodes,
            r.edges,
            r.ball_tests_per_node,
            r.ubf_msgs_per_node,
            r.ubf_bytes_per_node,
            r.iff_msgs_per_node,
            r.grouping_msgs_per_node
        );
        doc.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    doc.push_str("  ],\n");
    doc.push_str("  \"at_scale\": {\n    \"rows\": [\n");
    for (i, r) in scale_rows.iter().enumerate() {
        let _ = write!(
            doc,
            "      {{\"target_degree\": {:.1}, \"mean_degree\": {:.4}, \"nodes\": {}, \
             \"edges\": {}, \"ball_tests_per_node\": {:.4}}}",
            r.target_degree, r.mean_degree, r.nodes, r.edges, r.ball_tests_per_node
        );
        doc.push_str(if i + 1 < scale_rows.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(
        doc,
        "    ],\n    \"fits\": {{\"ball_tests_loglog_slope\": {at_scale_ball_slope:.4}}}\n  }},"
    );
    let _ = writeln!(
        doc,
        "  \"fits\": {{\"ball_tests_loglog_slope\": {ball_slope:.4}, \
         \"ubf_msgs_loglog_slope\": {ubf_msg_slope:.4}, \
         \"ubf_bytes_loglog_slope\": {ubf_byte_slope:.4}}}"
    );
    doc.push_str("}\n");

    let path = results_path(out);
    std::fs::write(&path, &doc).expect("cost-profile JSON is writable");
    println!("wrote {}", path.display());
    println!(
        "measured exponents: ball tests/node ~ rho^{ball_slope:.2}, \
         UBF msgs/node ~ rho^{ubf_msg_slope:.2}, UBF bytes/node ~ rho^{ubf_byte_slope:.2}; \
         at scale: ball tests/node ~ rho^{at_scale_ball_slope:.2}"
    );
    if let Some(tp) = trace_out {
        std::fs::write(&tp, &traces).expect("trace JSONL is writable");
        println!("wrote trace {}", tp.display());
    }
}
