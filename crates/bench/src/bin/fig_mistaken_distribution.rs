//! E2 — Fig. 1(h) / 11(b): hop-distance distribution of *mistaken*
//! boundary nodes (distance to the nearest correctly identified boundary
//! node) vs distance measurement error.
//!
//! The paper's claim: mistaken nodes are always within 3 hops, >60% at one
//! hop and >30% at two.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin fig_mistaken_distribution
//! ```

use ballfit_bench::{error_sweep, fig1_network_small, format_table, pct, PAPER_ERROR_SWEEP};

fn main() {
    let model = fig1_network_small(2);
    println!("network: {} nodes ({} boundary ground truth)", model.len(), model.surface_count());
    let sweep = error_sweep(&model, &PAPER_ERROR_SWEEP, 23);

    let mut table = vec![vec![
        "error".to_string(),
        "mistaken".to_string(),
        "1 hop".to_string(),
        "2 hop".to_string(),
        "3 hop".to_string(),
        ">3 hop".to_string(),
    ]];
    for (e, s) in &sweep {
        let (f1, f2, f3, fb) = s.mistaken_hops.fractions();
        table.push(vec![
            format!("{e}%"),
            s.mistaken.to_string(),
            pct(f1),
            pct(f2),
            pct(f3),
            pct(fb),
        ]);
    }
    println!("\nFig. 1(h) — distribution of mistaken boundary nodes:");
    println!("{}", format_table(&table));
}
