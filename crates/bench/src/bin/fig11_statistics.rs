//! E4 — Fig. 11(a–c): aggregate performance statistics over more than
//! 10,000 sample boundary nodes drawn from many networks (all five paper
//! scenarios × several seeds), as percentages of the boundary population.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin fig11_statistics [-- --seeds N]
//! ```
//!
//! Emits `results/fig11a_efficiency.csv`, `results/fig11b_mistaken.csv`,
//! `results/fig11c_missing.csv`.

use ballfit::metrics::HopHistogram;
use ballfit::Pipeline;
use ballfit_bench::{
    format_table, gallery_network, parallel_map, pct, write_csv, PAPER_ERROR_SWEEP,
};
use ballfit_netgen::scenario::Scenario;

#[derive(Default, Clone)]
struct Aggregate {
    truth: usize,
    found: usize,
    correct: usize,
    mistaken: usize,
    missing: usize,
    mistaken_hops: HopHistogram,
    missing_hops: HopHistogram,
}

fn add_hist(into: &mut HopHistogram, from: &HopHistogram) {
    into.one += from.one;
    into.two += from.two;
    into.three += from.three;
    into.beyond += from.beyond;
}

fn main() {
    let seeds: u64 = std::env::args()
        .skip_while(|a| a != "--seeds")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    // Build every (scenario, seed) network once up front.
    let mut net_jobs = Vec::new();
    for &scenario in &Scenario::PAPER_GALLERY {
        for seed in 0..seeds {
            net_jobs.push((scenario, 1000 + seed));
        }
    }
    let models = parallel_map(net_jobs, |&(scenario, seed)| gallery_network(scenario, seed));
    let boundary_samples: usize = models.iter().map(|m| m.surface_count()).sum();
    println!(
        "{} networks, {} total ground-truth boundary samples (paper: >10,000)",
        models.len(),
        boundary_samples
    );

    // Sweep: aggregate the detection stats across all networks per error.
    let jobs: Vec<(usize, u32)> =
        (0..models.len()).flat_map(|m| PAPER_ERROR_SWEEP.iter().map(move |&e| (m, e))).collect();
    let per_run = parallel_map(jobs.clone(), |&(mi, e)| {
        let result = Pipeline::paper(e, 31 + mi as u64).run(&models[mi]);
        (e, result.stats)
    });

    let mut agg: std::collections::BTreeMap<u32, Aggregate> = Default::default();
    for (e, s) in per_run {
        let a = agg.entry(e).or_default();
        a.truth += s.truth;
        a.found += s.found;
        a.correct += s.correct;
        a.mistaken += s.mistaken;
        a.missing += s.missing;
        add_hist(&mut a.mistaken_hops, &s.mistaken_hops);
        add_hist(&mut a.missing_hops, &s.missing_hops);
    }

    let mut table = vec![vec![
        "error".into(),
        "found%".into(),
        "correct%".into(),
        "mistaken%".into(),
        "missing%".into(),
    ]];
    let (mut rows_a, mut rows_b, mut rows_c) = (Vec::new(), Vec::new(), Vec::new());
    for (e, a) in &agg {
        let t = a.truth.max(1) as f64;
        table.push(vec![
            format!("{e}%"),
            pct(a.found as f64 / t),
            pct(a.correct as f64 / t),
            pct(a.mistaken as f64 / t),
            pct(a.missing as f64 / t),
        ]);
        rows_a.push(vec![
            e.to_string(),
            format!("{:.4}", a.found as f64 / t),
            format!("{:.4}", a.correct as f64 / t),
            format!("{:.4}", a.mistaken as f64 / t),
            format!("{:.4}", a.missing as f64 / t),
        ]);
        let (m1, m2, m3, mb) = a.mistaken_hops.fractions();
        rows_b.push(vec![
            e.to_string(),
            format!("{m1:.4}"),
            format!("{m2:.4}"),
            format!("{m3:.4}"),
            format!("{mb:.4}"),
        ]);
        let (g1, g2, g3, gb) = a.missing_hops.fractions();
        rows_c.push(vec![
            e.to_string(),
            format!("{g1:.4}"),
            format!("{g2:.4}"),
            format!("{g3:.4}"),
            format!("{gb:.4}"),
        ]);
    }
    println!("\nFig. 11(a) — aggregate boundary statistics (% of ground truth):");
    println!("{}", format_table(&table));

    for (name, header, rows) in [
        (
            "fig11a_efficiency.csv",
            ["error_pct", "found_frac", "correct_frac", "mistaken_frac", "missing_frac"],
            &rows_a,
        ),
        ("fig11b_mistaken.csv", ["error_pct", "hop1", "hop2", "hop3", "beyond"], &rows_b),
        ("fig11c_missing.csv", ["error_pct", "hop1", "hop2", "hop3", "beyond"], &rows_c),
    ] {
        let p = write_csv(name, &header, rows);
        println!("wrote {}", p.display());
    }
}
