//! E1 — Fig. 1(g): boundary nodes found / correct / mistaken / missing vs
//! distance measurement error on the large one-hole network (paper: 4210
//! nodes, average degree 18.8).
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin fig1_efficiency [-- --small]
//! ```
//!
//! Emits `results/fig1g_efficiency.csv` plus the hop-distribution CSVs of
//! Figs. 1(h) and 1(i), which come from the same sweep.

use ballfit_bench::{
    error_sweep, fig1_network, fig1_network_small, format_table, pct, write_csv, PAPER_ERROR_SWEEP,
};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let model = if small { fig1_network_small(1) } else { fig1_network(1) };
    let stats = model.topology().degree_stats();
    println!(
        "Fig. 1 network: {} nodes ({} ground-truth boundary), avg degree {:.1} (paper: 4210 / 18.8)",
        model.len(),
        model.surface_count(),
        stats.mean
    );

    let sweep = error_sweep(&model, &PAPER_ERROR_SWEEP, 17);

    let mut table = vec![vec![
        "error".to_string(),
        "found".to_string(),
        "correct".to_string(),
        "mistaken".to_string(),
        "missing".to_string(),
    ]];
    let mut rows = Vec::new();
    let mut mistaken_rows = Vec::new();
    let mut missing_rows = Vec::new();
    for (pct_err, s) in &sweep {
        table.push(vec![
            format!("{pct_err}%"),
            s.found.to_string(),
            s.correct.to_string(),
            s.mistaken.to_string(),
            s.missing.to_string(),
        ]);
        rows.push(vec![
            pct_err.to_string(),
            s.truth.to_string(),
            s.found.to_string(),
            s.correct.to_string(),
            s.mistaken.to_string(),
            s.missing.to_string(),
        ]);
        let (m1, m2, m3, mb) = s.mistaken_hops.fractions();
        mistaken_rows.push(vec![
            pct_err.to_string(),
            format!("{m1:.4}"),
            format!("{m2:.4}"),
            format!("{m3:.4}"),
            format!("{mb:.4}"),
        ]);
        let (g1, g2, g3, gb) = s.missing_hops.fractions();
        missing_rows.push(vec![
            pct_err.to_string(),
            format!("{g1:.4}"),
            format!("{g2:.4}"),
            format!("{g3:.4}"),
            format!("{gb:.4}"),
        ]);
    }
    println!("\nFig. 1(g) — boundary node counts vs distance measurement error:");
    println!("{}", format_table(&table));

    let p = write_csv(
        "fig1g_efficiency.csv",
        &["error_pct", "truth", "found", "correct", "mistaken", "missing"],
        &rows,
    );
    println!("wrote {}", p.display());
    let p = write_csv(
        "fig1h_mistaken_distribution.csv",
        &["error_pct", "hop1", "hop2", "hop3", "beyond"],
        &mistaken_rows,
    );
    println!("wrote {}", p.display());
    let p = write_csv(
        "fig1i_missing_distribution.csv",
        &["error_pct", "hop1", "hop2", "hop3", "beyond"],
        &missing_rows,
    );
    println!("wrote {}", p.display());

    // Paper shape check, printed for EXPERIMENTS.md.
    if let Some((_, s0)) = sweep.first() {
        println!(
            "\nshape check @0%: recall {} precision {} (paper: near-perfect below 30% error)",
            pct(s0.recall()),
            pct(s0.precision())
        );
    }
    if let Some((_, s30)) = sweep.iter().find(|(e, _)| *e == 30) {
        println!(
            "shape check @30%: recall {} precision {}",
            pct(s30.recall()),
            pct(s30.precision())
        );
    }
}
