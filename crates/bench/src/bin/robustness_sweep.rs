//! E15 — robustness sweep: degradation of the hardened protocol stack on
//! an unreliable radio, as a function of link-loss rate and crashed-node
//! fraction.
//!
//! For every `(loss, crash_fraction, seed)` cell the sweep runs hardened
//! UBF, the hardened IFF flood, hardened grouping, and the landmark
//! election against a deterministic [`FaultPlan`] (permanent fail-stop
//! crashes at round 1), then scores the outputs of the *alive* nodes
//! against the fault-free centralized detector: missing/mistaken boundary
//! rates, grouping label agreement, landmark convergence and Jaccard
//! similarity, and message overhead relative to the fault-free plain
//! protocols. Results are emitted as JSON (hand-rolled — the sweep is
//! dependency-free by design) into `$BALLFIT_RESULTS` or `results/`.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin robustness_sweep            # full grid
//! cargo run --release -p ballfit-bench --bin robustness_sweep -- --smoke # CI smoke run
//! cargo run --release -p ballfit-bench --bin robustness_sweep -- --validate out.json
//! ```
//!
//! Grid cells run in parallel (`--threads N` / `BALLFIT_THREADS`, default
//! all cores); results are collected in grid order, so the JSON is
//! byte-identical at every thread count. `--validate <path>` checks an
//! emitted file for JSON well-formedness in-process and exits.

use std::fmt::Write as _;
use std::path::PathBuf;

use ballfit_bench::{json, Parallelism};

use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetector;
use ballfit::grouping::group_boundaries;
use ballfit::landmarks::elect_landmarks;
use ballfit::protocols::{
    run_grouping_protocol_traced, run_hardened_grouping, run_hardened_ubf,
    run_landmark_protocol_with_faults, run_ubf_protocol_traced, Backoff,
};
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_wsn::faults::FaultPlan;
use ballfit_wsn::flood::{fragment_sizes, FragmentFlood, HardenedFragmentFlood};
use ballfit_wsn::sim::Simulator;
use ballfit_wsn::NodeId;

/// Number of times each hardened-flood forward is transmitted.
const FLOOD_REPEATS: u32 = 8;

struct Grid {
    losses: Vec<f64>,
    crash_fractions: Vec<f64>,
    seeds: Vec<u64>,
}

fn reference_model(smoke: bool) -> NetworkModel {
    let (surface, interior, degree, seed) =
        if smoke { (80, 100, 12.0, 7) } else { (200, 300, 14.0, 77) };
    NetworkBuilder::new(Scenario::SolidSphere)
        .surface_nodes(surface)
        .interior_nodes(interior)
        .target_degree(degree)
        .seed(seed)
        .build()
        .expect("reference model generates")
}

fn grid(smoke: bool) -> Grid {
    if smoke {
        Grid { losses: vec![0.0, 0.1], crash_fractions: vec![0.0, 0.05], seeds: vec![1] }
    } else {
        Grid {
            losses: vec![0.0, 0.05, 0.1, 0.2, 0.3],
            crash_fractions: vec![0.0, 0.05, 0.1],
            seeds: vec![1, 2, 3],
        }
    }
}

/// `(missing_rate, mistaken_rate)` of `got` vs `want`, restricted to
/// nodes where `alive` holds. `None` when a denominator is empty.
fn boundary_rates(want: &[bool], got: &[bool], alive: &[bool]) -> (Option<f64>, Option<f64>) {
    let (mut pos, mut neg, mut missing, mut mistaken) = (0usize, 0usize, 0usize, 0usize);
    for i in 0..want.len() {
        if !alive[i] {
            continue;
        }
        if want[i] {
            pos += 1;
            if !got[i] {
                missing += 1;
            }
        } else {
            neg += 1;
            if got[i] {
                mistaken += 1;
            }
        }
    }
    let rate = |num: usize, den: usize| (den > 0).then(|| num as f64 / den as f64);
    (rate(missing, pos), rate(mistaken, neg))
}

fn json_opt(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => format!("{v}"),
        _ => "null".to_string(),
    }
}

struct CellResult {
    loss: f64,
    crash_fraction: f64,
    seed: u64,
    crashed: usize,
    ubf_ok: bool,
    ubf_missing: Option<f64>,
    ubf_mistaken: Option<f64>,
    ubf_overhead: Option<f64>,
    iff_missing: Option<f64>,
    iff_mistaken: Option<f64>,
    iff_overhead: Option<f64>,
    grouping_ok: bool,
    grouping_agreement: Option<f64>,
    grouping_overhead: Option<f64>,
    landmark_converged: bool,
    landmark_jaccard: Option<f64>,
    dropped: u64,
    crash_lost: u64,
}

fn run_cell(
    model: &NetworkModel,
    cfg: &DetectorConfig,
    central: &ballfit::detector::BoundaryDetection,
    baseline: &Baseline,
    loss: f64,
    crash_fraction: f64,
    seed: u64,
) -> CellResult {
    let n = model.len();
    let topo = model.topology();
    let retry = Backoff::default();
    // Duplication and delay ride along with loss (the "misbehaving
    // radio" axis); the crash axis stays pure so the (0, 0) cell is a
    // clean baseline.
    let plan = FaultPlan::lossy(seed, loss)
        .with_duplication(if loss > 0.0 { 0.05 } else { 0.0 })
        .with_max_delay(u32::from(loss > 0.0))
        .with_random_crashes(n, crash_fraction, 1, None);
    let mut alive = vec![true; n];
    for c in &plan.crashes {
        if c.node < n {
            alive[c.node] = false;
        }
    }
    let crashed = alive.iter().filter(|a| !**a).count();

    // Phase 1: hardened UBF.
    let ubf = run_hardened_ubf(model, &cfg.ubf, &cfg.coordinates, retry, &plan);
    let (ubf_ok, ubf_flags, ubf_msgs) = match ubf {
        Ok((flags, msgs)) => (true, flags, Some(msgs)),
        Err(_) => (false, vec![false; n], None),
    };
    let (ubf_missing, ubf_mistaken) =
        if ubf_ok { boundary_rates(&central.candidates, &ubf_flags, &alive) } else { (None, None) };

    // Phase 2: hardened IFF flood over the centralized candidate set (so
    // the flood's own degradation is measured in isolation).
    let ttl = cfg.iff.ttl;
    let candidates = &central.candidates;
    let mut sim =
        Simulator::new(topo, |id| HardenedFragmentFlood::new(candidates[id], ttl, FLOOD_REPEATS));
    let flood_budget = 2 * FLOOD_REPEATS as usize * (ttl as usize + 2) + plan.round_slack();
    let stats = sim.run_with_faults(flood_budget, &plan);
    let theta = cfg.iff.theta;
    let via_flood: Vec<bool> =
        (0..n).map(|i| candidates[i] && sim.node(i).fragment_size() >= theta).collect();
    let (iff_missing, iff_mistaken) = boundary_rates(&central.boundary, &via_flood, &alive);
    let (dropped, crash_lost) = (stats.faults.dropped, stats.faults.crash_lost);
    let iff_msgs = stats.messages;

    // Phase 3: hardened grouping over the centralized boundary.
    let grouping = run_hardened_grouping(topo, &central.boundary, retry, &plan);
    let (grouping_ok, grouping_agreement, grouping_msgs) = match grouping {
        Ok((labels, msgs)) => {
            let groups = group_boundaries(topo, &central.boundary);
            let (mut members, mut agree) = (0usize, 0usize);
            for group in &groups {
                for &m in group {
                    if alive[m] {
                        members += 1;
                        if labels[m] == Some(group[0]) {
                            agree += 1;
                        }
                    }
                }
            }
            let agreement = (members > 0).then(|| agree as f64 / members as f64);
            (true, agreement, Some(msgs))
        }
        Err(_) => (false, None, None),
    };

    // Phase 4: landmark election on the largest boundary group.
    let groups = group_boundaries(topo, &central.boundary);
    let (landmark_converged, landmark_jaccard) = match groups.first() {
        Some(group) if group.len() >= 4 => {
            match run_landmark_protocol_with_faults(topo, group, 3, &plan) {
                Ok((elected, _)) => {
                    let reference = elect_landmarks(topo, group, 3);
                    let e: std::collections::BTreeSet<NodeId> = elected.into_iter().collect();
                    let r: std::collections::BTreeSet<NodeId> = reference.into_iter().collect();
                    let inter = e.intersection(&r).count();
                    let union = e.union(&r).count();
                    let jaccard = (union > 0).then(|| inter as f64 / union as f64);
                    (true, jaccard)
                }
                Err(_) => (false, None),
            }
        }
        _ => (true, None),
    };

    let overhead =
        |msgs: Option<u64>, base: u64| msgs.filter(|_| base > 0).map(|m| m as f64 / base as f64);
    CellResult {
        loss,
        crash_fraction,
        seed,
        crashed,
        ubf_ok,
        ubf_missing,
        ubf_mistaken,
        ubf_overhead: overhead(ubf_msgs, baseline.ubf_msgs),
        iff_missing,
        iff_mistaken,
        iff_overhead: overhead(Some(iff_msgs), baseline.iff_msgs),
        grouping_ok,
        grouping_agreement,
        grouping_overhead: overhead(grouping_msgs, baseline.grouping_msgs),
        landmark_converged,
        landmark_jaccard,
        dropped,
        crash_lost,
    }
}

struct Baseline {
    ubf_msgs: u64,
    iff_msgs: u64,
    grouping_msgs: u64,
}

/// Fault-free plain-protocol baseline. With an enabled `trace` the
/// three runs land in `"ubf"` / `"iff"` / `"grouping"` spans — the
/// `--trace` export that `obs::summary` rolls into per-protocol tables.
fn baseline(
    model: &NetworkModel,
    cfg: &DetectorConfig,
    central: &ballfit::detector::BoundaryDetection,
    trace: &mut ballfit_obs::Trace,
) -> Baseline {
    let (_, ubf_msgs) = run_ubf_protocol_traced(model, &cfg.ubf, &cfg.coordinates, trace)
        .expect("perfect radio quiesces");
    let candidates = central.candidates.clone();
    let mut sim =
        Simulator::new(model.topology(), |id| FragmentFlood::new(candidates[id], cfg.iff.ttl));
    trace.open("iff");
    let stats = sim.run_traced(cfg.iff.ttl as usize + 2, trace);
    trace.close();
    assert!(stats.quiescent);
    let sizes = fragment_sizes(model.topology(), cfg.iff.ttl, |i| candidates[i]);
    for i in 0..model.len() {
        assert_eq!(sim.node(i).fragment_size(), sizes[i], "flood baseline self-check");
    }
    let (_, grouping_msgs) =
        run_grouping_protocol_traced(model.topology(), &central.boundary, trace)
            .expect("perfect radio quiesces");
    Baseline { ubf_msgs, iff_msgs: stats.messages, grouping_msgs }
}

fn results_path(out: Option<PathBuf>) -> PathBuf {
    if let Some(p) = out {
        return p;
    }
    let dir = std::env::var_os("BALLFIT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("results directory is creatable");
    dir.join("robustness_sweep.json")
}

fn main() {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out requires a path"))),
            "--trace" => {
                trace_out = Some(PathBuf::from(args.next().expect("--trace requires a path")));
            }
            "--threads" => {
                let n = args.next().expect("--threads requires a count");
                threads = Some(n.parse().expect("--threads requires a positive integer"));
            }
            "--validate" => {
                let path = PathBuf::from(args.next().expect("--validate requires a path"));
                match json::validate_file(&path) {
                    Ok(()) => {
                        println!("{}: valid JSON", path.display());
                        return;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            }
            other => panic!(
                "unknown argument {other} (expected --smoke / --out <path> / --trace <path> / \
                 --threads <n> / --validate <path>)"
            ),
        }
    }
    let parallelism = threads.map(Parallelism::threads).unwrap_or_default();

    let model = reference_model(smoke);
    let cfg = DetectorConfig::paper(10, 3);
    let central = BoundaryDetector::new(cfg).with_parallelism(parallelism).detect(&model);
    let mut trace = if trace_out.is_some() {
        ballfit_obs::Trace::enabled()
    } else {
        ballfit_obs::Trace::disabled()
    };
    let base = baseline(&model, &cfg, &central, &mut trace);
    if let Some(tp) = &trace_out {
        trace.write_jsonl(tp).expect("trace JSONL is writable");
        println!("wrote trace {}", tp.display());
    }
    let grid = grid(smoke);
    let mut params = Vec::new();
    for &loss in &grid.losses {
        for &crash_fraction in &grid.crash_fractions {
            for &seed in &grid.seeds {
                params.push((loss, crash_fraction, seed));
            }
        }
    }
    eprintln!(
        "robustness sweep: {} nodes, {} cells, {} thread(s){}",
        model.len(),
        params.len(),
        parallelism.get(),
        if smoke { " (smoke)" } else { "" }
    );

    // Each cell is self-contained (per-cell fault PRNGs), so the grid
    // shards over workers; the collected order is the grid order, keeping
    // the emitted JSON byte-identical at every thread count.
    let cells = ballfit_par::par_map(parallelism, &params, |&(loss, crash_fraction, seed)| {
        run_cell(&model, &cfg, &central, &base, loss, crash_fraction, seed)
    });
    for cell in &cells {
        eprintln!(
            "  loss={:>4} crash={:>4} seed={}: \
             ubf miss={} mist={}, iff miss={}, grouping agree={}, landmark J={}",
            cell.loss,
            cell.crash_fraction,
            cell.seed,
            json_opt(cell.ubf_missing),
            json_opt(cell.ubf_mistaken),
            json_opt(cell.iff_missing),
            json_opt(cell.grouping_agreement),
            json_opt(cell.landmark_jaccard),
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"experiment\": \"E15-robustness\", \"smoke\": {smoke}, \
         \"nodes\": {}, \"edges\": {}, \"duplication\": 0.05, \"max_delay\": 1, \
         \"flood_repeats\": {FLOOD_REPEATS}}},",
        model.len(),
        model.topology().edge_count()
    );
    let _ = writeln!(
        json,
        "  \"baseline_messages\": {{\"ubf\": {}, \"iff\": {}, \"grouping\": {}}},",
        base.ubf_msgs, base.iff_msgs, base.grouping_msgs
    );
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"loss\": {}, \"crash_fraction\": {}, \"seed\": {}, \"crashed\": {}, \
             \"ubf\": {{\"ok\": {}, \"missing\": {}, \"mistaken\": {}, \"overhead\": {}}}, \
             \"iff\": {{\"missing\": {}, \"mistaken\": {}, \"overhead\": {}}}, \
             \"grouping\": {{\"ok\": {}, \"agreement\": {}, \"overhead\": {}}}, \
             \"landmark\": {{\"converged\": {}, \"jaccard\": {}}}, \
             \"faults\": {{\"dropped\": {}, \"crash_lost\": {}}}}}",
            c.loss,
            c.crash_fraction,
            c.seed,
            c.crashed,
            c.ubf_ok,
            json_opt(c.ubf_missing),
            json_opt(c.ubf_mistaken),
            json_opt(c.ubf_overhead),
            json_opt(c.iff_missing),
            json_opt(c.iff_mistaken),
            json_opt(c.iff_overhead),
            c.grouping_ok,
            json_opt(c.grouping_agreement),
            json_opt(c.grouping_overhead),
            c.landmark_converged,
            json_opt(c.landmark_jaccard),
            c.dropped,
            c.crash_lost,
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = results_path(out);
    std::fs::write(&path, &json).expect("sweep JSON is writable");
    println!("wrote {}", path.display());
}
