//! Internal diagnostic: per-stage surface construction numbers.

use ballfit::config::{DetectorConfig, SurfaceConfig};
use ballfit::detector::BoundaryDetector;
use ballfit::surface::SurfaceBuilder;
use ballfit_bench::{fig1_network, gallery_network};
use ballfit_netgen::scenario::Scenario;

fn main() {
    let model = if std::env::args().any(|a| a == "--fig1") {
        fig1_network(1)
    } else {
        gallery_network(Scenario::SolidSphere, 77)
    };
    let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
    for route in [false, true] {
        for k in [3u32, 4, 5] {
            let surfaces =
                SurfaceBuilder::new(SurfaceConfig { k, route_around: route, ..Default::default() })
                    .build(&model, &detection);
            for s in &surfaces {
                let st = &s.stats;
                println!(
                    "route={route} k={k}: group={} lm={} cdg={} cdm={} added={} dropped={} flips={} edges={} faces={} euler={} border={} nonmani={}",
                    st.group_size, st.landmarks, st.cdg_edges, st.cdm_edges, st.added_edges,
                    st.dropped_edges, st.flips, s.edges.len(), st.faces, st.euler,
                    st.audit.border_edges, st.audit.non_manifold_edges
                );
            }
        }
    }
}
