//! E16 — churn sweep: incremental boundary maintenance vs from-scratch
//! re-detection on dynamic networks.
//!
//! For every `(scenario, churn rate, seed)` cell the sweep drives a seeded
//! `ChurnPlan` (equal per-epoch join/leave/drift rates) through a
//! `ChurnDriver`, and after *every* event repairs an `IncrementalDetector`
//! while also timing a full `detect_view` on the same topology. Exactness
//! of the incremental state (boundary flags and grouping) is asserted on
//! each event — the timing comparison is only meaningful because the two
//! computations produce identical results. Reported per cell: the
//! incremental-vs-full wall-clock ratio distribution (p10/median/p90),
//! the dirty-halo size distribution (p50/p90/max), and mean per-event
//! costs. A final hole-cycle phase heals the one-hole scenario's interior
//! void with a lattice of filler joins (boundary groups 2 → 1) and carves
//! it back open by removing them (→ 2), tracking boundary-accuracy
//! stability. Results are emitted as JSON (hand-rolled —
//! the sweep is dependency-free by design) into `$BALLFIT_RESULTS` or
//! `results/`.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin churn_sweep            # full grid
//! cargo run --release -p ballfit-bench --bin churn_sweep -- --smoke # CI smoke run
//! cargo run --release -p ballfit-bench --bin churn_sweep -- --validate out.json
//! ```
//!
//! Grid cells run in parallel (`--threads N` / `BALLFIT_THREADS`, default
//! all cores) and are collected in grid order. Inside a cell both sides
//! of the timing comparison run single-threaded, so the incremental-vs-
//! full ratios stay comparable across thread counts (and with earlier
//! single-threaded runs); only wall-clock fields vary between runs.
//! `--validate <path>` checks an emitted file for JSON well-formedness
//! in-process and exits.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use ballfit_bench::{json, Parallelism};

use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetector;
use ballfit::incremental::IncrementalDetector;
use ballfit::view::NetView;
use ballfit_geom::Vec3;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::churn::ChurnDriver;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_wsn::churn::{ChurnPlan, DynamicTopology, TopologyEvent};

struct Grid {
    scenarios: Vec<Scenario>,
    rates: Vec<f64>,
    seeds: Vec<u64>,
    epochs: usize,
}

fn grid(smoke: bool) -> Grid {
    if smoke {
        Grid {
            scenarios: vec![Scenario::SolidSphere],
            rates: vec![0.02],
            seeds: vec![1],
            epochs: 3,
        }
    } else {
        Grid {
            scenarios: vec![Scenario::SolidSphere, Scenario::SpaceOneHole],
            rates: vec![0.01, 0.02, 0.05, 0.10],
            seeds: vec![1, 2, 3],
            epochs: 12,
        }
    }
}

fn reference_model(scenario: Scenario, smoke: bool) -> NetworkModel {
    // The full sphere is the acceptance configuration: 500 nodes.
    let (surface, interior, degree, seed) =
        if smoke { (80, 100, 12.0, 7) } else { (200, 300, 14.0, 77) };
    NetworkBuilder::new(scenario)
        .surface_nodes(surface)
        .interior_nodes(interior)
        .target_degree(degree)
        .require_connected(false)
        .seed(seed)
        .build()
        .expect("reference model generates")
}

fn scenario_name(s: Scenario) -> &'static str {
    match s {
        Scenario::SolidSphere => "SolidSphere",
        Scenario::SpaceOneHole => "SpaceOneHole",
        other => unreachable!("scenario {other:?} not part of E16"),
    }
}

/// p-th percentile (nearest-rank) of an unsorted sample.
fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of an empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

struct Cell {
    scenario: &'static str,
    rate: f64,
    seed: u64,
    events: usize,
    live_final: usize,
    speedup_p10: f64,
    speedup_median: f64,
    speedup_p90: f64,
    halo_p50: f64,
    halo_p90: f64,
    halo_max: f64,
    mean_inc_us: f64,
    mean_full_us: f64,
}

/// Asserts the incremental state equals a from-scratch run; returns the
/// full run's wall-clock seconds.
fn check_against_full(
    detector: &BoundaryDetector,
    inc: &IncrementalDetector,
    dynamic: &DynamicTopology,
) -> f64 {
    let view = NetView::new(dynamic.topology(), dynamic.positions(), dynamic.radio_range());
    let t0 = Instant::now();
    let full = detector.detect_view(&view);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(inc.boundary(), &full.boundary[..], "incremental boundary diverged from scratch");
    assert_eq!(inc.groups(), &full.groups[..], "incremental grouping diverged from scratch");
    dt
}

fn run_cell(
    scenario: Scenario,
    rate: f64,
    seed: u64,
    epochs: usize,
    model: &NetworkModel,
    config: DetectorConfig,
) -> Cell {
    let plan = ChurnPlan::none()
        .with_seed(seed)
        .with_epochs(epochs)
        .with_join_rate(rate)
        .with_leave_rate(rate)
        .with_move_rate(rate)
        .with_max_drift(0.5 * model.radio_range());
    let schedule = plan.schedule(model.len());
    let mut driver = ChurnDriver::new(model, seed ^ 0x9E37_79B9_7F4A_7C15);
    // Cells already run in parallel; keep both timed computations
    // single-threaded so the speedup ratios measure the algorithms, not
    // worker contention.
    let detector = BoundaryDetector::new(config).with_parallelism(Parallelism::sequential());
    let mut inc = IncrementalDetector::new_with_parallelism(
        config,
        driver.dynamic(),
        Parallelism::sequential(),
    );

    let mut speedups = Vec::with_capacity(schedule.len());
    let mut halos = Vec::with_capacity(schedule.len());
    let mut inc_times = Vec::with_capacity(schedule.len());
    let mut full_times = Vec::with_capacity(schedule.len());
    for ev in &schedule {
        let (_, delta) = driver.step(ev).expect("in-shape sampling never exhausts");
        let t0 = Instant::now();
        let diff = inc.apply(driver.dynamic(), &delta);
        let inc_dt = t0.elapsed().as_secs_f64();
        let full_dt = check_against_full(&detector, &inc, driver.dynamic());
        speedups.push(full_dt / inc_dt);
        halos.push(diff.halo.len() as f64);
        inc_times.push(inc_dt);
        full_times.push(full_dt);
    }

    Cell {
        scenario: scenario_name(scenario),
        rate,
        seed,
        events: schedule.len(),
        live_final: driver.dynamic().live_count(),
        speedup_p10: percentile(&speedups, 10.0),
        speedup_median: percentile(&speedups, 50.0),
        speedup_p90: percentile(&speedups, 90.0),
        halo_p50: percentile(&halos, 50.0),
        halo_p90: percentile(&halos, 90.0),
        halo_max: percentile(&halos, 100.0),
        mean_inc_us: mean(&inc_times) * 1e6,
        mean_full_us: mean(&full_times) * 1e6,
    }
}

struct HoleCycle {
    filler_nodes: usize,
    groups_initial: usize,
    groups_healed: usize,
    groups_reopened: usize,
    boundary_initial: usize,
    boundary_healed: usize,
    boundary_reopened: usize,
}

/// A one-hole model dense enough for the interior void to be detectable:
/// the 500-node sweep model's radio range (~2.5) exceeds the hole radius
/// (2), so the hole is invisible there. At 1150 nodes / degree 16 the
/// range drops to ~1.95 and detection reports two boundary groups.
fn hole_model(smoke: bool) -> NetworkModel {
    let (surface, interior, degree, seed) =
        if smoke { (80, 100, 12.0, 7) } else { (500, 650, 16.0, 77) };
    NetworkBuilder::new(Scenario::SpaceOneHole)
        .surface_nodes(surface)
        .interior_nodes(interior)
        .target_degree(degree)
        .require_connected(false)
        .seed(seed)
        .build()
        .expect("hole-cycle model generates")
}

/// The one-hole scenario's interior void is a radius-2 sphere at the
/// origin. Starting with the hole open (two boundary groups at full
/// size), *heal* it by joining a dense lattice of filler nodes inside the
/// void (the hole-boundary group dissolves), then *carve* it back open by
/// removing every filler — with exactness asserted after every event.
/// With an enabled `trace` every repair emits a `"churn-event"` span
/// with its dirty-halo size and boundary diff (the `--trace` export).
fn hole_cycle(
    model: &NetworkModel,
    config: DetectorConfig,
    trace: &mut ballfit_obs::Trace,
) -> HoleCycle {
    let mut dynamic = DynamicTopology::new(model.positions(), model.radio_range());
    let detector = BoundaryDetector::new(config);
    let mut inc = IncrementalDetector::new(config, &dynamic);
    let groups_initial = inc.groups().len();
    let boundary_initial = inc.detection().boundary_count();

    // Lattice of filler positions inside the void, spaced well under the
    // radio range so the filled region reads as solid interior.
    let spacing = 0.55 * model.radio_range();
    let hole_radius = 2.0;
    let mut fillers = Vec::new();
    let steps = (2.0 * hole_radius / spacing).ceil() as i64;
    for ix in -steps..=steps {
        for iy in -steps..=steps {
            for iz in -steps..=steps {
                let p = Vec3::new(ix as f64, iy as f64, iz as f64) * spacing;
                if p.norm() < hole_radius - 0.05 {
                    fillers.push(p);
                }
            }
        }
    }

    let first_filler = dynamic.len();
    for &p in &fillers {
        let delta = dynamic.apply(&TopologyEvent::Join { position: p });
        inc.apply_traced(&dynamic, &delta, trace);
        check_against_full(&detector, &inc, &dynamic);
    }
    let groups_healed = inc.groups().len();
    let boundary_healed = inc.detection().boundary_count();

    for slot in first_filler..dynamic.len() {
        let delta = dynamic.apply(&TopologyEvent::Leave { node: slot });
        inc.apply_traced(&dynamic, &delta, trace);
        check_against_full(&detector, &inc, &dynamic);
    }
    HoleCycle {
        filler_nodes: fillers.len(),
        groups_initial,
        groups_healed,
        groups_reopened: inc.groups().len(),
        boundary_initial,
        boundary_healed,
        boundary_reopened: inc.detection().boundary_count(),
    }
}

fn results_path(out: Option<PathBuf>) -> PathBuf {
    if let Some(p) = out {
        return p;
    }
    let dir = std::env::var_os("BALLFIT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("results directory is creatable");
    dir.join("churn_sweep.json")
}

fn main() {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out requires a path"))),
            "--trace" => {
                trace_out = Some(PathBuf::from(args.next().expect("--trace requires a path")));
            }
            "--threads" => {
                let n = args.next().expect("--threads requires a count");
                threads = Some(n.parse().expect("--threads requires a positive integer"));
            }
            "--validate" => {
                let path = PathBuf::from(args.next().expect("--validate requires a path"));
                match json::validate_file(&path) {
                    Ok(()) => {
                        println!("{}: valid JSON", path.display());
                        return;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            }
            other => panic!(
                "unknown argument {other} (expected --smoke / --out <path> / --trace <path> / \
                 --threads <n> / --validate <path>)"
            ),
        }
    }
    let parallelism = threads.map(Parallelism::threads).unwrap_or_default();

    let config = DetectorConfig::default();
    let grid = grid(smoke);
    eprintln!(
        "churn sweep: {} cells, {} thread(s){}",
        grid.scenarios.len() * grid.rates.len() * grid.seeds.len(),
        parallelism.get(),
        if smoke { " (smoke)" } else { "" }
    );

    let models: Vec<(Scenario, NetworkModel)> =
        grid.scenarios.iter().map(|&s| (s, reference_model(s, smoke))).collect();
    let nodes = models.last().map_or(0, |(_, m)| m.len());
    let mut params = Vec::new();
    for (mi, _) in models.iter().enumerate() {
        for &rate in &grid.rates {
            for &seed in &grid.seeds {
                params.push((mi, rate, seed));
            }
        }
    }

    // Every cell drives its own seeded plan on its own dynamic topology,
    // so cells shard over workers; the collected order is the grid order.
    let cells = ballfit_par::par_map(parallelism, &params, |&(mi, rate, seed)| {
        let (scenario, model) = &models[mi];
        run_cell(*scenario, rate, seed, grid.epochs, model, config)
    });
    for ((mi, rate, seed), cell) in params.iter().zip(&cells) {
        eprintln!(
            "  {} rate={:>4} seed={}: {} events exact, speedup median {:.1}x \
             (p10 {:.1}x), halo p50 {:.0} of {} nodes",
            cell.scenario,
            rate,
            seed,
            cell.events,
            cell.speedup_median,
            cell.speedup_p10,
            cell.halo_p50,
            models[*mi].1.len(),
        );
    }

    eprintln!("  hole cycle (heal + re-carve the one-hole void)...");
    let hole = hole_model(smoke);
    let mut trace = if trace_out.is_some() {
        ballfit_obs::Trace::enabled()
    } else {
        ballfit_obs::Trace::disabled()
    };
    let cycle = hole_cycle(&hole, config, &mut trace);
    if let Some(tp) = &trace_out {
        trace.write_jsonl(tp).expect("trace JSONL is writable");
        println!("wrote trace {}", tp.display());
    }
    eprintln!(
        "  hole cycle: {} fillers, groups {} -> {} -> {}, boundary {} -> {} -> {}",
        cycle.filler_nodes,
        cycle.groups_initial,
        cycle.groups_healed,
        cycle.groups_reopened,
        cycle.boundary_initial,
        cycle.boundary_healed,
        cycle.boundary_reopened,
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"experiment\": \"E16-churn\", \"smoke\": {smoke}, \
         \"nodes\": {}, \"epochs\": {}, \"coordinates\": \"ground-truth\", \
         \"exactness\": \"asserted on every event\"}},",
        nodes, grid.epochs
    );
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scenario\": \"{}\", \"rate\": {}, \"seed\": {}, \"events\": {}, \
             \"live_final\": {}, \
             \"speedup\": {{\"p10\": {:.3}, \"median\": {:.3}, \"p90\": {:.3}}}, \
             \"halo\": {{\"p50\": {}, \"p90\": {}, \"max\": {}}}, \
             \"mean_event_us\": {{\"incremental\": {:.1}, \"full\": {:.1}}}}}",
            c.scenario,
            c.rate,
            c.seed,
            c.events,
            c.live_final,
            c.speedup_p10,
            c.speedup_median,
            c.speedup_p90,
            c.halo_p50,
            c.halo_p90,
            c.halo_max,
            c.mean_inc_us,
            c.mean_full_us,
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"hole_cycle\": {{\"scenario\": \"SpaceOneHole\", \"filler_nodes\": {}, \
         \"groups\": {{\"initial\": {}, \"healed\": {}, \"reopened\": {}}}, \
         \"boundary_count\": {{\"initial\": {}, \"healed\": {}, \"reopened\": {}}}}}",
        cycle.filler_nodes,
        cycle.groups_initial,
        cycle.groups_healed,
        cycle.groups_reopened,
        cycle.boundary_initial,
        cycle.boundary_healed,
        cycle.boundary_reopened,
    );
    json.push_str("}\n");

    let path = results_path(out);
    std::fs::write(&path, &json).expect("sweep JSON is writable");
    println!("wrote {}", path.display());
}
