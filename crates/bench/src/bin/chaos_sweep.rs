//! E19 — chaos sweep: detection quality under combined radio faults and
//! topology churn.
//!
//! For every `(loss, crash fraction, churn rate)` cell the sweep runs
//! [`ballfit::chaos::run_chaos`] on a one-hole network: a seeded
//! `ChurnPlan` mutates the topology epoch by epoch while every epoch's
//! hardened detection stack (backoff UBF → repeated flood → evidence
//! grouping) executes under a derived `FaultPlan` (message loss,
//! duplication, transient crashes). The convergence watchdog grades each
//! epoch with a typed `DetectionOutcome`; reported per cell: exact
//! epochs, minimum coverage, mean boundary Jaccard against the
//! incremental oracle, total detection lag (extra rounds vs the
//! fault-free baseline), repair traffic, and the degradation-cause
//! histogram. Results are emitted as JSON (hand-rolled — the sweep is
//! dependency-free by design) into `$BALLFIT_RESULTS` or `results/`.
//!
//! Every reported quantity is a deterministic function of the seeds —
//! no wall-clock fields — so repeated runs are byte-identical.
//!
//! ```sh
//! cargo run --release -p ballfit-bench --bin chaos_sweep            # full grid
//! cargo run --release -p ballfit-bench --bin chaos_sweep -- --smoke # CI smoke run
//! cargo run --release -p ballfit-bench --bin chaos_sweep -- --validate out.json
//! ```
//!
//! Grid cells run in parallel (`--threads N` / `BALLFIT_THREADS`,
//! default all cores); each cell's incremental oracle runs
//! single-threaded so results are independent of the worker count.
//! `--trace <path>` re-runs the heaviest cell with tracing enabled and
//! exports the chaos/epoch/watchdog span tree as JSONL.

use std::fmt::Write as _;
use std::path::PathBuf;

use ballfit_bench::{json, Parallelism};

use ballfit::chaos::{run_chaos, run_chaos_traced, ChaosConfig, ChaosReport, DegradeCause};
use ballfit::config::DetectorConfig;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
use ballfit_wsn::churn::ChurnPlan;

struct Grid {
    losses: Vec<f64>,
    crashes: Vec<f64>,
    rates: Vec<f64>,
    epochs: usize,
}

fn grid(smoke: bool) -> Grid {
    if smoke {
        Grid { losses: vec![0.1], crashes: vec![0.05], rates: vec![0.02], epochs: 2 }
    } else {
        Grid {
            losses: vec![0.0, 0.1, 0.3],
            crashes: vec![0.0, 0.05, 0.1],
            rates: vec![0.01, 0.02],
            epochs: 4,
        }
    }
}

/// The chaos reference network: the paper's one-hole scenario at a size
/// where the full hardened stack (grouping budget is O(n) rounds) stays
/// tractable across the grid. Exactness is judged against the
/// incremental oracle on the *same* churned topology, so detection
/// parity — not hole visibility — is what the sweep measures.
fn reference_model(smoke: bool) -> NetworkModel {
    let (surface, interior, degree, seed) =
        if smoke { (60, 90, 12.0, 11) } else { (120, 180, 12.0, 11) };
    NetworkBuilder::new(Scenario::SpaceOneHole)
        .surface_nodes(surface)
        .interior_nodes(interior)
        .target_degree(degree)
        .require_connected(false)
        .seed(seed)
        .build()
        .expect("reference model generates")
}

/// Position seed for churn joins; fixed so every cell replays the same
/// join-position stream and cells differ only in their fault knobs.
const POSITION_SEED: u64 = 0x00C0_FFEE;
const FAULT_SEED: u64 = 7;

struct Cell {
    loss: f64,
    crash: f64,
    rate: f64,
    epochs: usize,
    exact_epochs: usize,
    min_coverage: f64,
    mean_jaccard: f64,
    total_lag: usize,
    repairs: u64,
    exhausted: u64,
    partition: usize,
    crash_quorum: usize,
    retry_exhausted: usize,
    truncated: usize,
}

fn cell_config(loss: f64, crash: f64, rate: f64, epochs: usize, drift: f64) -> ChaosConfig {
    let churn = ChurnPlan::none()
        .with_seed(9)
        .with_epochs(epochs)
        .with_join_rate(rate)
        .with_leave_rate(rate)
        .with_move_rate(rate)
        .with_max_drift(drift);
    // Zero-noise local-MDS coordinates: both the oracle and the
    // distributed stack embed the same measured distances, so a clean
    // channel reproduces the oracle exactly (see `ChaosConfig` docs).
    ChaosConfig::new(DetectorConfig::paper(0, 0), churn)
        .with_loss(loss)
        .with_duplication(loss / 2.0)
        .with_max_delay(if loss > 0.0 { 1 } else { 0 })
        .with_crash_fraction(crash)
        .with_fault_seed(FAULT_SEED)
}

fn summarize(loss: f64, crash: f64, rate: f64, report: &ChaosReport) -> Cell {
    let mut causes = [0usize; 4];
    for e in &report.epochs {
        if let Some(cause) = e.outcome.cause() {
            let slot = match cause {
                DegradeCause::Partition => 0,
                DegradeCause::CrashQuorum => 1,
                DegradeCause::RetryExhausted => 2,
                DegradeCause::Truncated => 3,
            };
            causes[slot] += 1;
        }
    }
    Cell {
        loss,
        crash,
        rate,
        epochs: report.epochs.len(),
        exact_epochs: report.exact_epochs(),
        min_coverage: report.min_coverage(),
        mean_jaccard: report.mean_jaccard(),
        total_lag: report.total_lag(),
        repairs: report.epochs.iter().map(|e| e.repairs).sum(),
        exhausted: report.epochs.iter().map(|e| e.exhausted).sum(),
        partition: causes[0],
        crash_quorum: causes[1],
        retry_exhausted: causes[2],
        truncated: causes[3],
    }
}

fn results_path(out: Option<PathBuf>) -> PathBuf {
    if let Some(p) = out {
        return p;
    }
    let dir = std::env::var_os("BALLFIT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("results directory is creatable");
    dir.join("chaos_sweep.json")
}

fn main() {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out requires a path"))),
            "--trace" => {
                trace_out = Some(PathBuf::from(args.next().expect("--trace requires a path")));
            }
            "--threads" => {
                let n = args.next().expect("--threads requires a count");
                threads = Some(n.parse().expect("--threads requires a positive integer"));
            }
            "--validate" => {
                let path = PathBuf::from(args.next().expect("--validate requires a path"));
                match json::validate_file(&path) {
                    Ok(()) => {
                        println!("{}: valid JSON", path.display());
                        return;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            }
            other => panic!(
                "unknown argument {other} (expected --smoke / --out <path> / --trace <path> / \
                 --threads <n> / --validate <path>)"
            ),
        }
    }
    let parallelism = threads.map(Parallelism::threads).unwrap_or_default();

    let grid = grid(smoke);
    let model = reference_model(smoke);
    let drift = 0.5 * model.radio_range();
    let mut params = Vec::new();
    for &loss in &grid.losses {
        for &crash in &grid.crashes {
            for &rate in &grid.rates {
                params.push((loss, crash, rate));
            }
        }
    }
    eprintln!(
        "chaos sweep: {} cells x {} epochs on {} nodes, {} thread(s){}",
        params.len(),
        grid.epochs,
        model.len(),
        parallelism.get(),
        if smoke { " (smoke)" } else { "" }
    );

    // Each cell drives its own churn replica and oracle; cells shard
    // over workers and the oracle stays sequential so cell results are
    // independent of the worker count.
    let cells = ballfit_par::par_map(parallelism, &params, |&(loss, crash, rate)| {
        let config = cell_config(loss, crash, rate, grid.epochs, drift);
        let report = run_chaos(&model, &config, POSITION_SEED, Parallelism::sequential())
            .expect("in-shape sampling never exhausts");
        summarize(loss, crash, rate, &report)
    });
    for c in &cells {
        eprintln!(
            "  loss={:>4} crash={:>4} rate={:>4}: {}/{} exact, min coverage {:.3}, \
             mean J {:.3}, lag {}, repairs {}",
            c.loss,
            c.crash,
            c.rate,
            c.exact_epochs,
            c.epochs,
            c.min_coverage,
            c.mean_jaccard,
            c.total_lag,
            c.repairs,
        );
    }

    if let Some(tp) = &trace_out {
        // Re-run the heaviest cell traced: the full chaos/epoch/watchdog
        // span tree, including per-epoch verdict events.
        let &(loss, crash, rate) = params.last().expect("grid is never empty");
        let config = cell_config(loss, crash, rate, grid.epochs, drift);
        let mut trace = ballfit_obs::Trace::enabled();
        run_chaos_traced(&model, &config, POSITION_SEED, Parallelism::sequential(), &mut trace)
            .expect("in-shape sampling never exhausts");
        trace.write_jsonl(tp).expect("trace JSONL is writable");
        println!("wrote trace {}", tp.display());
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"experiment\": \"E19-chaos\", \"smoke\": {smoke}, \
         \"scenario\": \"SpaceOneHole\", \"nodes\": {}, \"epochs\": {}, \
         \"coordinates\": \"local-mds (zero noise)\", \
         \"crash_window\": \"down at round 1, revive at round 6\", \
         \"oracle\": \"incremental detector on the same churned topology\"}},",
        model.len(),
        grid.epochs
    );
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"loss\": {}, \"crash\": {}, \"rate\": {}, \"epochs\": {}, \
             \"exact_epochs\": {}, \"min_coverage\": {:.6}, \"mean_jaccard\": {:.6}, \
             \"total_lag\": {}, \"repairs\": {}, \"exhausted\": {}, \
             \"causes\": {{\"partition\": {}, \"crash_quorum\": {}, \
             \"retry_exhausted\": {}, \"truncated\": {}}}}}",
            c.loss,
            c.crash,
            c.rate,
            c.epochs,
            c.exact_epochs,
            c.min_coverage,
            c.mean_jaccard,
            c.total_lag,
            c.repairs,
            c.exhausted,
            c.partition,
            c.crash_quorum,
            c.retry_exhausted,
            c.truncated,
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = results_path(out);
    std::fs::write(&path, &json).expect("sweep JSON is writable");
    println!("wrote {}", path.display());
}
