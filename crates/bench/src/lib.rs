//! # ballfit-bench
//!
//! Experiment harness for the `ballfit` reproduction of *"Localized
//! Algorithm for Precise Boundary Detection in 3D Wireless Networks"*
//! (ICDCS 2010).
//!
//! The binaries under `src/bin/` regenerate every figure of the paper's
//! evaluation (see `DESIGN.md`'s experiment index, E1–E12) plus ablations;
//! the Criterion benches under `benches/` measure the complexity claims.
//! This library hosts what they share: standard network configurations,
//! the error-sweep driver, a deterministic parallel map (re-exported from
//! `ballfit-par`), an in-process JSON validator for the sweep outputs,
//! CSV emission and console tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

use ballfit::metrics::DetectionStats;
use ballfit::Pipeline;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;
pub use ballfit_par::Parallelism;

/// Error percentages swept in the paper's Figs. 1(g–i) and 11: 0–100% in
/// steps of 10.
pub const PAPER_ERROR_SWEEP: [u32; 11] = [0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

/// The large single-network workload of Fig. 1: the paper uses a 3D
/// network of 4210 nodes with an average nodal degree of 18.8 and one
/// interior hole. Surface/interior split chosen so the boundary population
/// matches the ~1800 boundary nodes visible in Fig. 1(g).
pub fn fig1_network(seed: u64) -> NetworkModel {
    NetworkBuilder::new(Scenario::SpaceOneHole)
        .surface_nodes(1800)
        .interior_nodes(2410)
        .target_degree(18.8)
        .seed(seed)
        .build()
        .expect("fig1 network generates")
}

/// A reduced Fig. 1-style network for quick runs (same shape, ~1/4 size).
pub fn fig1_network_small(seed: u64) -> NetworkModel {
    NetworkBuilder::new(Scenario::SpaceOneHole)
        .surface_nodes(500)
        .interior_nodes(650)
        .target_degree(16.0)
        .seed(seed)
        .build()
        .expect("small fig1 network generates")
}

/// One gallery network (Figs. 6–10 scale): ~700 surface + 1200 interior
/// nodes at the paper's density.
pub fn gallery_network(scenario: Scenario, seed: u64) -> NetworkModel {
    let (surface, interior) = match scenario {
        // The pipe is thin: fewer nodes keep the degree target reachable.
        Scenario::BendedPipe => (500, 800),
        _ => (700, 1200),
    };
    NetworkBuilder::new(scenario)
        .surface_nodes(surface)
        .interior_nodes(interior)
        .target_degree(18.5)
        .seed(seed)
        .build()
        .unwrap_or_else(|e| panic!("gallery network {scenario} (seed {seed}) failed: {e}"))
}

/// Runs the paper pipeline over an error sweep, in parallel, returning
/// `(error_percent, stats)` pairs in sweep order.
pub fn error_sweep(
    model: &NetworkModel,
    percents: &[u32],
    noise_seed: u64,
) -> Vec<(u32, DetectionStats)> {
    parallel_map(percents.to_vec(), |&pct| {
        let result = Pipeline::paper(pct, noise_seed.wrapping_add(pct as u64)).run(model);
        (pct, result.stats)
    })
}

/// Index-preserving parallel map over `inputs` on
/// [`Parallelism::default`] workers (so `BALLFIT_THREADS` pins the
/// count). Delegates to [`ballfit_par::par_map`]: output is byte-identical
/// to `inputs.iter().map(f).collect()` at every thread count.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    ballfit_par::par_map(Parallelism::default(), &inputs, f)
}

/// Where experiment outputs land (`results/` at the workspace root, or
/// `$BALLFIT_RESULTS` when set).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("BALLFIT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("results directory is creatable");
    dir
}

/// Writes a CSV file into the results directory.
///
/// # Panics
///
/// Panics on I/O errors (experiment binaries want loud failures) or when a
/// row's width differs from the header's.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut w = BufWriter::new(File::create(&path).expect("CSV file creatable"));
    writeln!(w, "{}", header.join(",")).expect("write CSV header");
    for row in rows {
        assert_eq!(row.len(), header.len(), "CSV row width mismatch in {name}");
        writeln!(w, "{}", row.join(",")).expect("write CSV row");
    }
    path
}

/// Renders rows as an aligned console table (first row = header).
pub fn format_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let render = |row: &[String]| -> String {
        row.iter()
            .enumerate()
            .map(|(c, cell)| format!("{cell:>width$}", width = widths[c]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&render(&rows[0]));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(2)));
    out.push('\n');
    for row in &rows[1..] {
        out.push_str(&render(row));
        out.push('\n');
    }
    out
}

/// Formats a fraction as `xx.x%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Writes a mesh OBJ file into the results directory and returns its path.
pub fn export_mesh(name: &str, mesh: &ballfit_geom::mesh::TriMesh) -> PathBuf {
    let path = results_dir().join(name);
    let w = BufWriter::new(File::create(&path).expect("OBJ file creatable"));
    ballfit_geom::io::write_obj(w, mesh).expect("OBJ export");
    path
}

/// Small helper: does a results file exist already (used by bins that can
/// reuse expensive sweeps)?
pub fn results_file_exists(name: &str) -> bool {
    Path::new(&results_dir()).join(name).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<i64>>(), |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i64>>());
        assert!(parallel_map(Vec::<i64>::new(), |&x| x).is_empty());
    }

    #[test]
    fn table_and_pct() {
        let t = format_table(&[vec!["h".into()], vec!["row".into()]]);
        assert!(t.contains('h'));
        assert_eq!(pct(0.123), "12.3%");
    }

    #[test]
    fn small_fig1_network_has_a_hole() {
        let model = fig1_network_small(3);
        assert!(model.topology().is_connected());
        assert_eq!(model.scenario().expected_boundaries(), 2);
    }

    #[test]
    fn csv_roundtrip() {
        std::env::set_var("BALLFIT_RESULTS", std::env::temp_dir().join("ballfit_test_results"));
        let path = write_csv("unit_test.csv", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        std::env::remove_var("BALLFIT_RESULTS");
    }
}
