//! Hand-rolled flag parsing (no external dependency).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    command: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Errors from argument parsing and extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A required option is absent.
    Required(String),
    /// An option's value failed to parse.
    Invalid {
        /// Option name.
        option: String,
        /// Raw value.
        value: String,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::Required(o) => write!(f, "required option --{o} is missing"),
            ArgError::Invalid { option, value } => {
                write!(f, "invalid value '{value}' for --{option}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name). Options are
    /// `--key value`; bare `--key` at the end or followed by another
    /// option is a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        out.options.insert(name.to_string(), value);
                    }
                    _ => out.flags.push(name.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(token);
            } else {
                return Err(ArgError::Invalid { option: "<positional>".into(), value: token });
            }
        }
        Ok(out)
    }

    /// The subcommand.
    pub fn command(&self) -> Result<&str, ArgError> {
        self.command.as_deref().ok_or(ArgError::MissingCommand)
    }

    /// A boolean flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// An optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// An optional parsed option.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| ArgError::Invalid { option: name.to_string(), value: v.to_string() }),
        }
    }

    /// A parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        Ok(self.get_parsed(name)?.unwrap_or(default))
    }

    /// A required parsed option.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        self.get_parsed(name)?.ok_or_else(|| ArgError::Required(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = args("detect --seed 7 --error 30 --verbose");
        assert_eq!(a.command().unwrap(), "detect");
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get_or("error", 0u32).unwrap(), 30);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get_or("missing", 5i32).unwrap(), 5);
    }

    #[test]
    fn required_and_invalid() {
        let a = args("gen --nodes abc");
        assert!(matches!(a.require::<u32>("seed"), Err(ArgError::Required(_))));
        assert!(matches!(a.get_parsed::<u32>("nodes"), Err(ArgError::Invalid { .. })));
        let e = ArgError::Required("seed".into());
        assert!(e.to_string().contains("--seed"));
    }

    #[test]
    fn missing_command() {
        let a = Args::parse(Vec::new()).unwrap();
        assert!(matches!(a.command(), Err(ArgError::MissingCommand)));
    }

    #[test]
    fn stray_positional_is_rejected() {
        assert!(Args::parse(["a".into(), "b".into()]).is_err());
    }

    #[test]
    fn flag_before_option() {
        let a = args("run --fast --seed 3");
        assert!(a.flag("fast"));
        assert_eq!(a.get("seed"), Some("3"));
    }
}
