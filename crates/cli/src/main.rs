//! `ballfit-cli` — drive the boundary-detection pipeline from the shell.
//!
//! ```text
//! ballfit-cli generate --scenario sphere --surface 400 --interior 800 --seed 1 --out net.json
//! ballfit-cli detect   --net net.json --error 20 [--json]
//! ballfit-cli mesh     --net net.json --error 20 --k 3 --out-prefix mesh
//! ballfit-cli sweep    --scenario one_hole --surface 500 --interior 800 --seed 1
//! ballfit-cli serve    [--threads N]   # JSONL requests on stdin
//! ballfit-cli scenarios
//! ```

mod args;

use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::process::ExitCode;

use args::Args;
use ballfit::Pipeline;
use ballfit_geom::io::write_obj;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::scenario::Scenario;

const USAGE: &str = "\
ballfit-cli — localized 3D boundary detection (ICDCS 2010 reproduction)

USAGE:
  ballfit-cli <command> [--option value]...

COMMANDS:
  scenarios                                List available scenarios
  generate   --scenario S --out FILE       Generate a network (JSON)
             [--surface N] [--interior N] [--degree D] [--seed X]
  detect     --net FILE [--error P]        Detect boundary nodes
             [--backend B] [--seed X] [--json] [--trace FILE]
             (backends: ubf, stat; default ubf)
  mesh       --net FILE --out-prefix P     Detect + build surface meshes (OBJ)
             [--error P] [--k K] [--seed X]
  sweep      --scenario S                  Error sweep 0..100% on a fresh network
             [--surface N] [--interior N] [--degree D] [--seed X]
  serve      [--threads N]                 Serve JSONL requests from stdin
                                           (multi-tenant; see ballfit-serve)
";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    match args.command()? {
        "scenarios" => {
            for s in Scenario::ALL {
                println!("{:<12} ({} boundaries expected)", s.name(), s.expected_boundaries());
            }
            Ok(())
        }
        "generate" => generate(args),
        "detect" => detect(args),
        "mesh" => mesh(args),
        "sweep" => sweep(args),
        "serve" => serve(args),
        other => Err(format!("unknown command '{other}'").into()),
    }
}

fn scenario_by_name(name: &str) -> Result<Scenario, String> {
    Scenario::by_name(name)
        .ok_or_else(|| format!("unknown scenario '{name}' (try `ballfit-cli scenarios`)"))
}

fn build_network(args: &Args) -> Result<NetworkModel, Box<dyn std::error::Error>> {
    let scenario = scenario_by_name(args.get("scenario").unwrap_or("sphere"))?;
    let model = NetworkBuilder::new(scenario)
        .surface_nodes(args.get_or("surface", 400usize)?)
        .interior_nodes(args.get_or("interior", 700usize)?)
        .target_degree(args.get_or("degree", 18.5f64)?)
        .seed(args.get_or("seed", 0u64)?)
        .build()?;
    Ok(model)
}

fn load_network(args: &Args) -> Result<NetworkModel, Box<dyn std::error::Error>> {
    let path: String = args.require("net")?;
    let file = BufReader::new(File::open(&path)?);
    Ok(serde_json::from_reader(file)?)
}

fn generate(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let model = build_network(args)?;
    let out: String = args.require("out")?;
    let file = BufWriter::new(File::create(&out)?);
    serde_json::to_writer(file, &model)?;
    println!(
        "wrote {out}: {} nodes ({} boundary ground truth), range {:.3}, avg degree {:.1}",
        model.len(),
        model.surface_count(),
        model.radio_range(),
        model.topology().degree_stats().mean
    );
    Ok(())
}

fn detect(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let backend = args.get("backend").unwrap_or("ubf");
    if !ballfit_backends::NAMES.contains(&backend) {
        return Err(format!(
            "unknown backend '{backend}' (known: {})",
            ballfit_backends::NAMES.join(", ")
        )
        .into());
    }
    let model = load_network(args)?;
    let error: u32 = args.get_or("error", 0)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let trace_path = args.get("trace").map(String::from);
    let mut trace = if trace_path.is_some() {
        ballfit_obs::Trace::enabled()
    } else {
        ballfit_obs::Trace::disabled()
    };
    if backend == "ubf" {
        // Reference path: the full pipeline including surface meshing
        // stays byte-for-byte what it was before backends existed.
        let result = Pipeline::paper(error, seed).run_traced(&model, &mut trace);
        if let Some(path) = &trace_path {
            trace.write_jsonl(std::path::Path::new(path))?;
            eprintln!("wrote trace {path}");
        }
        if args.flag("json") {
            println!("{}", serde_json::to_string_pretty(&result.stats)?);
        } else {
            println!("{}", result.stats);
            println!("groups: {}", result.detection.groups.len());
            for (i, g) in result.detection.groups.iter().enumerate() {
                println!("  boundary {i}: {} nodes", g.len());
            }
        }
        return Ok(());
    }
    let view = ballfit::view::NetView::from_model(&model);
    let detector = ballfit_backends::configured(
        backend,
        ballfit::config::DetectorConfig::paper(error, seed),
        seed,
        ballfit_par::Parallelism::from_env(),
    )
    .expect("backend name validated against the registry");
    let result = detector.detect(&view, &mut trace);
    if let Some(path) = &trace_path {
        trace.write_jsonl(std::path::Path::new(path))?;
        eprintln!("wrote trace {path}");
    }
    let stats = ballfit::metrics::DetectionStats::evaluate(&model, &result.detection);
    if args.flag("json") {
        println!("{}", serde_json::to_string_pretty(&stats)?);
    } else {
        println!("{stats}");
        println!("groups: {}", result.detection.groups.len());
        for (i, g) in result.detection.groups.iter().enumerate() {
            println!("  boundary {i}: {} nodes", g.len());
        }
        println!(
            "cost: {} messages, {} bytes, {} rounds, {} ball tests",
            result.messages,
            result.bytes,
            result.rounds,
            result.ball_tests()
        );
    }
    Ok(())
}

fn mesh(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let model = load_network(args)?;
    let error: u32 = args.get_or("error", 0)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let mut pipeline = Pipeline::paper(error, seed);
    pipeline.surface.k = args.get_or("k", 3)?;
    let result = pipeline.run(&model);
    let prefix: String = args.require("out-prefix")?;
    for (i, surface) in result.surfaces.iter().enumerate() {
        let path = format!("{prefix}_{i}.obj");
        write_obj(BufWriter::new(File::create(&path)?), &surface.mesh)?;
        println!(
            "{path}: {} landmarks, {} faces, Euler {}, manifold {:.0}%",
            surface.stats.landmarks,
            surface.stats.faces,
            surface.stats.euler,
            100.0 * surface.stats.audit.manifold_fraction()
        );
    }
    if result.surfaces.is_empty() {
        println!("no boundary group produced enough landmarks to mesh");
    }
    Ok(())
}

fn sweep(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let model = build_network(args)?;
    let mut out = std::io::stdout().lock();
    writeln!(out, "error,truth,found,correct,mistaken,missing")?;
    for error in [0u32, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let stats = Pipeline::paper(error, 1).run(&model).stats;
        writeln!(
            out,
            "{error},{},{},{},{},{}",
            stats.truth, stats.found, stats.correct, stats.mistaken, stats.missing
        )?;
    }
    Ok(())
}

fn serve(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let parallelism = match args.get_parsed::<usize>("threads")? {
        Some(n) => ballfit_par::Parallelism::threads(n),
        None => ballfit_par::Parallelism::from_env(),
    };
    ballfit_serve::run_stdio(parallelism)?;
    Ok(())
}
