//! Cyclic Jacobi eigendecomposition for symmetric matrices.

use crate::matrix::SquareMatrix;

/// Result of an eigendecomposition: `values[k]` belongs to the unit
/// eigenvector stored in column `k` of `vectors`, sorted by descending
/// eigenvalue.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `k` pairs with `values[k]`.
    pub vectors: SquareMatrix,
}

impl EigenDecomposition {
    /// Extracts eigenvector `k` as an owned vector.
    pub fn vector(&self, k: usize) -> Vec<f64> {
        (0..self.vectors.n()).map(|i| self.vectors[(i, k)]).collect()
    }
}

/// Computes all eigenpairs of a symmetric matrix with the cyclic Jacobi
/// method.
///
/// Jacobi is quadratically convergent and unconditionally stable for
/// symmetric input; for the neighborhood-sized matrices of the ballfit
/// pipeline (`n ≤ ~60`) it is the method of choice.
///
/// # Panics
///
/// Panics if `m` is not symmetric within `1e-8`.
pub fn jacobi_eigen(m: &SquareMatrix) -> EigenDecomposition {
    assert!(m.is_symmetric(1e-8), "jacobi_eigen requires a symmetric matrix");
    let n = m.n();
    let mut a = m.clone();
    let mut v = SquareMatrix::identity(n);

    let max_sweeps = 100;
    let tol = 1e-13 * (1.0 + a.off_diagonal_norm());
    for _ in 0..max_sweeps {
        if a.off_diagonal_norm() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent computation.
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // A ← Jᵀ A J applied in place.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate rotations into V.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[(j, j)].total_cmp(&a[(i, i)]));
    let values: Vec<f64> = order.iter().map(|&k| a[(k, k)]).collect();
    let vectors = SquareMatrix::from_fn(n, |i, k| v[(i, order[k])]);
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &EigenDecomposition) -> SquareMatrix {
        let n = e.values.len();
        SquareMatrix::from_fn(n, |i, j| {
            (0..n).map(|k| e.values[k] * e.vectors[(i, k)] * e.vectors[(j, k)]).sum()
        })
    }

    #[test]
    fn diagonal_matrix() {
        let mut m = SquareMatrix::zeros(3);
        m[(0, 0)] = 3.0;
        m[(1, 1)] = 1.0;
        m[(2, 2)] = 2.0;
        let e = jacobi_eigen(&m);
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = SquareMatrix::from_fn(2, |i, j| if i == j { 2.0 } else { 1.0 });
        let e = jacobi_eigen(&m);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = e.vector(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_random_symmetric() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1234);
        for n in [1usize, 2, 5, 12, 25] {
            let mut m = SquareMatrix::zeros(n);
            for i in 0..n {
                for j in i..n {
                    let x = rng.gen_range(-2.0..2.0);
                    m[(i, j)] = x;
                    m[(j, i)] = x;
                }
            }
            let e = jacobi_eigen(&m);
            let r = reconstruct(&e);
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (r[(i, j)] - m[(i, j)]).abs() < 1e-8,
                        "n={n} mismatch at ({i},{j}): {} vs {}",
                        r[(i, j)],
                        m[(i, j)]
                    );
                }
            }
            // Eigenvalues must be sorted descending.
            for w in e.values.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10;
        let mut m = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                let x = rng.gen_range(-1.0..1.0);
                m[(i, j)] = x;
                m[(j, i)] = x;
            }
        }
        let e = jacobi_eigen(&m);
        for a in 0..n {
            for b in 0..n {
                let dot: f64 = (0..n).map(|i| e.vectors[(i, a)] * e.vectors[(i, b)]).sum();
                let expected = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-9, "({a},{b}) dot {dot}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_input_panics() {
        let m = SquareMatrix::from_fn(2, |i, j| (i * 2 + j) as f64);
        let _ = jacobi_eigen(&m);
    }
}
