//! Per-node local coordinate frames from noisy 1-hop distance measurements.
//!
//! This realizes step (I) of the paper's UBF algorithm: node `i` collects
//! the measured distances between all pairs of nodes within its one-hop
//! neighborhood `N(i)` and embeds them in a *local* 3D frame (no global
//! alignment). Pairs that are mutual radio neighbors have measurements;
//! pairs that are not (two neighbors of `i` more than one radio range
//! apart) are completed by shortest paths *within the neighborhood graph*,
//! the MDS-MAP approach of Shang & Ruml.

use ballfit_geom::Vec3;

use crate::cmds::classical_mds;
use crate::matrix::SquareMatrix;
use crate::smacof::{self, SmacofConfig};
use crate::MdsError;

/// Input to a local embedding: `n` neighborhood members and the measured
/// distances for the pairs that have them.
#[derive(Debug, Clone)]
pub struct LocalDistances {
    n: usize,
    /// `measured[i][j] = Some(d)` for measured pairs; symmetric.
    measured: Vec<Vec<Option<f64>>>,
}

impl LocalDistances {
    /// Creates an empty measurement table over `n` members.
    pub fn new(n: usize) -> Self {
        LocalDistances { n, measured: vec![vec![None; n]; n] }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if there are no members.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Records a symmetric measurement between members `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range, equal, or `d` is negative or
    /// non-finite.
    pub fn set(&mut self, i: usize, j: usize, d: f64) {
        assert!(i < self.n && j < self.n && i != j, "invalid pair ({i}, {j})");
        assert!(d.is_finite() && d >= 0.0, "invalid distance {d}");
        self.measured[i][j] = Some(d);
        self.measured[j][i] = Some(d);
    }

    /// The recorded measurement, if any.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i == j {
            Some(0.0)
        } else {
            self.measured[i][j]
        }
    }

    /// Completes the table into a full matrix using all-pairs shortest
    /// paths over the measured edges (Floyd–Warshall; neighborhoods are
    /// small).
    ///
    /// # Errors
    ///
    /// [`MdsError::DisconnectedNeighborhood`] if some pair remains
    /// unreachable.
    pub fn complete(&self) -> Result<SquareMatrix, MdsError> {
        let n = self.n;
        let mut d = SquareMatrix::from_fn(n, |i, j| {
            if i == j {
                0.0
            } else {
                self.measured[i][j].unwrap_or(f64::INFINITY)
            }
        });
        for k in 0..n {
            for i in 0..n {
                let dik = d[(i, k)];
                if !dik.is_finite() {
                    continue;
                }
                for j in 0..n {
                    let via = dik + d[(k, j)];
                    if via < d[(i, j)] {
                        d[(i, j)] = via;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                if !d[(i, j)].is_finite() {
                    return Err(MdsError::DisconnectedNeighborhood);
                }
            }
        }
        Ok(d)
    }
}

/// Configuration of the local embedding.
#[derive(Debug, Clone, Copy)]
pub struct LocalFrameConfig {
    /// Whether to run SMACOF refinement after classical MDS (the paper
    /// adopts the *improved* MDS localization, which refines).
    pub refine: bool,
    /// SMACOF parameters when `refine` is set.
    pub smacof: SmacofConfig,
    /// Lower bound asserted for *unmeasured* pairs during refinement: in a
    /// radio network an unmeasured pair is an out-of-range pair, so its
    /// true distance exceeds the radio range. `None` leaves unmeasured
    /// pairs unconstrained.
    pub missing_floor: Option<f64>,
    /// Hinge weight of the floor terms relative to measured pairs.
    pub floor_weight: f64,
}

impl Default for LocalFrameConfig {
    fn default() -> Self {
        LocalFrameConfig {
            refine: true,
            smacof: SmacofConfig::default(),
            missing_floor: None,
            floor_weight: 0.1,
        }
    }
}

/// A computed local frame: coordinates per neighborhood member, in the
/// member order of the input [`LocalDistances`].
#[derive(Debug, Clone)]
pub struct LocalFrame {
    /// Embedded coordinates (centered, arbitrary orientation/handedness).
    pub coords: Vec<Vec3>,
    /// Final raw stress over the measured pairs (0 for exact inputs).
    pub stress: f64,
}

/// Embeds a neighborhood into a local 3D frame.
///
/// # Errors
///
/// Propagates [`MdsError`] from completion and MDS (too few points,
/// disconnected neighborhood, invalid distances).
pub fn embed_local(
    distances: &LocalDistances,
    config: LocalFrameConfig,
) -> Result<LocalFrame, MdsError> {
    let full = distances.complete()?;
    let mut coords = classical_mds(&full)?;
    // Refinement is weighted to the *measured* pairs: the shortest-path
    // completions seeded classical MDS but are systematically inflated, so
    // they must not keep pulling on the refined frame.
    let measured = |i: usize, j: usize| i != j && distances.get(i, j).is_some();
    let stress = match (config.refine, config.missing_floor) {
        (false, _) => smacof::stress(&coords, &full, measured),
        (true, None) => smacof::refine_weighted(&mut coords, &full, measured, config.smacof),
        (true, Some(floor)) => smacof::refine_with_floors(
            &mut coords,
            &full,
            measured,
            |i, j| (i != j && distances.get(i, j).is_none()).then_some(floor),
            config.floor_weight,
            config.smacof,
        ),
    };
    Ok(LocalFrame { coords, stress })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build measurements from true points, marking only pairs within
    /// `range` as measured.
    fn from_points(points: &[Vec3], range: f64) -> LocalDistances {
        let mut ld = LocalDistances::new(points.len());
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                let d = points[i].distance(points[j]);
                if d <= range {
                    ld.set(i, j, d);
                }
            }
        }
        ld
    }

    #[test]
    fn complete_fills_via_shortest_paths() {
        // Chain 0-1-2 with unit links; pair (0,2) unmeasured → completed to 2.
        let pts = vec![Vec3::ZERO, Vec3::X, Vec3::new(2.0, 0.0, 0.0)];
        let ld = from_points(&pts, 1.0);
        assert_eq!(ld.get(0, 2), None);
        assert_eq!(ld.get(0, 0), Some(0.0));
        let full = ld.complete().unwrap();
        assert_eq!(full[(0, 2)], 2.0);
        assert_eq!(full[(0, 1)], 1.0);
    }

    #[test]
    fn disconnected_neighborhood_errors() {
        let pts = vec![Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0)];
        let ld = from_points(&pts, 1.0);
        assert_eq!(ld.complete(), Err(MdsError::DisconnectedNeighborhood));
    }

    #[test]
    fn exact_measurements_recover_geometry() {
        let pts = vec![
            Vec3::new(0.1, 0.0, 0.2),
            Vec3::new(0.9, 0.1, 0.0),
            Vec3::new(0.4, 0.8, 0.1),
            Vec3::new(0.3, 0.3, 0.9),
            Vec3::new(0.6, 0.5, 0.5),
        ];
        // All pairs measured (range large).
        let ld = from_points(&pts, 10.0);
        let frame = embed_local(&ld, LocalFrameConfig::default()).unwrap();
        assert!(frame.stress < 1e-10, "stress {}", frame.stress);
        // Pairwise distances preserved.
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let truth = pts[i].distance(pts[j]);
                let got = frame.coords[i].distance(frame.coords[j]);
                assert!((truth - got).abs() < 1e-6, "pair ({i},{j}): {truth} vs {got}");
            }
        }
    }

    #[test]
    fn refinement_never_hurts() {
        let pts = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.5, 0.9, 0.0),
            Vec3::new(0.4, 0.3, 0.8),
            Vec3::new(1.2, 0.7, 0.3),
            Vec3::new(0.1, 1.0, 0.6),
        ];
        // Restrict measurements so some pairs are path-completed (inflated),
        // making the input slightly non-Euclidean.
        let ld = from_points(&pts, 1.1);
        let plain =
            embed_local(&ld, LocalFrameConfig { refine: false, ..Default::default() }).unwrap();
        let refined = embed_local(&ld, LocalFrameConfig::default()).unwrap();
        assert!(refined.stress <= plain.stress + 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid pair")]
    fn set_diagonal_panics() {
        let mut ld = LocalDistances::new(3);
        ld.set(1, 1, 0.5);
    }

    #[test]
    #[should_panic(expected = "invalid distance")]
    fn set_negative_panics() {
        let mut ld = LocalDistances::new(3);
        ld.set(0, 1, -0.5);
    }
}
