//! SMACOF stress-majorization refinement.
//!
//! Classical MDS minimizes *strain*; the "improved MDS-based localization"
//! the paper adopts (`[31]` Shang & Ruml) follows the closed-form solution
//! with an iterative least-squares refinement. SMACOF (Scaling by
//! MAjorizing a COmplicated Function) is that refinement: it monotonically
//! decreases the raw stress
//! `σ(X) = Σ_{i<j} w_ij (‖x_i − x_j‖ − d_ij)²`
//! via the Guttman transform.

use ballfit_geom::Vec3;

use crate::matrix::SquareMatrix;

/// Raw stress of an embedding against target distances with binary weights:
/// pairs with `weight(i, j) == false` are ignored (unmeasured pairs).
///
/// # Panics
///
/// Panics if `coords.len() != distances.n()`.
pub fn stress<W: Fn(usize, usize) -> bool>(
    coords: &[Vec3],
    distances: &SquareMatrix,
    weight: W,
) -> f64 {
    let n = coords.len();
    assert_eq!(n, distances.n(), "dimension mismatch");
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            if weight(i, j) {
                let err = coords[i].distance(coords[j]) - distances[(i, j)];
                s += err * err;
            }
        }
    }
    s
}

/// Configuration for [`refine`].
#[derive(Debug, Clone, Copy)]
pub struct SmacofConfig {
    /// Maximum Guttman iterations.
    pub max_iterations: usize,
    /// Stop when the relative stress improvement drops below this.
    pub tolerance: f64,
}

impl Default for SmacofConfig {
    fn default() -> Self {
        SmacofConfig { max_iterations: 50, tolerance: 1e-6 }
    }
}

/// Refines an embedding in place with uniform-weight SMACOF iterations,
/// returning the final stress. The initial `coords` (typically the
/// classical-MDS solution) determine the basin of attraction.
///
/// The uniform-weight Guttman transform is `X ← B(Z) Z / n` with
/// `B(Z)_{ij} = −d_ij / ‖z_i − z_j‖` off the diagonal; coincident points
/// contribute zero (standard SMACOF convention).
///
/// # Panics
///
/// Panics if `coords.len() != distances.n()`.
pub fn refine(coords: &mut [Vec3], distances: &SquareMatrix, config: SmacofConfig) -> f64 {
    let n = coords.len();
    assert_eq!(n, distances.n(), "dimension mismatch");
    if n < 2 {
        return 0.0;
    }
    let all = |_: usize, _: usize| true;
    let mut current = stress(coords, distances, all);
    for _ in 0..config.max_iterations {
        // Guttman transform: X_i ← (1/n) · (B_ii Z_i + Σ_{j≠i} B_ij Z_j)
        // with B_ij = −d_ij / ‖z_i − z_j‖ and B_ii = −Σ_{j≠i} B_ij.
        let z: Vec<Vec3> = coords.to_vec();
        for (i, c) in coords.iter_mut().enumerate() {
            let mut acc = Vec3::ZERO;
            let mut diag = 0.0;
            for (j, zj) in z.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dist = z[i].distance(*zj);
                let b = if dist > 1e-12 { -distances[(i, j)] / dist } else { 0.0 };
                acc += *zj * b;
                diag -= b;
            }
            *c = (z[i] * diag + acc) / n as f64;
        }
        let next = stress(coords, distances, all);
        if current - next <= config.tolerance * current.max(1e-30) {
            return next;
        }
        current = next;
    }
    current
}

/// Refines an embedding against *selected* pairs only (binary weights):
/// pairs with `weight(i, j) == false` are ignored entirely.
///
/// This is the right refinement for MDS-MAP-style local frames, where
/// unmeasured pairs were filled by shortest-path estimates: those inflated
/// values seed the classical-MDS start but must not keep pulling on the
/// solution. The update is the per-point weighted Guttman step
/// `x_i ← mean_{j ∈ meas(i)} ( z_j + d_ij · (z_i − z_j)/‖z_i − z_j‖ )`,
/// guarded to return the lowest-stress iterate seen.
///
/// Returns the final (weighted) stress; `coords` holds the best iterate.
///
/// # Panics
///
/// Panics if `coords.len() != distances.n()`.
pub fn refine_weighted<W: Fn(usize, usize) -> bool>(
    coords: &mut [Vec3],
    distances: &SquareMatrix,
    weight: W,
    config: SmacofConfig,
) -> f64 {
    let n = coords.len();
    assert_eq!(n, distances.n(), "dimension mismatch");
    if n < 2 {
        return 0.0;
    }
    // Pre-collect each point's measured partners.
    let partners: Vec<Vec<usize>> = (0..n)
        .map(|i| (0..n).filter(|&j| j != i && weight(i.min(j), i.max(j))).collect())
        .collect();
    let wfn = |i: usize, j: usize| weight(i.min(j), i.max(j));

    let mut best = coords.to_vec();
    let mut best_stress = stress(coords, distances, wfn);
    let mut current = best_stress;
    for _ in 0..config.max_iterations {
        let z: Vec<Vec3> = coords.to_vec();
        for (i, c) in coords.iter_mut().enumerate() {
            if partners[i].is_empty() {
                continue;
            }
            let mut acc = Vec3::ZERO;
            for &j in &partners[i] {
                let delta = z[i] - z[j];
                let dist = delta.norm();
                let target = if dist > 1e-12 {
                    z[j] + delta * (distances[(i, j)] / dist)
                } else {
                    z[j] // coincident: leave at partner (degenerate)
                };
                acc += target;
            }
            *c = acc / partners[i].len() as f64;
        }
        let next = stress(coords, distances, wfn);
        if next < best_stress {
            best_stress = next;
            best.copy_from_slice(coords);
        }
        if (current - next).abs() <= config.tolerance * current.max(1e-30) {
            break;
        }
        current = next;
    }
    coords.copy_from_slice(&best);
    best_stress
}

/// Like [`refine_weighted`], with an additional *floor* on selected pairs:
/// for pairs where `floor(i, j)` is `Some(f)`, the embedding is penalized
/// (with weight `floor_weight`) whenever it places them closer than `f` —
/// a one-sided hinge.
///
/// This encodes radio semantics: a pair with *no* distance measurement is
/// a pair out of radio range, i.e. truly farther than the range. Without
/// the floor, unmeasured pairs are unconstrained and noisy frames can
/// collapse them inward, blocking the empty-ball regions Unit Ball
/// Fitting looks for.
///
/// Returns the hinge-augmented stress of the best iterate (kept in
/// `coords`).
///
/// # Panics
///
/// Panics if `coords.len() != distances.n()` or `floor_weight < 0`.
pub fn refine_with_floors<W, Fl>(
    coords: &mut [Vec3],
    distances: &SquareMatrix,
    weight: W,
    floor: Fl,
    floor_weight: f64,
    config: SmacofConfig,
) -> f64
where
    W: Fn(usize, usize) -> bool,
    Fl: Fn(usize, usize) -> Option<f64>,
{
    let n = coords.len();
    assert_eq!(n, distances.n(), "dimension mismatch");
    assert!(floor_weight >= 0.0, "floor weight must be non-negative");
    if n < 2 {
        return 0.0;
    }
    let wfn = |i: usize, j: usize| weight(i.min(j), i.max(j));
    let floor_fn = |i: usize, j: usize| floor(i.min(j), i.max(j));

    let total_stress = |x: &[Vec3]| -> f64 {
        let mut s = stress(x, distances, wfn);
        for i in 0..n {
            for j in (i + 1)..n {
                if let Some(f) = floor_fn(i, j) {
                    let d = x[i].distance(x[j]);
                    if d < f {
                        let err = f - d;
                        s += floor_weight * err * err;
                    }
                }
            }
        }
        s
    };

    let mut best = coords.to_vec();
    let mut best_stress = total_stress(coords);
    let mut current = best_stress;
    for _ in 0..config.max_iterations {
        let z: Vec<Vec3> = coords.to_vec();
        for (i, c) in coords.iter_mut().enumerate() {
            let mut acc = Vec3::ZERO;
            let mut total_weight = 0.0;
            for (j, zj) in z.iter().enumerate() {
                if i == j {
                    continue;
                }
                let delta = z[i] - z[j];
                let dist = delta.norm();
                if wfn(i, j) {
                    let target =
                        if dist > 1e-12 { *zj + delta * (distances[(i, j)] / dist) } else { *zj };
                    acc += target;
                    total_weight += 1.0;
                } else if let Some(f) = floor_fn(i, j) {
                    if dist < f && dist > 1e-12 {
                        // Push out to the floor with the hinge weight.
                        let target = *zj + delta * (f / dist);
                        acc += target * floor_weight;
                        total_weight += floor_weight;
                    }
                }
            }
            if total_weight > 0.0 {
                *c = acc / total_weight;
            }
        }
        let next = total_stress(coords);
        if next < best_stress {
            best_stress = next;
            best.copy_from_slice(coords);
        }
        if (current - next).abs() <= config.tolerance * current.max(1e-30) {
            break;
        }
        current = next;
    }
    coords.copy_from_slice(&best);
    best_stress
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmds::{classical_mds, embedding_rmse};

    fn distance_matrix(points: &[Vec3]) -> SquareMatrix {
        SquareMatrix::from_fn(points.len(), |i, j| points[i].distance(points[j]))
    }

    #[test]
    fn stress_of_exact_embedding_is_zero() {
        let pts = vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z];
        let d = distance_matrix(&pts);
        assert!(stress(&pts, &d, |_, _| true) < 1e-15);
    }

    #[test]
    fn stress_weights_exclude_pairs() {
        let pts = vec![Vec3::ZERO, Vec3::X];
        let mut d = SquareMatrix::zeros(2);
        d[(0, 1)] = 5.0;
        d[(1, 0)] = 5.0;
        assert!(stress(&pts, &d, |_, _| true) > 0.0);
        assert_eq!(stress(&pts, &d, |_, _| false), 0.0);
    }

    #[test]
    fn refine_decreases_stress_from_perturbed_start() {
        let pts = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.4, 1.1, 0.0),
            Vec3::new(0.3, 0.4, 0.9),
            Vec3::new(0.8, 0.7, 0.4),
        ];
        let d = distance_matrix(&pts);
        // Perturb the truth and let SMACOF pull it back.
        let mut coords: Vec<Vec3> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| p + Vec3::new(0.05, -0.04, 0.03) * ((i % 3) as f64))
            .collect();
        let before = stress(&coords, &d, |_, _| true);
        let after = refine(&mut coords, &d, SmacofConfig::default());
        assert!(after < before, "stress must not increase: {before} -> {after}");
        assert!(after < 1e-6, "should converge to near-exact: {after}");
    }

    #[test]
    fn refine_improves_classical_mds_under_noise() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let pts: Vec<Vec3> = (0..10)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let noisy = SquareMatrix::from_fn(pts.len(), |i, j| {
            if i == j {
                0.0
            } else {
                let (a, b) = if i < j { (i, j) } else { (j, i) };
                let bump = (((a * 13 + b * 7) % 5) as f64 - 2.0) * 0.02;
                (pts[i].distance(pts[j]) + bump).max(0.01)
            }
        });
        let mut coords = classical_mds(&noisy).unwrap();
        let rmse_before = embedding_rmse(&coords, &noisy);
        refine(&mut coords, &noisy, SmacofConfig::default());
        let rmse_after = embedding_rmse(&coords, &noisy);
        assert!(
            rmse_after <= rmse_before + 1e-12,
            "SMACOF worsened the fit: {rmse_before} -> {rmse_after}"
        );
    }

    #[test]
    fn weighted_refine_fixes_measured_pairs_despite_bad_fill() {
        // Square with unit sides measured; diagonals "completed" to inflated
        // 2-hop values (2.0 instead of √2). Weighted refinement must restore
        // the measured sides while uniform refinement compromises them.
        let side = 1.0;
        let mut d = SquareMatrix::zeros(4);
        let pairs = [(0, 1), (1, 2), (2, 3), (3, 0)];
        for &(a, b) in &pairs {
            d[(a, b)] = side;
            d[(b, a)] = side;
        }
        d[(0, 2)] = 2.0;
        d[(2, 0)] = 2.0;
        d[(1, 3)] = 2.0;
        d[(3, 1)] = 2.0;
        let measured = |i: usize, j: usize| pairs.contains(&(i, j)) || pairs.contains(&(j, i));

        let mut coords = classical_mds(&d).unwrap();
        let s = refine_weighted(&mut coords, &d, measured, SmacofConfig::default());
        for &(a, b) in &pairs {
            let got = coords[a].distance(coords[b]);
            assert!((got - side).abs() < 0.02, "side ({a},{b}) = {got}");
        }
        assert!(s < 1e-3, "weighted stress {s}");
    }

    #[test]
    fn floors_push_unmeasured_pairs_apart() {
        // Two measured unit edges 0-1 and 1-2; pair (0,2) unmeasured with
        // floor 1.5, but seeded collapsed (distance 0.4). The floor must
        // push 0 and 2 apart past ~1.5 while keeping the measured edges.
        let mut d = SquareMatrix::zeros(3);
        d[(0, 1)] = 1.0;
        d[(1, 0)] = 1.0;
        d[(1, 2)] = 1.0;
        d[(2, 1)] = 1.0;
        let measured = |i: usize, j: usize| (i, j) == (0, 1) || (i, j) == (1, 2);
        let floor = |i: usize, j: usize| ((i, j) == (0, 2)).then_some(1.5);
        let mut coords = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.9, 0.3, 0.0),
            Vec3::new(0.4, 0.0, 0.0), // collapsed toward node 0
        ];
        refine_with_floors(
            &mut coords,
            &d,
            measured,
            floor,
            0.5,
            SmacofConfig { max_iterations: 200, tolerance: 1e-12 },
        );
        assert!((coords[0].distance(coords[1]) - 1.0).abs() < 0.05);
        assert!((coords[1].distance(coords[2]) - 1.0).abs() < 0.05);
        assert!(
            coords[0].distance(coords[2]) > 1.3,
            "floor not enforced: {}",
            coords[0].distance(coords[2])
        );
    }

    #[test]
    fn floors_inactive_when_already_far() {
        let mut d = SquareMatrix::zeros(2);
        d[(0, 1)] = 1.0;
        d[(1, 0)] = 1.0;
        let mut coords = vec![Vec3::ZERO, Vec3::X];
        let s = refine_with_floors(
            &mut coords,
            &d,
            |_, _| true,
            |_, _| Some(0.5), // already satisfied
            1.0,
            SmacofConfig::default(),
        );
        assert!(s < 1e-12);
        assert!((coords[0].distance(coords[1]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_refine_with_no_pairs_is_a_noop() {
        let d = SquareMatrix::zeros(3);
        let mut coords = vec![Vec3::ZERO, Vec3::X, Vec3::Y];
        let orig = coords.clone();
        let s = refine_weighted(&mut coords, &d, |_, _| false, SmacofConfig::default());
        assert_eq!(s, 0.0);
        assert_eq!(coords, orig);
    }

    #[test]
    fn refine_trivial_sizes() {
        let d = SquareMatrix::zeros(1);
        let mut one = vec![Vec3::ZERO];
        assert_eq!(refine(&mut one, &d, SmacofConfig::default()), 0.0);
    }
}
