//! Classical (Torgerson) multidimensional scaling into 3D.

use ballfit_geom::Vec3;

use crate::eigen::jacobi_eigen;
use crate::matrix::SquareMatrix;
use crate::MdsError;

/// Recovers 3D coordinates from a complete pairwise distance matrix via
/// classical MDS: double-center the squared distances and expand the top
/// three eigenpairs.
///
/// The returned embedding is centered at the origin and determined up to a
/// rigid motion plus reflection — exactly the ambiguity the paper's local
/// frames tolerate.
///
/// # Errors
///
/// * [`MdsError::TooFewPoints`] for fewer than 2 points;
/// * [`MdsError::InvalidDistance`] for negative/non-finite entries.
///
/// # Panics
///
/// Panics if `distances` is not symmetric within `1e-8`.
pub fn classical_mds(distances: &SquareMatrix) -> Result<Vec<Vec3>, MdsError> {
    let n = distances.n();
    if n < 2 {
        return Err(MdsError::TooFewPoints { points: n });
    }
    for i in 0..n {
        for j in 0..n {
            let d = distances[(i, j)];
            if !d.is_finite() || d < 0.0 {
                return Err(MdsError::InvalidDistance { row: i, col: j });
            }
        }
    }
    assert!(distances.is_symmetric(1e-8), "distance matrix must be symmetric");

    let squared = SquareMatrix::from_fn(n, |i, j| distances[(i, j)].powi(2));
    let b = squared.double_centered();
    let eig = jacobi_eigen(&b);

    // Top three non-negative eigenpairs give the 3D embedding. Noisy or
    // non-Euclidean inputs can push trailing eigenvalues negative; those
    // axes are dropped (coordinate 0), the standard classical-MDS practice.
    let mut coords = vec![Vec3::ZERO; n];
    for axis in 0..3.min(n) {
        let lambda = eig.values[axis];
        if lambda <= 0.0 {
            break;
        }
        let scale = lambda.sqrt();
        for (i, c) in coords.iter_mut().enumerate() {
            let value = scale * eig.vectors[(i, axis)];
            match axis {
                0 => c.x = value,
                1 => c.y = value,
                _ => c.z = value,
            }
        }
    }
    Ok(coords)
}

/// Root-mean-square discrepancy between a coordinate embedding and a target
/// distance matrix (diagnostic used in tests and experiments).
///
/// # Panics
///
/// Panics if `coords.len() != distances.n()`.
pub fn embedding_rmse(coords: &[Vec3], distances: &SquareMatrix) -> f64 {
    let n = coords.len();
    assert_eq!(n, distances.n(), "dimension mismatch");
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let err = coords[i].distance(coords[j]) - distances[(i, j)];
            sum += err * err;
            count += 1;
        }
    }
    (sum / count as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distance_matrix(points: &[Vec3]) -> SquareMatrix {
        SquareMatrix::from_fn(points.len(), |i, j| points[i].distance(points[j]))
    }

    #[test]
    fn recovers_a_tetrahedron_up_to_isometry() {
        let pts = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.3, 0.9, 0.0),
            Vec3::new(0.2, 0.3, 0.8),
        ];
        let d = distance_matrix(&pts);
        let rec = classical_mds(&d).unwrap();
        assert!(embedding_rmse(&rec, &d) < 1e-9);
    }

    #[test]
    fn planar_input_stays_planar() {
        let pts = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        ];
        let d = distance_matrix(&pts);
        let rec = classical_mds(&d).unwrap();
        assert!(embedding_rmse(&rec, &d) < 1e-9);
        // The recovered third axis must be ~0 (rank-2 Gram matrix).
        for c in &rec {
            assert!(c.z.abs() < 1e-6, "expected planar embedding, got z={}", c.z);
        }
    }

    #[test]
    fn two_points() {
        let mut d = SquareMatrix::zeros(2);
        d[(0, 1)] = 5.0;
        d[(1, 0)] = 5.0;
        let rec = classical_mds(&d).unwrap();
        assert!((rec[0].distance(rec[1]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            classical_mds(&SquareMatrix::zeros(1)),
            Err(MdsError::TooFewPoints { points: 1 })
        );
        let mut d = SquareMatrix::zeros(2);
        d[(0, 1)] = -1.0;
        d[(1, 0)] = -1.0;
        assert_eq!(classical_mds(&d), Err(MdsError::InvalidDistance { row: 0, col: 1 }));
    }

    #[test]
    fn embedding_is_centered() {
        let pts = vec![
            Vec3::new(3.0, 1.0, 2.0),
            Vec3::new(4.0, 1.5, 2.2),
            Vec3::new(3.5, 0.5, 1.8),
            Vec3::new(3.2, 1.2, 2.9),
        ];
        let rec = classical_mds(&distance_matrix(&pts)).unwrap();
        let c: Vec3 = rec.iter().copied().sum::<Vec3>() / rec.len() as f64;
        assert!(c.norm() < 1e-9, "embedding not centered: {c}");
    }

    #[test]
    fn noisy_distances_still_embed_reasonably() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Vec3> = (0..12)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let noisy = SquareMatrix::from_fn(pts.len(), |i, j| {
            if i == j {
                0.0
            } else {
                let ij = if i < j { (i, j) } else { (j, i) };
                // Deterministic symmetric perturbation.
                let bump = (((ij.0 * 31 + ij.1 * 17) % 7) as f64 - 3.0) * 0.01;
                (pts[i].distance(pts[j]) + bump).max(0.01)
            }
        });
        let rec = classical_mds(&noisy).unwrap();
        assert!(embedding_rmse(&rec, &noisy) < 0.1);
    }
}
