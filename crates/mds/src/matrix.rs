//! Small dense square matrices.

use std::fmt;

/// A dense row-major square matrix of `f64`.
///
/// Sized for local-neighborhood work (tens of rows); no attempt is made at
/// cache blocking or SIMD.
#[derive(Debug, Clone, PartialEq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SquareMatrix {
    /// A zero matrix of size `n × n`.
    pub fn zeros(n: usize) -> Self {
        SquareMatrix { n, data: vec![0.0; n * n] }
    }

    /// The identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from an element function.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Side length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Returns `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != n`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n, "dimension mismatch");
        (0..self.n).map(|i| (0..self.n).map(|j| self[(i, j)] * v[j]).sum()).collect()
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn mul_mat(&self, rhs: &SquareMatrix) -> SquareMatrix {
        assert_eq!(self.n, rhs.n, "dimension mismatch");
        let mut out = SquareMatrix::zeros(self.n);
        for i in 0..self.n {
            for k in 0..self.n {
                let a = self[(i, k)];
                // Exact zero skip: purely a sparsity fast path, any nonzero
                // (however tiny) must still multiply through.
                // ballfit-lint: allow(float-safety)
                if a == 0.0 {
                    continue;
                }
                for j in 0..self.n {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Frobenius norm of the off-diagonal part (convergence measure for
    /// Jacobi sweeps).
    pub fn off_diagonal_norm(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    s += self[(i, j)] * self[(i, j)];
                }
            }
        }
        s.sqrt()
    }

    /// Applies the double-centering operator used by classical MDS:
    /// `B = −½ J A J` with `J = I − 𝟙𝟙ᵀ/n`.
    pub fn double_centered(&self) -> SquareMatrix {
        let n = self.n;
        let nf = n as f64;
        let row_means: Vec<f64> =
            (0..n).map(|i| (0..n).map(|j| self[(i, j)]).sum::<f64>() / nf).collect();
        let col_means: Vec<f64> =
            (0..n).map(|j| (0..n).map(|i| self[(i, j)]).sum::<f64>() / nf).collect();
        let grand = row_means.iter().sum::<f64>() / nf;
        SquareMatrix::from_fn(n, |i, j| -0.5 * (self[(i, j)] - row_means[i] - col_means[j] + grand))
    }
}

impl std::ops::Index<(usize, usize)> for SquareMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for SquareMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

impl fmt::Display for SquareMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < self.n {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let m = SquareMatrix::identity(3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m.n(), 3);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn from_fn_and_symmetry() {
        let m = SquareMatrix::from_fn(3, |i, j| (i + j) as f64);
        assert!(m.is_symmetric(0.0));
        let asym = SquareMatrix::from_fn(2, |i, j| (i * 2 + j) as f64);
        assert!(!asym.is_symmetric(1e-12));
    }

    #[test]
    fn mat_vec_product() {
        let m = SquareMatrix::from_fn(2, |i, j| ((i + 1) * (j + 1)) as f64);
        // [[1,2],[2,4]] · [1,1] = [3,6]
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 6.0]);
    }

    #[test]
    fn mat_mat_product() {
        let a = SquareMatrix::from_fn(2, |i, j| if i == j { 2.0 } else { 0.0 });
        let b = SquareMatrix::from_fn(2, |i, j| (i * 2 + j) as f64 + 1.0);
        let c = a.mul_mat(&b);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(c[(i, j)], 2.0 * b[(i, j)]);
            }
        }
        let id = SquareMatrix::identity(2);
        assert_eq!(b.mul_mat(&id), b);
    }

    #[test]
    fn off_diagonal_norm() {
        let m = SquareMatrix::identity(4);
        assert_eq!(m.off_diagonal_norm(), 0.0);
        let mut m2 = SquareMatrix::zeros(2);
        m2[(0, 1)] = 3.0;
        m2[(1, 0)] = 4.0;
        assert_eq!(m2.off_diagonal_norm(), 5.0);
    }

    #[test]
    fn double_centering_zeroes_row_sums() {
        let m = SquareMatrix::from_fn(4, |i, j| ((i as f64) - (j as f64)).powi(2));
        let b = m.double_centered();
        for i in 0..4 {
            let row_sum: f64 = (0..4).map(|j| b[(i, j)]).sum();
            assert!(row_sum.abs() < 1e-12, "row {i} sum {row_sum}");
        }
        assert!(b.is_symmetric(1e-12));
    }

    #[test]
    fn display_shape() {
        let s = SquareMatrix::identity(2).to_string();
        assert_eq!(s.lines().count(), 2);
    }
}
