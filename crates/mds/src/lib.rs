//! # ballfit-mds
//!
//! MDS-based localization substrate for the `ballfit` reproduction of
//! *"Localized Algorithm for Precise Boundary Detection in 3D Wireless
//! Networks"* (ICDCS 2010).
//!
//! In the paper (Sec. II-A3, step I), every node without known coordinates
//! establishes a *local* coordinate system for its one-hop neighborhood
//! from noisy pairwise distance measurements, using the MDS-based
//! localization of Shang & Ruml `[31]`. Only the relative frame matters:
//! Unit Ball Fitting is invariant under rigid motions and reflections.
//!
//! This crate implements that substrate from scratch:
//!
//! * [`matrix::SquareMatrix`] — small dense matrices.
//! * [`eigen::jacobi_eigen`] — a cyclic Jacobi eigensolver for symmetric
//!   matrices (neighborhood sizes are ≤ a few dozen, where Jacobi is both
//!   simple and accurate).
//! * [`cmds::classical_mds`] — classical (Torgerson) MDS: squared-distance
//!   double centering followed by a top-`k` eigendecomposition.
//! * [`smacof`] — SMACOF stress-majorization refinement, the iterative
//!   improvement step of "improved MDS-based localization".
//! * [`local::LocalFrame`] — the end-to-end per-node pipeline: complete
//!   missing pairwise distances by shortest paths within the neighborhood,
//!   run classical MDS, optionally refine with SMACOF.
//!
//! # Example
//!
//! ```
//! use ballfit_mds::cmds::classical_mds;
//! use ballfit_mds::matrix::SquareMatrix;
//!
//! // A unit square in the plane, recovered into 3D (third axis ~ 0).
//! let pts = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
//! let d = SquareMatrix::from_fn(4, |i, j| {
//!     let (dx, dy): (f64, f64) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
//!     (dx * dx + dy * dy).sqrt()
//! });
//! let coords = classical_mds(&d).unwrap();
//! // Pairwise distances are preserved.
//! let err = (coords[0].distance(coords[1]) - 1.0).abs();
//! assert!(err < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cmds;
pub mod eigen;
pub mod local;
pub mod matrix;
pub mod smacof;

/// Errors produced by the localization pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdsError {
    /// Fewer than two points — no geometry to recover.
    TooFewPoints {
        /// Number of points supplied.
        points: usize,
    },
    /// The distance information does not connect all points, so relative
    /// positions are undefined.
    DisconnectedNeighborhood,
    /// The distance matrix contains a negative or non-finite entry.
    InvalidDistance {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
}

impl std::fmt::Display for MdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdsError::TooFewPoints { points } => {
                write!(f, "need at least 2 points for MDS, got {points}")
            }
            MdsError::DisconnectedNeighborhood => {
                write!(f, "distance information does not connect the neighborhood")
            }
            MdsError::InvalidDistance { row, col } => {
                write!(f, "invalid distance at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for MdsError {}
