//! Property-based tests for the localization substrate.

use ballfit_geom::Vec3;
use ballfit_mds::cmds::{classical_mds, embedding_rmse};
use ballfit_mds::eigen::jacobi_eigen;
use ballfit_mds::local::{embed_local, LocalDistances, LocalFrameConfig};
use ballfit_mds::matrix::SquareMatrix;
use proptest::prelude::*;

fn vec3_in(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn distance_matrix(points: &[Vec3]) -> SquareMatrix {
    SquareMatrix::from_fn(points.len(), |i, j| points[i].distance(points[j]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Jacobi reconstructs random symmetric matrices.
    #[test]
    fn jacobi_reconstruction(
        entries in proptest::collection::vec(-2.0f64..2.0, 1..36),
    ) {
        // Use the largest n with n(n+1)/2 <= len.
        let mut n = 1;
        while (n + 1) * (n + 2) / 2 <= entries.len() {
            n += 1;
        }
        let mut m = SquareMatrix::zeros(n);
        let mut it = entries.into_iter();
        for i in 0..n {
            for j in i..n {
                let v = it.next().unwrap_or(0.0);
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        let e = jacobi_eigen(&m);
        // Reconstruct A = V Λ Vᵀ.
        for i in 0..n {
            for j in 0..n {
                let r: f64 = (0..n)
                    .map(|k| e.values[k] * e.vectors[(i, k)] * e.vectors[(j, k)])
                    .sum();
                prop_assert!((r - m[(i, j)]).abs() < 1e-7, "({},{}): {} vs {}", i, j, r, m[(i, j)]);
            }
        }
    }

    /// Classical MDS on exact Euclidean distances reproduces the geometry
    /// (zero strain up to numerical noise).
    #[test]
    fn cmds_recovers_euclidean_configurations(
        pts in proptest::collection::vec(vec3_in(2.0), 2..14),
    ) {
        let d = distance_matrix(&pts);
        let rec = classical_mds(&d).expect("valid distances embed");
        prop_assert!(embedding_rmse(&rec, &d) < 1e-6);
    }

    /// The recovered embedding is invariant (in pairwise distances) to
    /// rigid motions of the input configuration.
    #[test]
    fn cmds_isometry_invariance(
        pts in proptest::collection::vec(vec3_in(2.0), 3..10),
        shift in vec3_in(30.0),
    ) {
        let moved: Vec<Vec3> = pts
            .iter()
            .map(|&p| Vec3::new(p.y, -p.x, p.z) + shift) // rotate 90° + translate
            .collect();
        let a = classical_mds(&distance_matrix(&pts)).unwrap();
        let b = classical_mds(&distance_matrix(&moved)).unwrap();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let da = a[i].distance(a[j]);
                let db = b[i].distance(b[j]);
                prop_assert!((da - db).abs() < 1e-6, "pair ({},{})", i, j);
            }
        }
    }

    /// Local embedding with complete exact measurements has ~zero stress,
    /// regardless of configuration.
    #[test]
    fn local_frames_embed_complete_measurements(
        pts in proptest::collection::vec(vec3_in(1.0), 4..10),
    ) {
        let mut table = LocalDistances::new(pts.len());
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                table.set(i, j, pts[i].distance(pts[j]));
            }
        }
        let frame = embed_local(&table, LocalFrameConfig::default()).unwrap();
        prop_assert!(frame.stress < 1e-6, "stress {}", frame.stress);
    }

    /// Path completion never underestimates the direct measurement and is
    /// symmetric with zero diagonal.
    #[test]
    fn completion_laws(
        pts in proptest::collection::vec(vec3_in(1.0), 3..10),
        range in 0.4f64..1.6,
    ) {
        let mut table = LocalDistances::new(pts.len());
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let d = pts[i].distance(pts[j]);
                if d <= range {
                    table.set(i, j, d);
                }
            }
        }
        if let Ok(full) = table.complete() {
            for i in 0..pts.len() {
                prop_assert_eq!(full[(i, i)], 0.0);
                for j in 0..pts.len() {
                    prop_assert!((full[(i, j)] - full[(j, i)]).abs() < 1e-12);
                    // Completed values are at least the true distance
                    // (shortest measured path can't beat the metric).
                    prop_assert!(full[(i, j)] >= pts[i].distance(pts[j]) - 1e-9);
                }
            }
        }
    }
}
