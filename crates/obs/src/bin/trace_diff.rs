//! Structural comparison of two JSONL traces.
//!
//! ```sh
//! cargo run -p ballfit-obs --bin trace_diff -- a.jsonl b.jsonl
//! ```
//!
//! Parses both files line-by-line into key/value records and compares
//! them structurally (a byte diff would also flag formatting-only
//! differences; this tool only flags differences in recorded facts).
//! Exit status: 0 identical, 1 structurally different, 2 usage / IO /
//! parse error. On a difference the first diverging record is reported
//! with its differing keys.

use ballfit_obs::jsonl;

fn load(path: &str) -> Result<Vec<Vec<(String, String)>>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    jsonl::parse_jsonl(&src).map_err(|e| format!("{path}: {e}"))
}

fn describe(pairs: &[(String, String)]) -> String {
    let parts: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
    parts.join(" ")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [a_path, b_path] = args.as_slice() else {
        eprintln!("usage: trace_diff <a.jsonl> <b.jsonl>");
        std::process::exit(2);
    };
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("trace_diff: {e}");
            std::process::exit(2);
        }
    };

    for (i, (ra, rb)) in a.iter().zip(&b).enumerate() {
        if ra == rb {
            continue;
        }
        println!("traces diverge at record {} (1-based line {}):", i, i + 1);
        println!("  {a_path}: {}", describe(ra));
        println!("  {b_path}: {}", describe(rb));
        for (k, va) in ra {
            match rb.iter().find(|(kb, _)| kb == k) {
                Some((_, vb)) if va == vb => {}
                Some((_, vb)) => println!("  key {k:?}: {va} != {vb}"),
                None => println!("  key {k:?} only in {a_path}"),
            }
        }
        for (k, _) in rb {
            if !ra.iter().any(|(ka, _)| ka == k) {
                println!("  key {k:?} only in {b_path}");
            }
        }
        std::process::exit(1);
    }
    if a.len() != b.len() {
        println!(
            "traces diverge in length: {a_path} has {} records, {b_path} has {} \
             (common prefix of {} records is identical)",
            a.len(),
            b.len(),
            a.len().min(b.len())
        );
        std::process::exit(1);
    }
    println!("traces are structurally identical: {} records", a.len());
}
