//! JSONL serialization of traces, and the minimal flat-object parser
//! used by `trace_diff`.
//!
//! Every record serializes as one flat RFC 8259 object per line with a
//! fixed key order, so equal traces produce equal bytes and the bench
//! JSON validator accepts every line. Values are only ever strings,
//! integers and booleans — the parser here handles exactly that shape
//! and rejects anything else, keeping the diff tool dependency-free.

use std::fmt::Write as _;

use crate::{TraceEvent, TraceRecord};

/// Appends `rec` as one flat JSON object (no trailing newline).
pub fn write_record(out: &mut String, rec: &TraceRecord) {
    let _ = write!(out, "{{\"seq\":{},\"span\":{}", rec.seq, rec.span);
    match &rec.event {
        TraceEvent::SpanOpen { name, parent } => {
            let _ = write!(out, ",\"ev\":\"span_open\",\"name\":\"{name}\",\"parent\":{parent}");
        }
        TraceEvent::SpanClose { name } => {
            let _ = write!(out, ",\"ev\":\"span_close\",\"name\":\"{name}\"");
        }
        TraceEvent::NetSize { nodes, edges } => {
            let _ = write!(out, ",\"ev\":\"net_size\",\"nodes\":{nodes},\"edges\":{edges}");
        }
        TraceEvent::Round {
            round,
            sent,
            bytes,
            delivered,
            dropped,
            duplicated,
            delayed,
            crash_lost,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"round\",\"round\":{round},\"sent\":{sent},\"bytes\":{bytes},\
                 \"delivered\":{delivered},\"dropped\":{dropped},\"duplicated\":{duplicated},\
                 \"delayed\":{delayed},\"crash_lost\":{crash_lost}"
            );
        }
        TraceEvent::BallTests { node, tests, boundary } => {
            let _ = write!(
                out,
                ",\"ev\":\"ball_tests\",\"node\":{node},\"tests\":{tests},\"boundary\":{boundary}"
            );
        }
        TraceEvent::Degenerate { node } => {
            let _ = write!(out, ",\"ev\":\"degenerate\",\"node\":{node}");
        }
        TraceEvent::Retransmits { node, resends } => {
            let _ = write!(out, ",\"ev\":\"retransmits\",\"node\":{node},\"resends\":{resends}");
        }
        TraceEvent::Reforwards { node, count } => {
            let _ = write!(out, ",\"ev\":\"reforwards\",\"node\":{node},\"count\":{count}");
        }
        TraceEvent::Convergence { rounds, messages, bytes, quiescent } => {
            let _ = write!(
                out,
                ",\"ev\":\"convergence\",\"rounds\":{rounds},\"messages\":{messages},\
                 \"bytes\":{bytes},\"quiescent\":{quiescent}"
            );
        }
        TraceEvent::Halo { size, promoted, demoted, regrouped } => {
            let _ = write!(
                out,
                ",\"ev\":\"halo\",\"size\":{size},\"promoted\":{promoted},\
                 \"demoted\":{demoted},\"regrouped\":{regrouped}"
            );
        }
        TraceEvent::Counter { name, value } => {
            let _ = write!(out, ",\"ev\":\"counter\",\"name\":\"{name}\",\"value\":{value}");
        }
        TraceEvent::Verdict { exact, cause, unreached, coverage_ppm } => {
            let _ = write!(
                out,
                ",\"ev\":\"verdict\",\"exact\":{exact},\"cause\":\"{cause}\",\
                 \"unreached\":{unreached},\"coverage_ppm\":{coverage_ppm}"
            );
        }
    }
    out.push('}');
}

/// Parses one flat JSON object into its `(key, raw value)` pairs in
/// source order. Values are returned as their raw token text (quotes
/// stripped from strings); nested objects/arrays are rejected — trace
/// lines are flat by construction.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let eat_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    let string_at = |i: &mut usize| -> Result<String, String> {
        if bytes.get(*i) != Some(&b'"') {
            return Err(format!("expected string at byte {i}", i = *i));
        }
        *i += 1;
        let mut s = String::new();
        while let Some(&b) = bytes.get(*i) {
            match b {
                b'"' => {
                    *i += 1;
                    return Ok(s);
                }
                b'\\' => {
                    *i += 1;
                    match bytes.get(*i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    *i += 1;
                }
                _ => {
                    s.push(b as char);
                    *i += 1;
                }
            }
        }
        Err("unterminated string".to_string())
    };

    eat_ws(&mut i);
    if bytes.get(i) != Some(&b'{') {
        return Err("expected '{'".to_string());
    }
    i += 1;
    eat_ws(&mut i);
    if bytes.get(i) == Some(&b'}') {
        return Ok(pairs);
    }
    loop {
        eat_ws(&mut i);
        let key = string_at(&mut i)?;
        eat_ws(&mut i);
        if bytes.get(i) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        eat_ws(&mut i);
        let value = match bytes.get(i) {
            Some(b'"') => string_at(&mut i)?,
            Some(b'{') | Some(b'[') => {
                return Err(format!("nested value for key {key:?} — trace lines are flat"));
            }
            Some(_) => {
                let start = i;
                while i < bytes.len() && !matches!(bytes[i], b',' | b'}') {
                    i += 1;
                }
                line[start..i].trim().to_string()
            }
            None => return Err(format!("missing value for key {key:?}")),
        };
        pairs.push((key, value));
        eat_ws(&mut i);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {
                i += 1;
                break;
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    eat_ws(&mut i);
    if i != bytes.len() {
        return Err("trailing garbage after object".to_string());
    }
    Ok(pairs)
}

/// Parses a whole JSONL document (empty lines ignored) into per-line
/// key/value pairs, with 1-based line numbers in error messages.
pub fn parse_jsonl(src: &str) -> Result<Vec<Vec<(String, String)>>, String> {
    let mut lines = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let pairs = parse_flat_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        lines.push(pairs);
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    #[test]
    fn every_event_kind_round_trips_through_the_flat_parser() {
        let mut t = Trace::enabled();
        t.event(TraceEvent::NetSize { nodes: 3, edges: 2 });
        t.open("ubf");
        t.open("round");
        t.event(TraceEvent::Round {
            round: 1,
            sent: 4,
            bytes: 32,
            delivered: 4,
            dropped: 1,
            duplicated: 0,
            delayed: 2,
            crash_lost: 0,
        });
        t.close();
        t.event(TraceEvent::BallTests { node: 0, tests: 17, boundary: true });
        t.event(TraceEvent::Degenerate { node: 1 });
        t.event(TraceEvent::Retransmits { node: 2, resends: 3 });
        t.event(TraceEvent::Reforwards { node: 2, count: 1 });
        t.event(TraceEvent::Convergence { rounds: 1, messages: 4, bytes: 32, quiescent: true });
        t.event(TraceEvent::Halo { size: 5, promoted: 1, demoted: 0, regrouped: 2 });
        t.event(TraceEvent::Counter { name: "boundary", value: 9 });
        t.event(TraceEvent::Verdict {
            exact: false,
            cause: "retry-exhausted",
            unreached: 3,
            coverage_ppm: 985_000,
        });
        t.close();
        let doc = t.to_jsonl();
        let parsed = parse_jsonl(&doc).expect("trace JSONL parses");
        assert_eq!(parsed.len(), t.records().len());
        // Spot-check a line: key order and values survive.
        let round = parsed.iter().find(|p| p.iter().any(|(k, v)| k == "ev" && v == "round"));
        let round = round.expect("round line present");
        assert!(round.contains(&("sent".to_string(), "4".to_string())));
        assert!(round.contains(&("dropped".to_string(), "1".to_string())));
        let verdict = parsed.iter().find(|p| p.iter().any(|(k, v)| k == "ev" && v == "verdict"));
        let verdict = verdict.expect("verdict line present");
        assert!(verdict.contains(&("cause".to_string(), "retry-exhausted".to_string())));
        assert!(verdict.contains(&("coverage_ppm".to_string(), "985000".to_string())));
    }

    #[test]
    fn parser_rejects_nested_and_malformed_lines() {
        assert!(parse_flat_object("{\"a\":{\"b\":1}}").is_err());
        assert!(parse_flat_object("{\"a\":1").is_err());
        assert!(parse_flat_object("{\"a\":1} x").is_err());
        assert!(parse_flat_object("[1,2]").is_err());
        assert_eq!(parse_flat_object("{}").expect("empty object parses"), Vec::new());
    }
}
