//! Wire-size accounting for protocol messages.
//!
//! The simulator charges every transmission `msg.msg_bytes()` payload
//! bytes, so byte-overhead claims are measurable alongside message
//! counts. Sizes model a fixed little-endian wire format — **not**
//! `size_of`, which varies by platform and would break the
//! byte-identical-trace contract:
//!
//! * integers at their wire width (`usize` travels as a `u64`),
//! * `f64` as 8 bytes, `bool` as 1, `()` as 0,
//! * tuples as the sum of their fields,
//! * `Option` as a 1-byte tag plus the payload when present,
//! * `Vec` as an 8-byte length prefix plus the elements.

/// Deterministic serialized size of a protocol message, in bytes.
pub trait MsgBytes {
    /// The message's wire size in bytes.
    fn msg_bytes(&self) -> u64;
}

macro_rules! fixed_width {
    ($($ty:ty => $bytes:expr),* $(,)?) => {
        $(impl MsgBytes for $ty {
            #[inline]
            fn msg_bytes(&self) -> u64 {
                $bytes
            }
        })*
    };
}

fixed_width! {
    () => 0,
    bool => 1,
    u8 => 1,
    u16 => 2,
    u32 => 4,
    u64 => 8,
    usize => 8,
    i32 => 4,
    i64 => 8,
    f32 => 4,
    f64 => 8,
}

impl<A: MsgBytes, B: MsgBytes> MsgBytes for (A, B) {
    #[inline]
    fn msg_bytes(&self) -> u64 {
        self.0.msg_bytes() + self.1.msg_bytes()
    }
}

impl<A: MsgBytes, B: MsgBytes, C: MsgBytes> MsgBytes for (A, B, C) {
    #[inline]
    fn msg_bytes(&self) -> u64 {
        self.0.msg_bytes() + self.1.msg_bytes() + self.2.msg_bytes()
    }
}

impl<T: MsgBytes> MsgBytes for Option<T> {
    #[inline]
    fn msg_bytes(&self) -> u64 {
        1 + self.as_ref().map_or(0, MsgBytes::msg_bytes)
    }
}

impl<T: MsgBytes> MsgBytes for Vec<T> {
    #[inline]
    fn msg_bytes(&self) -> u64 {
        8 + self.iter().map(MsgBytes::msg_bytes).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_composite_sizes_are_wire_widths() {
        assert_eq!(().msg_bytes(), 0);
        assert_eq!(true.msg_bytes(), 1);
        assert_eq!(7u32.msg_bytes(), 4);
        assert_eq!(7usize.msg_bytes(), 8);
        assert_eq!(1.5f64.msg_bytes(), 8);
        assert_eq!((3usize, 2u32).msg_bytes(), 12);
        assert_eq!((1usize, 2usize, 0.5f64).msg_bytes(), 24);
        assert_eq!(Some(4u32).msg_bytes(), 5);
        assert_eq!(None::<u32>.msg_bytes(), 1);
        // Length prefix plus elements: a UBF table row is (usize, f64).
        let table: Vec<(usize, f64)> = vec![(0, 1.0), (1, 2.0), (2, 3.0)];
        assert_eq!(table.msg_bytes(), 8 + 3 * 16);
        let empty: Vec<usize> = Vec::new();
        assert_eq!(empty.msg_bytes(), 8);
    }
}
