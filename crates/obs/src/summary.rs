//! Trace aggregation: roll a record stream up into per-protocol
//! communication- and computation-cost tables.
//!
//! Events attribute to the nearest enclosing span that is not a
//! structural `"round"` span, and same-named spans aggregate into one
//! row (a protocol run repeated per grid cell sums up). The resulting
//! [`ProtocolSummary`] rows carry the counts the paper's complexity
//! claims are stated in: messages/node, bytes/node, ball-tests/node.

use crate::{TraceEvent, TraceRecord};

/// Aggregated costs of one named span family (usually one protocol).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProtocolSummary {
    /// Span name (`"ubf"`, `"iff"`, `"grouping"`, …).
    pub name: String,
    /// Network size from the span's `NetSize` event (0 if none).
    pub nodes: u64,
    /// Executed rounds (count of `Round` events).
    pub rounds: u64,
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Messages delivered to live nodes.
    pub delivered: u64,
    /// Fault-layer drops.
    pub dropped: u64,
    /// Fault-layer duplications.
    pub duplicated: u64,
    /// Fault-layer delays.
    pub delayed: u64,
    /// Deliveries lost to crashed receivers.
    pub crash_lost: u64,
    /// Candidate balls tested (UBF Theorem-1 accounting).
    pub ball_tests: u64,
    /// Nodes that ran the UBF test (denominator for ball-tests/node).
    pub tested_nodes: u64,
    /// Hardened-protocol retransmissions (spent retry budget).
    pub retransmits: u64,
    /// Hardened-flood improved-distance re-forwards.
    pub reforwards: u64,
    /// Convergence-watchdog verdicts recorded in the span.
    pub verdicts: u64,
    /// Verdicts that reported a degraded (non-exact) outcome.
    pub degraded: u64,
    /// Live nodes reported unreached across all verdicts.
    pub unreached: u64,
}

impl ProtocolSummary {
    /// Messages per node, if the span recorded a network size.
    pub fn msgs_per_node(&self) -> Option<f64> {
        (self.nodes > 0).then(|| self.messages as f64 / self.nodes as f64)
    }

    /// Payload bytes per node, if the span recorded a network size.
    pub fn bytes_per_node(&self) -> Option<f64> {
        (self.nodes > 0).then(|| self.bytes as f64 / self.nodes as f64)
    }

    /// Candidate balls tested per tested node.
    pub fn ball_tests_per_node(&self) -> Option<f64> {
        (self.tested_nodes > 0).then(|| self.ball_tests as f64 / self.tested_nodes as f64)
    }
}

/// The rolled-up view of one trace: a row per span family, in
/// first-seen order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSummary {
    /// Aggregated rows, in first-seen span order.
    pub rows: Vec<ProtocolSummary>,
}

impl TraceSummary {
    /// The row for span family `name`, if the trace contains it.
    pub fn get(&self, name: &str) -> Option<&ProtocolSummary> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Renders the rows as a fixed-width text table (the format quoted
    /// in EXPERIMENTS.md).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>7} {:>10} {:>10} {:>12} {:>14}\n",
            "span", "nodes", "messages", "msg/node", "bytes/node", "ball-tests/nd"
        ));
        for r in &self.rows {
            let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.2}"));
            out.push_str(&format!(
                "{:<18} {:>7} {:>10} {:>10} {:>12} {:>14}\n",
                r.name,
                r.nodes,
                r.messages,
                fmt(r.msgs_per_node()),
                fmt(r.bytes_per_node()),
                fmt(r.ball_tests_per_node()),
            ));
        }
        out
    }
}

/// Rolls `records` up into per-span-family cost rows.
pub fn summarize(records: &[TraceRecord]) -> TraceSummary {
    let mut rows: Vec<ProtocolSummary> = Vec::new();
    // Open spans as (id, name); events walk up past "round" spans.
    let mut stack: Vec<(u32, &'static str)> = Vec::new();
    let row_index = |rows: &mut Vec<ProtocolSummary>, name: &str| -> usize {
        if let Some(i) = rows.iter().position(|r| r.name == name) {
            return i;
        }
        rows.push(ProtocolSummary { name: name.to_string(), ..ProtocolSummary::default() });
        rows.len() - 1
    };

    for rec in records {
        match &rec.event {
            TraceEvent::SpanOpen { name, .. } => stack.push((rec.span, name)),
            TraceEvent::SpanClose { .. } => {
                stack.pop();
            }
            event => {
                let bucket = stack
                    .iter()
                    .rev()
                    .find(|&&(_, name)| name != "round")
                    .map_or("(root)", |&(_, name)| name);
                let i = row_index(&mut rows, bucket);
                let row = &mut rows[i];
                match *event {
                    TraceEvent::NetSize { nodes, .. } => row.nodes = row.nodes.max(nodes as u64),
                    TraceEvent::Round {
                        sent,
                        bytes,
                        delivered,
                        dropped,
                        duplicated,
                        delayed,
                        crash_lost,
                        ..
                    } => {
                        row.rounds += 1;
                        row.messages += sent;
                        row.bytes += bytes;
                        row.delivered += delivered;
                        row.dropped += dropped;
                        row.duplicated += duplicated;
                        row.delayed += delayed;
                        row.crash_lost += crash_lost;
                    }
                    TraceEvent::BallTests { tests, .. } => {
                        row.ball_tests += tests;
                        row.tested_nodes += 1;
                    }
                    TraceEvent::Retransmits { resends, .. } => row.retransmits += resends,
                    TraceEvent::Reforwards { count, .. } => row.reforwards += count,
                    TraceEvent::Verdict { exact, unreached, .. } => {
                        row.verdicts += 1;
                        if !exact {
                            row.degraded += 1;
                        }
                        row.unreached += unreached;
                    }
                    // Convergence totals duplicate the per-round sums;
                    // counting both would double-charge the span.
                    TraceEvent::Convergence { .. }
                    | TraceEvent::Degenerate { .. }
                    | TraceEvent::Halo { .. }
                    | TraceEvent::Counter { .. }
                    | TraceEvent::SpanOpen { .. }
                    | TraceEvent::SpanClose { .. } => {}
                }
            }
        }
    }
    TraceSummary { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    #[test]
    fn events_attribute_past_round_spans_and_same_names_aggregate() {
        let mut t = Trace::enabled();
        for _ in 0..2 {
            t.open("ubf");
            t.event(TraceEvent::NetSize { nodes: 10, edges: 20 });
            t.open("round");
            t.event(TraceEvent::Round {
                round: 1,
                sent: 40,
                bytes: 320,
                delivered: 40,
                dropped: 2,
                duplicated: 0,
                delayed: 0,
                crash_lost: 0,
            });
            t.close();
            t.event(TraceEvent::Convergence {
                rounds: 1,
                messages: 40,
                bytes: 320,
                quiescent: true,
            });
            t.close();
        }
        t.open("detect");
        t.event(TraceEvent::BallTests { node: 0, tests: 30, boundary: true });
        t.event(TraceEvent::BallTests { node: 1, tests: 10, boundary: false });
        t.close();

        let s = summarize(t.records());
        assert_eq!(s.rows.len(), 2);
        let ubf = s.get("ubf").expect("ubf row");
        // Two runs aggregate; convergence events do not double-count.
        assert_eq!(ubf.messages, 80);
        assert_eq!(ubf.bytes, 640);
        assert_eq!(ubf.rounds, 2);
        assert_eq!(ubf.dropped, 4);
        assert_eq!(ubf.nodes, 10);
        assert_eq!(ubf.msgs_per_node(), Some(8.0));
        let det = s.get("detect").expect("detect row");
        assert_eq!(det.ball_tests, 40);
        assert_eq!(det.tested_nodes, 2);
        assert_eq!(det.ball_tests_per_node(), Some(20.0));
        assert_eq!(det.msgs_per_node(), None, "no NetSize in the detect span");
        // The table renders a line per row plus a header.
        assert_eq!(s.render_table().lines().count(), 3);
    }

    #[test]
    fn verdicts_roll_up_into_watchdog_counters() {
        let mut t = Trace::enabled();
        t.open("watchdog");
        t.event(TraceEvent::Verdict {
            exact: true,
            cause: "none",
            unreached: 0,
            coverage_ppm: 1_000_000,
        });
        t.event(TraceEvent::Verdict {
            exact: false,
            cause: "partition",
            unreached: 7,
            coverage_ppm: 930_000,
        });
        t.close();
        let s = summarize(t.records());
        let row = s.get("watchdog").expect("watchdog row");
        assert_eq!(row.verdicts, 2);
        assert_eq!(row.degraded, 1);
        assert_eq!(row.unreached, 7);
    }
}
