//! Deterministic structured tracing for the ballfit stack.
//!
//! The paper's efficiency claims — Θ(ρ²) candidate balls per node
//! (Lemma 1 / Theorem 1) and low per-node message overhead for UBF, IFF
//! flooding and grouping — are statements about *counts*, not seconds.
//! This crate records exactly those counts as a structured trace:
//!
//! * **Hierarchical spans** (pipeline → protocol → round) opened and
//!   closed explicitly by the simulator and detectors.
//! * **Typed events** ([`TraceEvent`]): per-round message/byte totals
//!   with fault attribution, per-node candidate-ball counts, retransmit
//!   and re-forward counters, convergence summaries, churn halo sizes.
//! * **Logical time only.** Records carry round numbers and a monotonic
//!   sequence counter — never wall clock, thread ids, memory addresses
//!   or host state — so a trace is byte-identical across runs, machines
//!   and `BALLFIT_THREADS` settings. This is pinned by
//!   `tests/observability.rs`.
//! * **A zero-cost disabled path.** [`Trace::disabled`] carries no
//!   buffer; every emission short-circuits on one `Option` check, and
//!   instrumented code paths are regression-tested to produce
//!   byte-identical detection output with tracing on or off.
//!
//! Traces export as JSONL ([`Trace::to_jsonl`]): one flat RFC 8259
//! object per record, validated by the `ballfit-bench` JSON validator
//! and diffable with the `trace_diff` binary. [`summary::summarize`]
//! rolls a trace up into per-protocol msg/node, bytes/node and
//! ball-tests/node tables.
//!
//! The crate is dependency-free by design: observability must never
//! perturb the determinism story it exists to certify.

mod bytes;
pub mod jsonl;
pub mod summary;

pub use bytes::MsgBytes;

/// Identifier of a span within one trace. Span 0 is the implicit root
/// (the trace itself); real spans start at 1 in open order.
pub type SpanId = u32;

/// One typed observation. Every variant is plain data with a total
/// equality — no wall clock, no floats — so whole traces compare with
/// `==` and serialize byte-identically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceEvent {
    /// A span opened; `parent` is the enclosing span.
    SpanOpen {
        /// Static span label (e.g. `"ubf"`, `"round"`).
        name: &'static str,
        /// Enclosing span at open time.
        parent: SpanId,
    },
    /// The matching close of the record's span.
    SpanClose {
        /// Label repeated from the open for self-describing JSONL.
        name: &'static str,
    },
    /// Network shape at the start of a simulator run or detection.
    NetSize {
        /// Node count.
        nodes: usize,
        /// Undirected edge count.
        edges: usize,
    },
    /// One executed simulator round: messages and payload bytes sent
    /// during the round, deliveries executed, and the fault layer's
    /// drop/duplication/delay/crash attribution for the round.
    Round {
        /// 1-based round number (matches `RunStats::rounds`).
        round: usize,
        /// Messages sent during this round.
        sent: u64,
        /// Payload bytes sent during this round.
        bytes: u64,
        /// Messages delivered to live nodes this round.
        delivered: u64,
        /// Transmissions dropped by the fault layer this round.
        dropped: u64,
        /// Transmissions duplicated by the fault layer this round.
        duplicated: u64,
        /// Transmissions delayed by the fault layer this round.
        delayed: u64,
        /// Deliveries lost to a crashed receiver this round.
        crash_lost: u64,
    },
    /// Per-node UBF outcome: candidate balls actually tested and the
    /// resulting candidacy (Theorem 1 accounting).
    BallTests {
        /// Node id.
        node: usize,
        /// Candidate balls tested for this node.
        tests: u64,
        /// Whether the node became a boundary candidate.
        boundary: bool,
    },
    /// A node whose neighborhood was too degenerate for the UBF test.
    Degenerate {
        /// Node id.
        node: usize,
    },
    /// Retransmissions performed by one node of a hardened protocol.
    Retransmits {
        /// Node id.
        node: usize,
        /// Number of retransmissions (0-resend nodes are not emitted).
        resends: u64,
    },
    /// Improved-distance re-forwards performed by one node of the
    /// hardened fragment flood.
    Reforwards {
        /// Node id.
        node: usize,
        /// Number of re-forwards (0-count nodes are not emitted).
        count: u64,
    },
    /// End-of-run summary mirroring `RunStats`.
    Convergence {
        /// Rounds executed.
        rounds: usize,
        /// Total messages sent.
        messages: u64,
        /// Total payload bytes sent.
        bytes: u64,
        /// Whether the run reached quiescence.
        quiescent: bool,
    },
    /// One incremental-maintenance event: dirty-halo size and the
    /// resulting boundary diff.
    Halo {
        /// Nodes in the recomputation halo.
        size: usize,
        /// Nodes promoted to the boundary.
        promoted: usize,
        /// Nodes demoted from the boundary.
        demoted: usize,
        /// Nodes whose group label changed.
        regrouped: usize,
    },
    /// A named scalar (phase outputs such as boundary/group counts).
    Counter {
        /// Static counter label.
        name: &'static str,
        /// Counter value.
        value: u64,
    },
    /// A convergence-watchdog verdict: how one detection epoch ended.
    /// Coverage travels as parts-per-million so the record stays
    /// float-free and totally ordered.
    Verdict {
        /// Whether the epoch converged to the exact centralized result.
        exact: bool,
        /// Static degradation cause (`"none"`, `"partition"`,
        /// `"crash-quorum"`, `"retry-exhausted"`, `"truncated"`).
        cause: &'static str,
        /// Live nodes whose distributed state disagreed with the oracle.
        unreached: u64,
        /// Fraction of live nodes covered, in parts per million.
        coverage_ppm: u64,
    },
}

/// One trace record: a monotonic sequence number, the span it belongs
/// to, and the event payload. For `SpanOpen` the record's `span` is the
/// *newly opened* span (its parent is in the event), so walking records
/// reconstructs the tree without extra state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceRecord {
    /// Monotonic emission index, starting at 0.
    pub seq: u64,
    /// Span this record belongs to.
    pub span: SpanId,
    /// The observation.
    pub event: TraceEvent,
}

#[derive(Debug, Default)]
struct TraceInner {
    records: Vec<TraceRecord>,
    stack: Vec<(SpanId, &'static str)>,
    next_span: SpanId,
}

/// A trace sink. Instrumented code takes `&mut Trace` and emits
/// unconditionally; the [`Trace::disabled`] variant makes every call a
/// no-op behind a single branch, so the instrumented and bare code
/// paths are literally the same code.
#[derive(Debug, Default)]
pub struct Trace {
    inner: Option<TraceInner>,
}

impl Trace {
    /// A recording trace.
    pub fn enabled() -> Self {
        Trace { inner: Some(TraceInner { records: Vec::new(), stack: Vec::new(), next_span: 0 }) }
    }

    /// The no-op sink: every emission returns immediately, nothing is
    /// allocated, and no observable state changes.
    pub fn disabled() -> Self {
        Trace { inner: None }
    }

    /// Whether this sink records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a child span of the current span and returns its id
    /// (always 0 on the disabled path).
    pub fn open(&mut self, name: &'static str) -> SpanId {
        let Some(inner) = &mut self.inner else {
            return 0;
        };
        let parent = inner.stack.last().map_or(0, |&(id, _)| id);
        inner.next_span += 1;
        let id = inner.next_span;
        let seq = inner.records.len() as u64;
        inner.records.push(TraceRecord {
            seq,
            span: id,
            event: TraceEvent::SpanOpen { name, parent },
        });
        inner.stack.push((id, name));
        id
    }

    /// Closes the innermost open span.
    ///
    /// # Panics
    ///
    /// Panics if no span is open — unbalanced instrumentation is a bug
    /// worth failing loudly on.
    pub fn close(&mut self) {
        let Some(inner) = &mut self.inner else {
            return;
        };
        let (id, name) = inner.stack.pop().unwrap_or_else(|| {
            panic!("Trace::close with no open span — unbalanced instrumentation")
        });
        let seq = inner.records.len() as u64;
        inner.records.push(TraceRecord { seq, span: id, event: TraceEvent::SpanClose { name } });
    }

    /// Records `event` against the current span.
    #[inline]
    pub fn event(&mut self, event: TraceEvent) {
        let Some(inner) = &mut self.inner else {
            return;
        };
        let span = inner.stack.last().map_or(0, |&(id, _)| id);
        let seq = inner.records.len() as u64;
        inner.records.push(TraceRecord { seq, span, event });
    }

    /// The recorded events (empty on the disabled path).
    pub fn records(&self) -> &[TraceRecord] {
        self.inner.as_ref().map_or(&[], |inner| inner.records.as_slice())
    }

    /// Serializes the trace as JSONL: one flat RFC 8259 object per
    /// record, key order fixed, so equal traces produce equal bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.records() {
            jsonl::write_record(&mut out, rec);
            out.push('\n');
        }
        out
    }

    /// Writes [`Trace::to_jsonl`] to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::enabled();
        t.event(TraceEvent::NetSize { nodes: 4, edges: 3 });
        let ubf = t.open("ubf");
        assert_eq!(ubf, 1);
        let round = t.open("round");
        assert_eq!(round, 2);
        t.event(TraceEvent::Round {
            round: 1,
            sent: 6,
            bytes: 48,
            delivered: 6,
            dropped: 0,
            duplicated: 0,
            delayed: 0,
            crash_lost: 0,
        });
        t.close();
        t.event(TraceEvent::Convergence { rounds: 1, messages: 6, bytes: 48, quiescent: true });
        t.close();
        t
    }

    #[test]
    fn spans_nest_and_events_attach_to_the_innermost_span() {
        let t = sample();
        let recs = t.records();
        assert_eq!(recs.len(), 7);
        // Root-level event belongs to span 0.
        assert_eq!(recs[0].span, 0);
        // The open record carries the new span id and its parent.
        assert_eq!(recs[1].span, 1);
        assert_eq!(recs[1].event, TraceEvent::SpanOpen { name: "ubf", parent: 0 });
        assert_eq!(recs[2].event, TraceEvent::SpanOpen { name: "round", parent: 1 });
        // The round event is inside the round span; convergence is one
        // level up, inside the protocol span.
        assert_eq!(recs[3].span, 2);
        assert_eq!(recs[4].span, 2);
        assert!(matches!(recs[4].event, TraceEvent::SpanClose { name: "round" }));
        assert!(matches!(recs[5].event, TraceEvent::Convergence { .. }));
        assert_eq!(recs[5].span, 1);
        assert!(matches!(recs[6].event, TraceEvent::SpanClose { name: "ubf" }));
        assert_eq!(recs[6].span, 1);
        // Sequence numbers are the record indices.
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn disabled_trace_records_nothing_and_never_allocates_spans() {
        let mut t = Trace::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.open("ubf"), 0);
        t.event(TraceEvent::NetSize { nodes: 9, edges: 9 });
        t.close();
        t.close(); // extra closes are no-ops when disabled
        assert!(t.records().is_empty());
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    #[should_panic(expected = "unbalanced instrumentation")]
    fn unbalanced_close_panics_when_enabled() {
        Trace::enabled().close();
    }

    #[test]
    fn identical_emission_yields_identical_records_and_bytes() {
        let a = sample();
        let b = sample();
        assert_eq!(a.records(), b.records());
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }
}
