//! Property-based tests for the deterministic thread pool: on arbitrary
//! inputs and thread counts, every `par_*` entry point is observationally
//! identical to its sequential counterpart.

use ballfit_par::{par_map, par_map_init, Parallelism};
use proptest::prelude::*;

proptest! {
    /// `par_map` is exactly `iter().map().collect()` — same values, same
    /// order — at any thread count, including counts far above the input
    /// length.
    #[test]
    fn par_map_equals_sequential_map(
        inputs in proptest::collection::vec(any::<i64>(), 0..2000),
        threads in 1usize..32,
    ) {
        let f = |x: &i64| x.wrapping_mul(31).wrapping_add(7);
        let expect: Vec<i64> = inputs.iter().map(f).collect();
        let got = par_map(Parallelism::threads(threads), &inputs, f);
        prop_assert_eq!(got, expect);
    }

    /// Two different thread counts agree with each other bit-for-bit on
    /// float outputs (the detector's case: f64-heavy per-node work).
    #[test]
    fn thread_count_never_changes_float_bits(
        inputs in proptest::collection::vec(any::<u32>(), 0..1500),
        a in 1usize..16,
        b in 1usize..16,
    ) {
        let f = |x: &u32| (f64::from(*x) + 0.25).sqrt().to_bits();
        let ra = par_map(Parallelism::threads(a), &inputs, f);
        let rb = par_map(Parallelism::threads(b), &inputs, f);
        prop_assert_eq!(ra, rb);
    }

    /// Per-thread scratch state never leaks into results: a stateful
    /// scratch buffer produces the same output as the stateless map.
    #[test]
    fn scratch_state_does_not_leak(
        inputs in proptest::collection::vec(any::<u16>(), 0..1000),
        threads in 1usize..16,
    ) {
        let got = par_map_init(
            Parallelism::threads(threads),
            &inputs,
            Vec::<u16>::new,
            |scratch, idx, item| {
                scratch.push(*item); // grows per worker; output ignores it
                u64::from(*item) * 2 + idx as u64
            },
        );
        let expect: Vec<u64> = inputs
            .iter()
            .enumerate()
            .map(|(idx, item)| u64::from(*item) * 2 + idx as u64)
            .collect();
        prop_assert_eq!(got, expect);
    }
}
