//! Deterministic data-parallelism for the ballfit workspace.
//!
//! The UBF candidacy sweep is Θ(ρ³) per node (paper, Theorem 1) and
//! embarrassingly parallel across nodes, so the reference pipeline shards
//! hot per-node loops over a scoped thread pool. The one non-negotiable
//! requirement — the workspace's determinism invariant — is that parallel
//! output is **byte-identical to sequential at every thread count**. This
//! crate delivers that with a deliberately boring design:
//!
//! * Inputs are split into fixed-size chunks whose boundaries depend only
//!   on the input length and the configured thread count — never on
//!   scheduling.
//! * Workers claim chunks from an atomic cursor (work stealing for load
//!   balance) and send back `(chunk_index, results)` pairs.
//! * The caller reassembles results **by chunk index**, so the output
//!   order is the input order regardless of which worker finished first.
//!
//! The mapped closure must be a pure function of the item and its index;
//! the per-thread `init` state of [`par_map_init`] /
//! [`par_for_each_init`] is scratch (reusable buffers), not an
//! accumulator — chunk-to-thread assignment is scheduling-dependent, so
//! any output that depended on accumulated state would break the
//! byte-identical guarantee.
//!
//! No `rayon`, no channels crates: `std::thread::scope` + `mpsc` only,
//! and no timing — wall-clock measurement lives in `crates/bench` so the
//! determinism lint's `Instant` ban on library code holds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// How many worker threads a parallel region may use.
///
/// This is an explicit configuration value, threaded through the detector
/// and harness APIs rather than read ambiently at each call site, so a
/// caller can pin a run to any thread count and get the same bytes out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Exactly `threads` workers (clamped to at least 1).
    pub fn threads(threads: usize) -> Self {
        Parallelism { threads: threads.max(1) }
    }

    /// Single-threaded: every `par_*` call runs inline on the caller.
    pub fn sequential() -> Self {
        Parallelism::threads(1)
    }

    /// One worker per hardware thread (1 if the count is unavailable).
    pub fn available() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Parallelism::threads(n)
    }

    /// `BALLFIT_THREADS` if set to a positive integer, else
    /// [`Parallelism::available`]. This is the default everywhere, so
    /// `BALLFIT_THREADS=2 cargo test` exercises the parallel paths of the
    /// whole suite without code changes.
    pub fn from_env() -> Self {
        match std::env::var("BALLFIT_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Parallelism::threads(n),
                _ => Parallelism::available(),
            },
            Err(_) => Parallelism::available(),
        }
    }

    /// The configured worker count (always ≥ 1).
    pub fn get(self) -> usize {
        self.threads
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::from_env()
    }
}

/// Chunk length for `n` items on `threads` workers: a pure function of
/// the two counts (never of scheduling), sized so each worker sees ~16
/// chunks for load balance without drowning in channel traffic.
fn chunk_len(n: usize, threads: usize) -> usize {
    (n / (threads * 16)).clamp(1, 256)
}

/// Maps `f` over `inputs`, in parallel, preserving input order.
///
/// The output is exactly `inputs.iter().map(f).collect()` — byte for
/// byte, at every thread count — provided `f` is deterministic in its
/// argument.
pub fn par_map<I, O, F>(par: Parallelism, inputs: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    par_map_init(par, inputs, || (), |(), _idx, item| f(item))
}

/// [`par_map`] with per-thread scratch state and the item index.
///
/// `init` builds one `T` per worker (reusable buffers, a scratch matrix);
/// `f(&mut scratch, index, item)` must produce output that depends only
/// on `(index, item)` — the scratch contents carried over from earlier
/// items on the same worker are scheduling-dependent and must not leak
/// into results.
pub fn par_map_init<I, O, T, G, F>(par: Parallelism, inputs: &[I], init: G, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    G: Fn() -> T + Sync,
    F: Fn(&mut T, usize, &I) -> O + Sync,
{
    let n = inputs.len();
    let threads = par.get().min(n);
    if threads <= 1 {
        let mut scratch = init();
        return inputs.iter().enumerate().map(|(i, item)| f(&mut scratch, i, item)).collect();
    }

    let chunk = chunk_len(n, threads);
    let chunks = n.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Vec<O>)>();
    let mut slots: Vec<Option<Vec<O>>> = Vec::new();
    slots.resize_with(chunks, || None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut scratch = init();
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks {
                        break;
                    }
                    let start = c * chunk;
                    let end = (start + chunk).min(n);
                    let out: Vec<O> = inputs[start..end]
                        .iter()
                        .enumerate()
                        .map(|(off, item)| f(&mut scratch, start + off, item))
                        .collect();
                    if tx.send((c, out)).is_err() {
                        break;
                    }
                }
            });
        }
        // Drop the caller's sender so `rx` ends once every worker is done;
        // reassemble by chunk index while workers are still producing.
        drop(tx);
        for (c, out) in rx {
            slots[c] = Some(out);
        }
    });

    let mut result = Vec::with_capacity(n);
    for slot in slots {
        // A missing slot is unreachable: `thread::scope` propagates worker
        // panics before we get here, and every non-panicking worker sends
        // each chunk it claims.
        result.extend(slot.expect("all chunks completed"));
    }
    result
}

/// Maps `f` over `inputs` *by value*, in parallel, preserving input
/// order.
///
/// The owned counterpart of [`par_map`]: each item is moved into exactly
/// one worker, so `f` can consume non-`Clone` state (the serve layer
/// shards whole network instances this way) and hand back ownership in
/// its output. The result is exactly
/// `inputs.into_iter().map(f).collect()` — byte for byte, at every
/// thread count — provided `f` is deterministic in its argument.
pub fn par_map_owned<I, O, F>(par: Parallelism, inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = inputs.len();
    let threads = par.get().min(n);
    if threads <= 1 {
        return inputs.into_iter().map(f).collect();
    }

    // Items are moved into per-chunk cells; workers claim chunks from the
    // shared cursor and take each cell's item exactly once. Reassembly is
    // by chunk index, as in `par_map_init`.
    let chunk = chunk_len(n, threads);
    let chunks = n.div_ceil(chunk);
    let cells: Vec<std::sync::Mutex<Option<I>>> =
        inputs.into_iter().map(|item| std::sync::Mutex::new(Some(item))).collect();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Vec<O>)>();
    let mut slots: Vec<Option<Vec<O>>> = Vec::new();
    slots.resize_with(chunks, || None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let cells = &cells;
            let f = &f;
            scope.spawn(move || loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    break;
                }
                let start = c * chunk;
                let end = (start + chunk).min(n);
                let out: Vec<O> = cells[start..end]
                    .iter()
                    .map(|cell| {
                        let item = cell
                            .lock()
                            .expect("no worker panics while holding an item cell")
                            .take()
                            .expect("each item cell is taken exactly once");
                        f(item)
                    })
                    .collect();
                if tx.send((c, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (c, out) in rx {
            slots[c] = Some(out);
        }
    });

    let mut result = Vec::with_capacity(n);
    for slot in slots {
        result.extend(slot.expect("all chunks completed"));
    }
    result
}

/// Runs `f(&mut scratch, index)` for every index in `0..count`, sharded
/// across workers with one `init`-built scratch per worker.
///
/// There is no output channel: `f` is for effects that are disjoint per
/// index (or pure compute). The same scratch contract as
/// [`par_map_init`] applies.
pub fn par_for_each_init<T, G, F>(par: Parallelism, count: usize, init: G, f: F)
where
    G: Fn() -> T + Sync,
    F: Fn(&mut T, usize) + Sync,
{
    let threads = par.get().min(count);
    if threads <= 1 {
        let mut scratch = init();
        for i in 0..count {
            f(&mut scratch, i);
        }
        return;
    }

    let chunk = chunk_len(count, threads);
    let chunks = count.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut scratch = init();
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks {
                        break;
                    }
                    let start = c * chunk;
                    let end = (start + chunk).min(count);
                    for i in start..end {
                        f(&mut scratch, i);
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn parallelism_clamps_to_one() {
        assert_eq!(Parallelism::threads(0).get(), 1);
        assert_eq!(Parallelism::threads(7).get(), 7);
        assert_eq!(Parallelism::sequential().get(), 1);
        assert!(Parallelism::available().get() >= 1);
        assert!(Parallelism::from_env().get() >= 1);
    }

    #[test]
    fn par_map_matches_sequential_at_every_thread_count() {
        let inputs: Vec<u64> = (0..1013).collect();
        let f = |x: &u64| x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        let expect: Vec<u64> = inputs.iter().map(f).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let got = par_map(Parallelism::threads(threads), &inputs, f);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_edge_lengths() {
        for n in [0usize, 1, 2, 255, 256, 257] {
            let inputs: Vec<usize> = (0..n).collect();
            let got = par_map(Parallelism::threads(4), &inputs, |x| x + 1);
            let expect: Vec<usize> = inputs.iter().map(|x| x + 1).collect();
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn par_map_init_sees_the_right_indices() {
        let inputs: Vec<u32> = (0..500).map(|i| i * 3).collect();
        let got = par_map_init(
            Parallelism::threads(8),
            &inputs,
            Vec::<u32>::new,
            |scratch, idx, item| {
                scratch.push(*item); // scratch is write-only here; never read
                (idx, *item)
            },
        );
        let expect: Vec<(usize, u32)> = inputs.iter().copied().enumerate().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn par_map_owned_matches_sequential_at_every_thread_count() {
        // Boxes are non-Clone-dependent owned state: each must be moved
        // into exactly one worker and returned in input order.
        let make = || (0..611u64).map(Box::new).collect::<Vec<_>>();
        let f = |x: Box<u64>| *x ^ 0xA5A5_5A5A_0F0F_F0F0;
        let expect: Vec<u64> = make().into_iter().map(f).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let got = par_map_owned(Parallelism::threads(threads), make(), f);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_owned_handles_edge_lengths() {
        for n in [0usize, 1, 2, 255, 256, 257] {
            let inputs: Vec<usize> = (0..n).collect();
            let expect: Vec<usize> = inputs.iter().map(|x| x * 2).collect();
            let got = par_map_owned(Parallelism::threads(4), inputs, |x| x * 2);
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn par_for_each_init_visits_every_index_once() {
        let hits: Vec<AtomicU64> = (0..777).map(|_| AtomicU64::new(0)).collect();
        par_for_each_init(
            Parallelism::threads(4),
            hits.len(),
            || (),
            |(), i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunk_len_is_a_pure_function_of_counts() {
        assert_eq!(chunk_len(10, 4), 1);
        assert_eq!(chunk_len(4210, 4), 65);
        assert_eq!(chunk_len(1_000_000, 2), 256);
    }
}
