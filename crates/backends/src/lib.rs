//! Pluggable boundary-detection backends.
//!
//! The reproduction's own detector — Unit Ball Fitting + Isolated
//! Fragment Filtering ([`ballfit::detector::BoundaryDetector`]) — is one
//! algorithm among several localized boundary-recognition proposals.
//! This crate defines the algorithm-agnostic surface the rest of the
//! system (CLI, serve daemon, benches) talks to, so rival detectors can
//! be run head-to-head on identical inputs with identical accounting:
//!
//! * [`BoundaryBackend`] — the trait: detection over a borrowed
//!   [`NetView`], returning per-node verdicts, boundary groups, and the
//!   measured message/byte/ball-test cost of the exchange the algorithm
//!   would perform as a message-passing protocol.
//! * [`UbfBackend`] — the reference adapter over the existing pipeline.
//!   Its verdicts are byte-identical to
//!   [`BoundaryDetector::detect_view`](ballfit::detector::BoundaryDetector::detect_view)
//!   (pinned by `tests/backends.rs`); its costs come from genuine
//!   [`Simulator`](ballfit_wsn::sim::Simulator) runs of the UBF table
//!   exchange, the IFF fragment flood, and the grouping label flood.
//! * [`StatisticalBackend`] — a reproduction-grade rival in the style of
//!   Fekete et al., "Neighborhood-Based Topology Recognition in Sensor
//!   Networks" (arxiv cs/0508006): boundary = nodes whose degree falls
//!   below a seeded threshold test against the local density estimate
//!   from their closed neighborhood.
//! * [`by_name`] / [`configured`] / [`all`] — the registry. Ordering is
//!   deterministic ([`NAMES`], reference backend first).
//!
//! Cost accounting goes through `obs` counters: every backend emits its
//! exchange rounds ([`TraceEvent::Round`](ballfit_obs::TraceEvent)) and
//! per-node ball tests into the caller's [`Trace`], reusing the span
//! names the protocol runners use (`"ubf"`, `"iff"`, `"grouping"`,
//! `"stat"`), so [`ballfit_obs::summary::summarize`] rolls a backend run
//! into the same per-protocol rows as the E15/E18 experiments — and the
//! tallies mirrored on [`BackendDetection`] equal the summary totals
//! (also pinned by `tests/backends.rs`).

pub mod stat;
pub mod ubf;

use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetection;
use ballfit::view::NetView;
use ballfit_obs::Trace;
use ballfit_par::Parallelism;

pub use stat::StatisticalBackend;
pub use ubf::UbfBackend;

/// What a backend run produced: the full per-node detection plus the
/// measured cost of the message exchange that computed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendDetection {
    /// Per-node verdicts, boundary groups, and ball-test accounting, in
    /// the shared [`BoundaryDetection`] shape (so
    /// [`ballfit::metrics::DetectionStats`] evaluates any backend).
    pub detection: BoundaryDetection,
    /// Total point-to-point messages of the backend's exchange(s).
    pub messages: u64,
    /// Total payload bytes of the backend's exchange(s)
    /// ([`ballfit_obs::MsgBytes`] wire sizes).
    pub bytes: u64,
    /// Total message-delivery rounds across the exchange phases.
    pub rounds: usize,
}

impl BackendDetection {
    /// Final per-node boundary flags.
    pub fn boundary(&self) -> &[bool] {
        &self.detection.boundary
    }

    /// Number of detected boundary nodes.
    pub fn boundary_count(&self) -> usize {
        self.detection.boundary_count()
    }

    /// Unit balls tested (zero for backends that fit no balls).
    pub fn ball_tests(&self) -> u64 {
        self.detection.balls_tested
    }
}

/// A boundary-detection algorithm over a [`NetView`].
///
/// Contract:
///
/// * `detect` is a pure function of the view and the backend's own
///   configuration — byte-identical across repeated runs and across
///   worker-thread counts (the thread ladder is pinned in
///   `tests/backends.rs`).
/// * All cost numbers are measured, not estimated: backends execute
///   their exchanges on the round-based simulator and report its
///   [`RunStats`](ballfit_wsn::sim::RunStats). The same numbers are
///   emitted as trace events, so an enabled [`Trace`] summarizes to the
///   tallies returned on [`BackendDetection`].
/// * With [`Trace::disabled`] the trace writes are free; verdicts never
///   depend on whether tracing is on.
pub trait BoundaryBackend {
    /// The registry name (`"ubf"`, `"stat"`, ...).
    fn name(&self) -> &'static str;

    /// Runs detection on the view, emitting exchange/ball-test events
    /// into `trace`.
    fn detect(&self, view: &NetView<'_>, trace: &mut Trace) -> BackendDetection;
}

/// Registry order: the reference backend first, rivals after, fixed
/// forever so every enumeration (CLI help, bench matrices, serve
/// validation) agrees byte-for-byte.
pub const NAMES: [&str; 2] = ["ubf", "stat"];

/// Builds a backend by registry name with explicit configuration:
/// `config` parameterizes the UBF pipeline, `seed` the statistical
/// threshold test, `parallelism` the per-node sweeps. Returns [`None`]
/// for unknown names.
pub fn configured(
    name: &str,
    config: DetectorConfig,
    seed: u64,
    parallelism: Parallelism,
) -> Option<Box<dyn BoundaryBackend>> {
    match name {
        "ubf" => Some(Box::new(UbfBackend::new(config).with_parallelism(parallelism))),
        "stat" => Some(Box::new(StatisticalBackend::new(seed).with_parallelism(parallelism))),
        _ => None,
    }
}

/// Builds a backend by registry name with default configuration
/// (ground-truth coordinates, paper IFF parameters, seed 0).
pub fn by_name(name: &str) -> Option<Box<dyn BoundaryBackend>> {
    configured(name, DetectorConfig::default(), 0, Parallelism::default())
}

/// Every registered backend with default configuration, in [`NAMES`]
/// order.
pub fn all() -> Vec<Box<dyn BoundaryBackend>> {
    NAMES.iter().map(|n| by_name(n).expect("registry names construct")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_construct_and_agree() {
        for name in NAMES {
            let backend = by_name(name).expect("registered name constructs");
            assert_eq!(backend.name(), name);
        }
        assert!(by_name("nope").is_none());
        let order: Vec<&str> = all().iter().map(|b| b.name()).collect();
        assert_eq!(order, NAMES.to_vec(), "all() must follow registry order");
    }

    #[test]
    fn configured_threads_through() {
        let b = configured("ubf", DetectorConfig::paper(10, 7), 0, Parallelism::sequential())
            .expect("ubf is registered");
        assert_eq!(b.name(), "ubf");
        assert!(configured("svw", DetectorConfig::default(), 0, Parallelism::default()).is_none());
    }
}
