//! Statistical degree-based boundary recognition, after Fekete et al.,
//! "Neighborhood-Based Topology Recognition in Sensor Networks"
//! (arxiv cs/0508006).
//!
//! The insight the rival reproduces: in a network of roughly uniform
//! density, interior nodes see a full ball of neighbors while boundary
//! nodes see a truncated one, so a node whose degree falls clearly
//! below the density its own neighborhood implies is probably on the
//! boundary. The localized form here:
//!
//! 1. **Degree exchange** — every node broadcasts its degree once
//!    (`2·|E|` messages on a perfect radio) and accumulates its
//!    neighbors' degrees, giving it the closed-neighborhood mean degree
//!    `μ_i = (deg_i + Σ_{j∈N(i)} deg_j) / (1 + deg_i)` — its local
//!    density estimate.
//! 2. **Seeded threshold test** — node `i` declares boundary iff
//!    `deg_i < t · μ_i · (1 + j·(2u_i − 1))` where `t` is the threshold
//!    factor, `j` a small jitter amplitude, and `u_i ∈ [0, 1)` a
//!    per-node draw from a seeded bit mixer. The jitter reproduces the
//!    paper's probabilistic flavor while staying replay-bit-identical:
//!    the draw depends only on `(seed, node id)`, never on scheduling.
//! 3. **Grouping flood** — the same component-labeling exchange the
//!    reference pipeline uses, so group structure and its cost are
//!    comparable across backends.
//!
//! Isolated nodes (degree 0) have no neighborhood to estimate density
//! from; they are reported as degenerate and conservatively flagged
//! boundary, mirroring the UBF pipeline's `degenerate_is_boundary`
//! default. No unit balls are fitted, so `balls_tested` is always 0 —
//! that zero is the point of the head-to-head: E22 measures what the
//! geometric machinery buys over pure degree statistics.

use ballfit::detector::BoundaryDetection;
use ballfit::grouping::group_boundaries;
use ballfit::protocols::GroupingProtocol;
use ballfit::view::NetView;
use ballfit_obs::{Trace, TraceEvent};
use ballfit_par::{par_map, Parallelism};
use ballfit_wsn::sim::{Ctx, Protocol, Simulator};
use ballfit_wsn::topology::NodeId;

use crate::{BackendDetection, BoundaryBackend};

/// Default threshold factor `t`: boundary iff degree < t·μ. Tuned on
/// the scenario gallery — high enough to catch truncated neighborhoods
/// on curved surfaces (recall 0.4–0.9 at paper density), low enough
/// that dense interiors stay quiet (precision ≥ 0.8 everywhere).
pub const DEFAULT_THRESHOLD: f64 = 0.85;

/// Default jitter amplitude `j` for the seeded threshold perturbation.
pub const DEFAULT_JITTER: f64 = 0.02;

/// The degree exchange is a single broadcast round; slack mirrors the
/// UBF exchange bound.
const EXCHANGE_MAX_ROUNDS: usize = 4;

/// SplitMix-style 64-bit finalizer (murmur3 fmix64 constants). Not a
/// stream RNG: one stateless draw per `(seed, node)` key, which is what
/// makes replays bit-identical regardless of evaluation order.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// Uniform draw in `[0, 1)` keyed by `(seed, node)`.
fn unit_draw(seed: u64, node: NodeId) -> f64 {
    let key = seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mix64(key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One-shot degree broadcast + accumulation. Quiesces after the single
/// delivery round on a perfect radio.
#[derive(Debug, Clone, Copy, Default)]
struct DegreeExchange {
    /// Own degree, learned from the neighbor list at start.
    degree: u64,
    /// Sum of neighbor degrees received.
    sum: u64,
}

impl Protocol for DegreeExchange {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        self.degree = ctx.neighbors().len() as u64;
        ctx.broadcast(self.degree);
    }

    fn on_message(&mut self, _from: NodeId, msg: &u64, _ctx: &mut Ctx<'_, u64>) {
        self.sum = self.sum.saturating_add(*msg);
    }
}

/// Fekete-style statistical boundary detector.
#[derive(Debug, Clone, Copy)]
pub struct StatisticalBackend {
    seed: u64,
    threshold: f64,
    jitter: f64,
    parallelism: Parallelism,
}

impl StatisticalBackend {
    /// A backend with the default threshold/jitter and the given seed
    /// for the per-node threshold perturbation.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            threshold: DEFAULT_THRESHOLD,
            jitter: DEFAULT_JITTER,
            parallelism: Parallelism::default(),
        }
    }

    /// Overrides the threshold factor `t`.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Overrides the jitter amplitude `j`.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the worker-thread policy for the per-node verdict sweep.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The seed keying the per-node threshold draws.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl BoundaryBackend for StatisticalBackend {
    fn name(&self) -> &'static str {
        "stat"
    }

    fn detect(&self, view: &NetView<'_>, trace: &mut Trace) -> BackendDetection {
        let topo = view.topology();

        // Phase 1: degree exchange, measured on the simulator.
        trace.open("stat");
        trace.event(TraceEvent::NetSize { nodes: view.len(), edges: topo.edge_count() });
        let mut sim = Simulator::new(topo, |_| DegreeExchange::default());
        let stats = sim.run_traced(EXCHANGE_MAX_ROUNDS, trace);
        assert!(stats.quiescent, "degree exchange must quiesce on a perfect radio");
        let states: Vec<DegreeExchange> = sim.into_nodes();

        // Phase 2: seeded threshold test per node. The draw is keyed by
        // node id, so the sweep runs over indices; output depends only
        // on (seed, node, exchange state) — byte-identical at every
        // thread count.
        let (seed, threshold, jitter) = (self.seed, self.threshold, self.jitter);
        let indices: Vec<NodeId> = (0..view.len()).collect();
        let verdicts: Vec<(bool, bool)> = par_map(self.parallelism, &indices, |&i| {
            let s = &states[i];
            if s.degree == 0 {
                // Degenerate: no neighborhood to estimate density from.
                return (true, true);
            }
            let mean = (s.degree + s.sum) as f64 / (1 + s.degree) as f64;
            let wobble = 1.0 + jitter * (2.0 * unit_draw(seed, i) - 1.0);
            ((s.degree as f64) < threshold * mean * wobble, false)
        });
        let boundary: Vec<bool> = verdicts.iter().map(|v| v.0).collect();
        let degenerate_nodes: Vec<NodeId> =
            verdicts.iter().enumerate().filter(|(_, v)| v.1).map(|(i, _)| i).collect();
        trace.event(TraceEvent::Counter {
            name: "boundary",
            value: boundary.iter().filter(|&&b| b).count() as u64,
        });
        trace.close();

        let mut messages = stats.messages;
        let mut bytes = stats.bytes;
        let mut rounds = stats.rounds;

        // Phase 3: grouping flood, same exchange as the reference
        // pipeline so group costs are comparable.
        let mut sim = Simulator::new(topo, |id| GroupingProtocol::new(id, boundary[id]));
        trace.open("grouping");
        let stats = sim.run_traced(view.len() + 2, trace);
        trace.close();
        assert!(stats.quiescent, "grouping flood must quiesce on a perfect radio");
        messages += stats.messages;
        bytes += stats.bytes;
        rounds += stats.rounds;

        let groups = group_boundaries(topo, &boundary);
        let detection = BoundaryDetection {
            candidates: boundary.clone(),
            boundary,
            groups,
            balls_tested: 0,
            degenerate_nodes,
        };
        BackendDetection { detection, messages, bytes, rounds }
    }
}
