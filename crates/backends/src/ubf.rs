//! The reference backend: the paper's UBF → IFF → grouping pipeline
//! behind the [`BoundaryBackend`] trait.
//!
//! Verdicts come straight from
//! [`BoundaryDetector::detect_view_traced`], so adapting through the
//! trait cannot drift from the pre-backend entry point — the two are
//! byte-identical by construction and pinned by `tests/backends.rs`.
//! Costs are measured, not modeled: the adapter replays the three
//! message exchanges the distributed pipeline performs (UBF distance
//! tables, IFF fragment flood, grouping label flood) on the round-based
//! simulator and sums their [`RunStats`]. Each exchange runs inside a
//! span named after its protocol runner (`"ubf"`, `"iff"`,
//! `"grouping"`), following the PR 5 convention that detector spans
//! reuse runner span names so one summary row carries computation and
//! traffic together.

use ballfit::config::DetectorConfig;
use ballfit::detector::BoundaryDetector;
use ballfit::protocols::{GroupingProtocol, UbfProtocol};
use ballfit::view::NetView;
use ballfit_obs::Trace;
use ballfit_par::Parallelism;
use ballfit_wsn::flood::FragmentFlood;
use ballfit_wsn::sim::Simulator;

use crate::{BackendDetection, BoundaryBackend};

/// UBF exchanges quiesce after one broadcast round; small slack keeps
/// the bound honest without inflating the round tally (quiescent runs
/// stop early).
const UBF_MAX_ROUNDS: usize = 4;

/// The paper pipeline as a backend.
#[derive(Debug, Clone, Copy)]
pub struct UbfBackend {
    config: DetectorConfig,
    parallelism: Parallelism,
}

impl UbfBackend {
    /// A backend over the given pipeline configuration, sequential by
    /// default (matching [`BoundaryDetector::new`]).
    pub fn new(config: DetectorConfig) -> Self {
        Self { config, parallelism: Parallelism::default() }
    }

    /// Sets the worker-thread policy for the per-node UBF sweep.
    /// Verdicts are independent of this (thread-ladder pinned in
    /// `tests/backends.rs`).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The pipeline configuration this backend runs with.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }
}

impl BoundaryBackend for UbfBackend {
    fn name(&self) -> &'static str {
        "ubf"
    }

    fn detect(&self, view: &NetView<'_>, trace: &mut Trace) -> BackendDetection {
        let detection = BoundaryDetector::new(self.config)
            .with_parallelism(self.parallelism)
            .detect_view_traced(view, trace);

        let mut messages = 0u64;
        let mut bytes = 0u64;
        let mut rounds = 0usize;

        // UBF distance-table exchange: one broadcast per node, 2·|E|
        // point-to-point messages on a perfect radio.
        let states = UbfProtocol::for_view(view, &self.config.coordinates);
        let mut sim = Simulator::new(view.topology(), |id| states[id].clone());
        trace.open("ubf");
        let stats = sim.run_traced(UBF_MAX_ROUNDS, trace);
        trace.close();
        assert!(stats.quiescent, "ubf exchange must quiesce on a perfect radio");
        messages += stats.messages;
        bytes += stats.bytes;
        rounds += stats.rounds;

        // IFF fragment flood over the UBF candidates, TTL-scoped.
        let ttl = self.config.iff.ttl;
        let mut sim =
            Simulator::new(view.topology(), |id| FragmentFlood::new(detection.candidates[id], ttl));
        trace.open("iff");
        let stats = sim.run_traced(ttl as usize + 2, trace);
        trace.close();
        assert!(stats.quiescent, "iff flood must quiesce on a perfect radio");
        messages += stats.messages;
        bytes += stats.bytes;
        rounds += stats.rounds;

        // Grouping label flood over the surviving boundary set.
        let mut sim =
            Simulator::new(view.topology(), |id| GroupingProtocol::new(id, detection.boundary[id]));
        trace.open("grouping");
        let stats = sim.run_traced(view.len() + 2, trace);
        trace.close();
        assert!(stats.quiescent, "grouping flood must quiesce on a perfect radio");
        messages += stats.messages;
        bytes += stats.bytes;
        rounds += stats.rounds;

        BackendDetection { detection, messages, bytes, rounds }
    }
}
