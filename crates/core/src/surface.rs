//! Steps I–V assembled: triangular boundary surface construction
//! (Sec. III of the paper).

use std::collections::BTreeMap;

use ballfit_geom::mesh::{MeshAudit, TriMesh};
use ballfit_netgen::model::NetworkModel;
use ballfit_wsn::bfs::hop_distances;
use ballfit_wsn::{NodeId, Topology};

use crate::cdg::{build_cdg, LandmarkEdge};
use crate::cdm::build_cdm;
use crate::cells::assign_cells;
use crate::config::SurfaceConfig;
use crate::detector::BoundaryDetection;
use crate::edgeflip::{faces_of, flip_to_manifold_empty_faces, FlipRecord};
use crate::landmarks::elect_landmarks;
use crate::triangulate::complete_triangulation;
use crate::view::NetView;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Per-stage counters for one boundary group — the numbers behind the
/// pipeline panels of Fig. 1(c–f).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SurfaceStats {
    /// Boundary nodes in the group.
    pub group_size: usize,
    /// Elected landmarks (step I).
    pub landmarks: usize,
    /// CDG edges (step II).
    pub cdg_edges: usize,
    /// CDM edges surviving the path conditions (step III).
    pub cdm_edges: usize,
    /// Edges added by triangulation completion (step IV).
    pub added_edges: usize,
    /// Connection attempts dropped to avoid crossings (step IV).
    pub dropped_edges: usize,
    /// Edge flips performed (step V).
    pub flips: usize,
    /// Whether flipping converged within the configured passes.
    pub flips_converged: bool,
    /// Final triangle count.
    pub faces: usize,
    /// Manifoldness audit of the final mesh.
    pub audit: MeshAudit,
    /// Euler characteristic of the final mesh.
    pub euler: i64,
}

/// A constructed boundary surface for one boundary group.
#[derive(Debug, Clone)]
pub struct BoundarySurface {
    /// The boundary nodes of this group.
    pub group: Vec<NodeId>,
    /// Elected landmark node IDs (ascending).
    pub landmarks: Vec<NodeId>,
    /// Final landmark-graph edges (network node IDs).
    pub edges: Vec<LandmarkEdge>,
    /// Record of edge flips.
    pub flip_records: Vec<FlipRecord>,
    /// The triangular mesh over the landmarks. Vertices are indexed
    /// 0..landmarks.len() in `landmarks` order, positioned at the true
    /// landmark locations (for visualization/metrics only — construction
    /// is connectivity-based).
    pub mesh: TriMesh,
    /// Per-stage statistics.
    pub stats: SurfaceStats,
}

impl BoundarySurface {
    /// The landmark mesh as a CSR [`Topology`] over mesh-vertex indices
    /// (positions in `landmarks`). Shared substrate for the graph-tool
    /// applications (routing, partitioning) so each does not rebuild its
    /// own ad-hoc adjacency lists.
    pub fn mesh_topology(&self) -> Topology {
        let index_of =
            |lm: NodeId| self.landmarks.binary_search(&lm).expect("edge endpoints are landmarks");
        let edges: Vec<(usize, usize)> =
            self.edges.iter().map(|&(a, b)| (index_of(a), index_of(b))).collect();
        Topology::from_edges(self.landmarks.len(), &edges)
    }
}

/// The surface builder.
///
/// # Example
///
/// ```
/// use ballfit::config::{DetectorConfig, SurfaceConfig};
/// use ballfit::detector::BoundaryDetector;
/// use ballfit::surface::SurfaceBuilder;
/// use ballfit_netgen::builder::NetworkBuilder;
/// use ballfit_netgen::scenario::Scenario;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = NetworkBuilder::new(Scenario::SolidSphere)
///     .surface_nodes(300)
///     .interior_nodes(500)
///     .target_degree(16.0)
///     .seed(2)
///     .build()?;
/// let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
/// let surfaces = SurfaceBuilder::new(SurfaceConfig::default()).build(&model, &detection);
/// assert!(!surfaces.is_empty());
/// assert!(surfaces[0].stats.faces > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SurfaceBuilder {
    config: SurfaceConfig,
}

impl SurfaceBuilder {
    /// Creates a builder with the given configuration.
    pub fn new(config: SurfaceConfig) -> Self {
        SurfaceBuilder { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SurfaceConfig {
        &self.config
    }

    /// Constructs a triangular mesh for every boundary group large enough
    /// to produce at least `min_landmarks` landmarks. Groups are processed
    /// in detection order (largest first).
    pub fn build(
        &self,
        model: &NetworkModel,
        detection: &BoundaryDetection,
    ) -> Vec<BoundarySurface> {
        detection.groups.iter().filter_map(|group| self.build_group(model, group)).collect()
    }

    /// Runs steps I–V on a single boundary group. Returns `None` when the
    /// group yields fewer than the configured minimum landmarks.
    pub fn build_group(&self, model: &NetworkModel, group: &[NodeId]) -> Option<BoundarySurface> {
        let view = NetView::new(model.topology(), model.positions(), model.radio_range());
        self.build_group_view(&view, group)
    }

    /// [`SurfaceBuilder::build_group`] over a bare [`NetView`] — the
    /// entry point for callers that hold a churned
    /// [`ballfit_wsn::churn::DynamicTopology`] rather than a generated
    /// [`NetworkModel`] (the serve layer's `mesh` query). Meshing only
    /// reads connectivity and positions, so the two paths are identical
    /// on the same inputs.
    pub fn build_group_view(
        &self,
        view: &NetView<'_>,
        group: &[NodeId],
    ) -> Option<BoundarySurface> {
        let topo = view.topology();
        let member = |n: NodeId| group.binary_search(&n).is_ok();

        // Step I: landmarks + cells.
        let landmarks = elect_landmarks(topo, group, self.config.k);
        if landmarks.len() < self.config.min_landmarks {
            return None;
        }
        let cells = assign_cells(topo, group, &landmarks);

        // Step II: CDG.
        let cdg = build_cdg(topo, group, &cells);

        // Step III: CDM.
        let cdm = build_cdm(topo, group, &cells, &cdg);

        // Step IV: triangulation completion.
        let tri = complete_triangulation(topo, group, &cdm, &cdg, self.config.route_around);

        // Step V: edge flips, with hop-distance lengths over the group
        // subgraph (connectivity-only, as the paper requires). Distances
        // from each landmark are computed once and cached.
        let mut hop_cache: BTreeMap<NodeId, Vec<Option<u32>>> = BTreeMap::new();
        let mut length = |a: NodeId, b: NodeId| -> f64 {
            let dists = hop_cache.entry(a).or_insert_with(|| hop_distances(topo, a, member));
            match dists[b] {
                Some(d) => d as f64,
                None => f64::INFINITY,
            }
        };
        // Faces are *empty* landmark 3-cliques (no vertex adjacent to all
        // three corners): a clique subdivided by a further landmark is a
        // polygon hull, not a face. Flips count these faces per edge.
        let flip_budget = self.config.max_flip_passes * tri.edges.len().max(1);
        let flipped = flip_to_manifold_empty_faces(&tri.edges, flip_budget, &mut length);

        // Extract the mesh over landmark indices. Faces are empty cliques;
        // on very small landmark graphs (minimum holes: an octahedron-to-
        // icosahedron's worth of landmarks) the empty rule can reject
        // everything even though the raw cliques are exactly the faces —
        // fall back to the raw cliques there.
        let index_of: BTreeMap<NodeId, usize> =
            landmarks.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let mut faces_ids = faces_of(&flipped.edges);
        if faces_ids.is_empty() {
            faces_ids = crate::edgeflip::triangles_of(&flipped.edges);
        }
        let faces: Vec<[usize; 3]> =
            faces_ids.iter().map(|t| [index_of[&t[0]], index_of[&t[1]], index_of[&t[2]]]).collect();
        let vertices = landmarks.iter().map(|&l| view.positions()[l]).collect();
        let mesh = TriMesh::new(vertices, faces).expect("landmark faces index landmarks");
        let audit = mesh.audit();
        let euler = mesh.euler_characteristic();

        let stats = SurfaceStats {
            group_size: group.len(),
            landmarks: landmarks.len(),
            cdg_edges: cdg.len(),
            cdm_edges: cdm.edges.len(),
            added_edges: tri.added.len(),
            dropped_edges: tri.dropped.len(),
            flips: flipped.flips.len(),
            flips_converged: flipped.converged,
            faces: mesh.face_count(),
            audit,
            euler,
        };
        Some(BoundarySurface {
            group: group.to_vec(),
            landmarks,
            edges: flipped.edges,
            flip_records: flipped.flips,
            mesh,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use crate::detector::BoundaryDetector;
    use ballfit_netgen::builder::NetworkBuilder;
    use ballfit_netgen::scenario::Scenario;

    fn sphere_pipeline() -> (NetworkModel, BoundaryDetection) {
        let model = NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(350)
            .interior_nodes(600)
            .target_degree(16.0)
            .seed(41)
            .build()
            .unwrap();
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        (model, detection)
    }

    #[test]
    fn sphere_surface_is_meshed() {
        let (model, detection) = sphere_pipeline();
        let surfaces = SurfaceBuilder::new(SurfaceConfig::default()).build(&model, &detection);
        assert_eq!(surfaces.len(), 1, "a sphere has one boundary");
        let s = &surfaces[0];
        assert!(s.stats.landmarks >= 10, "landmarks: {}", s.stats.landmarks);
        assert!(s.stats.faces > 0, "no faces built");
        assert!(s.stats.flips_converged, "flips did not converge");
        // No edge may border 3+ triangles after flipping.
        assert_eq!(s.stats.audit.non_manifold_edges, 0, "{:?}", s.stats.audit);
        // The mesh hugs the true sphere surface (radius 4): mean |SDF|
        // deviation well under one radio range.
        let sdf = model.shape();
        let dev = s.mesh.mean_abs_distance_to(&*sdf);
        assert!(dev < 0.8, "mesh deviates {dev} from the true surface");
    }

    #[test]
    fn larger_k_gives_coarser_mesh() {
        let (model, detection) = sphere_pipeline();
        let fine = SurfaceBuilder::new(SurfaceConfig { k: 3, ..Default::default() })
            .build(&model, &detection);
        let coarse = SurfaceBuilder::new(SurfaceConfig { k: 5, ..Default::default() })
            .build(&model, &detection);
        assert!(!fine.is_empty() && !coarse.is_empty());
        assert!(
            coarse[0].stats.landmarks < fine[0].stats.landmarks,
            "k=5 must elect fewer landmarks than k=3"
        );
    }

    #[test]
    fn tiny_groups_are_skipped() {
        let (model, mut detection) = sphere_pipeline();
        // Fake a tiny extra group.
        detection.groups.push(vec![0]);
        let surfaces = SurfaceBuilder::new(SurfaceConfig::default()).build(&model, &detection);
        assert_eq!(surfaces.len(), 1, "the singleton group must be skipped");
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (model, detection) = sphere_pipeline();
        let s = &SurfaceBuilder::new(SurfaceConfig::default()).build(&model, &detection)[0];
        assert_eq!(s.stats.group_size, s.group.len());
        assert_eq!(s.stats.landmarks, s.landmarks.len());
        assert_eq!(s.stats.faces, s.mesh.face_count());
        // Final edges ⊇ mesh edges (every mesh edge is a landmark edge).
        assert!(s.stats.cdm_edges <= s.stats.cdg_edges);
        assert_eq!(s.mesh.vertex_count(), s.landmarks.len());
    }
}
