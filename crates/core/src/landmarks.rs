//! Step I of surface construction: landmark election.
//!
//! "The boundary nodes employ a distributed algorithm to elect a subset of
//! nodes as landmarks. Any two landmarks must be k-hops apart. k determines
//! the fineness of the mesh." (Sec. III)
//!
//! The reference realization is the *greedy minimum-ID maximal independent
//! set in the (k−1)-power* of the boundary subgraph: scanning boundary
//! nodes in ascending ID, a node becomes a landmark unless an existing
//! landmark lies within `k − 1` hops (so elected landmarks are pairwise
//! ≥ k hops apart, and every boundary node has a landmark within `k − 1`
//! hops — maximality). This lexicographically-first MIS is exactly what
//! the iterated local-minimum distributed election converges to, so the
//! centralized and protocol executions agree (see [`crate::protocols`]).

use ballfit_wsn::bfs::nodes_within;
use ballfit_wsn::{NodeId, Topology};

/// Elects landmarks on one boundary group.
///
/// `group` must be sorted (as produced by
/// [`crate::grouping::group_boundaries`]); `k` is the landmark spacing.
/// Traversal is restricted to the group members. Returns the landmark IDs
/// in ascending order.
///
/// # Panics
///
/// Panics if `k == 0` or `group` is unsorted.
pub fn elect_landmarks(topo: &Topology, group: &[NodeId], k: u32) -> Vec<NodeId> {
    assert!(k >= 1, "landmark spacing k must be at least 1");
    assert!(group.windows(2).all(|w| w[0] < w[1]), "group must be sorted");
    let member = |n: NodeId| group.binary_search(&n).is_ok();

    let mut suppressed = vec![false; topo.len()];
    let mut landmarks = Vec::new();
    for &node in group {
        if suppressed[node] {
            continue;
        }
        landmarks.push(node);
        // Suppress everything within k−1 hops on the boundary subgraph.
        suppressed[node] = true;
        for n in nodes_within(topo, node, k - 1, member) {
            suppressed[n] = true;
        }
    }
    landmarks
}

/// Validates the landmark invariants on a group: pairwise hop distance
/// ≥ k (within the group subgraph) and every member within k−1 hops of
/// some landmark. Returns an error description on violation (test helper,
/// also used by the protocol audit).
pub fn check_landmark_invariants(
    topo: &Topology,
    group: &[NodeId],
    landmarks: &[NodeId],
    k: u32,
) -> Result<(), String> {
    let member = |n: NodeId| group.binary_search(&n).is_ok();
    // Coverage and separation via one BFS per landmark.
    let mut covered = vec![false; topo.len()];
    for &lm in landmarks {
        if !member(lm) {
            return Err(format!("landmark {lm} is not in the group"));
        }
        covered[lm] = true;
        for n in nodes_within(topo, lm, k - 1, member) {
            if landmarks.binary_search(&n).is_ok() && n != lm {
                return Err(format!("landmarks {lm} and {n} are closer than {k} hops"));
            }
            covered[n] = true;
        }
    }
    for &g in group {
        if !covered[g] {
            return Err(format!("node {g} has no landmark within {} hops", k - 1));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Topology {
        Topology::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn ring_election_spacing() {
        let topo = ring(12);
        let group: Vec<usize> = (0..12).collect();
        let landmarks = elect_landmarks(&topo, &group, 3);
        // Greedy by ID on a 12-ring with k=3: 0, 3, 6, 9.
        assert_eq!(landmarks, vec![0, 3, 6, 9]);
        check_landmark_invariants(&topo, &group, &landmarks, 3).unwrap();
    }

    #[test]
    fn k_one_selects_everyone() {
        let topo = ring(5);
        let group: Vec<usize> = (0..5).collect();
        assert_eq!(elect_landmarks(&topo, &group, 1), group);
    }

    #[test]
    fn larger_k_fewer_landmarks() {
        let topo = ring(30);
        let group: Vec<usize> = (0..30).collect();
        let l3 = elect_landmarks(&topo, &group, 3);
        let l5 = elect_landmarks(&topo, &group, 5);
        assert!(l5.len() < l3.len());
        check_landmark_invariants(&topo, &group, &l5, 5).unwrap();
    }

    #[test]
    fn election_is_restricted_to_the_group() {
        // Two boundary rings joined by an interior path; electing on one
        // group must ignore the other entirely.
        let mut edges: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        edges.extend((6..12).map(|i| (i, if i == 11 { 6 } else { i + 1 })));
        edges.push((0, 12));
        edges.push((12, 6));
        let topo = Topology::from_edges(13, &edges);
        let group_a: Vec<usize> = (0..6).collect();
        let landmarks = elect_landmarks(&topo, &group_a, 3);
        assert!(landmarks.iter().all(|l| *l < 6));
        check_landmark_invariants(&topo, &group_a, &landmarks, 3).unwrap();
    }

    #[test]
    fn invariant_checker_catches_violations() {
        let topo = ring(12);
        let group: Vec<usize> = (0..12).collect();
        // 0 and 1 are adjacent: spacing violation for k=3.
        assert!(check_landmark_invariants(&topo, &group, &[0, 1], 3).is_err());
        // 0 alone cannot cover the far side of the ring within 2 hops.
        assert!(check_landmark_invariants(&topo, &group, &[0], 3).is_err());
        // Node outside the group.
        assert!(check_landmark_invariants(&topo, &group[..6], &[7], 3).is_err());
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let topo = ring(4);
        let _ = elect_landmarks(&topo, &[0, 1, 2, 3], 0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_group_panics() {
        let topo = ring(4);
        let _ = elect_landmarks(&topo, &[2, 1], 3);
    }
}
