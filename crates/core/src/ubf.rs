//! Phase 1: Unit Ball Fitting (Algorithm 1 of the paper).
//!
//! A node is a boundary candidate iff an *empty unit ball* — a ball of
//! radius `r = 1 + ε` (radio ranges) containing no neighborhood node —
//! can be placed touching it. Lemma 1 reduces the search to the balls
//! determined by the node and two of its neighbors; Theorem 1 bounds the
//! per-node work by `Θ(ρ³)` for nodal density `ρ`.
//!
//! The *localized* variant (the paper's Algorithm 1) tests only one-hop
//! neighbors both as ball-defining points and as emptiness witnesses.

use ballfit_geom::sphere::balls_through_three_points;
use ballfit_geom::Vec3;

use crate::config::UbfConfig;

/// Outcome of a UBF test on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UbfOutcome {
    /// `true` if an empty unit ball touching the node exists.
    pub is_boundary: bool,
    /// Number of candidate balls examined before deciding.
    pub balls_tested: usize,
}

/// Runs the UBF test for the node at `self_index` within a neighborhood
/// given by `coords` (any rigid frame; UBF is isometry-invariant).
///
/// `radio_range` scales the configured ball-radius factor. Neighborhoods
/// with fewer than 3 members cannot define any ball; they yield
/// `is_boundary == cfg.degenerate_is_boundary`.
///
/// # Panics
///
/// Panics if `self_index` is out of range.
pub fn ubf_test(
    coords: &[Vec3],
    self_index: usize,
    radio_range: f64,
    cfg: &UbfConfig,
) -> UbfOutcome {
    assert!(self_index < coords.len(), "self index out of range");
    let n = coords.len();
    if n < 3 {
        return UbfOutcome { is_boundary: cfg.degenerate_is_boundary, balls_tested: 0 };
    }
    let r = cfg.ball_radius(radio_range);
    let tol = cfg.containment_tolerance * radio_range;
    let me = coords[self_index];

    let mut balls_tested = 0usize;
    for j in 0..n {
        if j == self_index {
            continue;
        }
        for k in (j + 1)..n {
            if k == self_index {
                continue;
            }
            for ball in balls_through_three_points(me, coords[j], coords[k], r) {
                balls_tested += 1;
                let empty = coords.iter().all(|&p| !ball.strictly_contains(p, tol));
                if empty {
                    return UbfOutcome { is_boundary: true, balls_tested };
                }
            }
        }
    }
    if balls_tested == 0 {
        // Every triple was degenerate (collinear neighborhood or all
        // circumradii exceed r): the well-connectedness assumption
        // (Definition 3) is violated, so fall back to the degenerate
        // policy rather than claiming "interior".
        return UbfOutcome { is_boundary: cfg.degenerate_is_boundary, balls_tested: 0 };
    }
    UbfOutcome { is_boundary: false, balls_tested }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> UbfConfig {
        UbfConfig::default()
    }

    /// A node at the center of a dense spherical shell of neighbors:
    /// every unit ball touching it contains shell nodes → interior.
    #[test]
    fn interior_node_in_dense_cage_is_not_boundary() {
        let mut coords = vec![Vec3::ZERO]; // the node under test
                                           // Shell of 26 nodes at radius 0.75 (grid directions).
        for x in -1..=1 {
            for y in -1..=1 {
                for z in -1..=1 {
                    if (x, y, z) == (0, 0, 0) {
                        continue;
                    }
                    let v = Vec3::new(x as f64, y as f64, z as f64).normalized() * 0.75;
                    coords.push(v);
                }
            }
        }
        let out = ubf_test(&coords, 0, 1.0, &cfg());
        assert!(!out.is_boundary, "caged node misread as boundary");
        assert!(out.balls_tested > 0);
    }

    /// A node on a planar sheet of neighbors: the half-space above is
    /// empty, so a unit ball fits → boundary.
    #[test]
    fn node_on_a_plane_is_boundary() {
        let mut coords = vec![Vec3::ZERO];
        for x in -2..=2 {
            for y in -2..=2 {
                if (x, y) != (0, 0) {
                    coords.push(Vec3::new(x as f64 * 0.4, y as f64 * 0.4, 0.0));
                }
            }
        }
        let out = ubf_test(&coords, 0, 1.0, &cfg());
        assert!(out.is_boundary, "planar-sheet node must be boundary");
    }

    /// Nodes below a half-space of neighbors but near its edge.
    #[test]
    fn node_under_thick_slab_is_interior() {
        // Node at origin below a slab z ∈ {0.35, 0.7} of neighbors, plus
        // lateral neighbors in its own plane: every ball touching the node
        // from above hits slab nodes; from below... the slab does not
        // block below, so place the node inside a full box grid instead.
        let mut coords = vec![Vec3::ZERO];
        for x in -2..=2 {
            for y in -2..=2 {
                for z in -2..=2 {
                    if (x, y, z) == (0, 0, 0) {
                        continue;
                    }
                    coords.push(Vec3::new(x as f64, y as f64, z as f64) * 0.45);
                }
            }
        }
        let out = ubf_test(&coords, 0, 1.0, &cfg());
        assert!(!out.is_boundary);
    }

    #[test]
    fn degenerate_neighborhoods_follow_config() {
        let lonely = vec![Vec3::ZERO, Vec3::X];
        let out = ubf_test(&lonely, 0, 1.0, &cfg());
        assert!(out.is_boundary, "default marks degenerate nodes as boundary");
        assert_eq!(out.balls_tested, 0);

        let strict = UbfConfig { degenerate_is_boundary: false, ..cfg() };
        assert!(!ubf_test(&lonely, 0, 1.0, &strict).is_boundary);
    }

    /// The defining nodes themselves must not invalidate a ball
    /// (containment tolerance).
    #[test]
    fn defining_points_do_not_block_their_ball() {
        // Exactly three nodes: the ball through them is always "empty".
        let coords = vec![Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0), Vec3::new(0.0, 0.5, 0.0)];
        let out = ubf_test(&coords, 0, 1.0, &cfg());
        assert!(out.is_boundary);
    }

    /// Larger ball radii ignore smaller voids (the hole-size knob of
    /// Sec. II-A3).
    #[test]
    fn ball_radius_controls_detectable_hole_size() {
        // Node on the wall of a small spherical void of radius ~0.8:
        // neighbors populate everything except the void.
        let mut coords = vec![Vec3::ZERO];
        let void_center = Vec3::new(0.78, 0.0, 0.0);
        for x in -3..=3 {
            for y in -3..=3 {
                for z in -3..=3 {
                    let p = Vec3::new(x as f64, y as f64, z as f64) * 0.4;
                    if p.norm() < 1e-9 {
                        continue;
                    }
                    if p.distance(void_center) > 0.78 && p.norm() <= 1.45 {
                        coords.push(p);
                    }
                }
            }
        }
        // r = 0.75 fits in the void → boundary of the small hole found.
        let small = UbfConfig { ball_radius_factor: 0.75, ..cfg() };
        assert!(ubf_test(&coords, 0, 1.0, &small).is_boundary);
        // r = 1.15 cannot fit into the small void → hole ignored.
        let large = UbfConfig { ball_radius_factor: 1.15, ..cfg() };
        assert!(!ubf_test(&coords, 0, 1.0, &large).is_boundary);
    }

    /// UBF is invariant under rigid motion of the local frame.
    #[test]
    fn isometry_invariance() {
        let base = vec![
            Vec3::ZERO,
            Vec3::new(0.6, 0.1, 0.0),
            Vec3::new(-0.2, 0.55, 0.2),
            Vec3::new(0.1, -0.5, 0.4),
            Vec3::new(0.3, 0.3, -0.5),
        ];
        let out1 = ubf_test(&base, 0, 1.0, &cfg());
        // Rotate 90° about z and translate.
        let moved: Vec<Vec3> =
            base.iter().map(|p| Vec3::new(-p.y, p.x, p.z) + Vec3::new(5.0, -3.0, 2.0)).collect();
        let out2 = ubf_test(&moved, 0, 1.0, &cfg());
        assert_eq!(out1.is_boundary, out2.is_boundary);
    }

    /// Collinear neighborhoods define no balls at all: the degenerate
    /// policy applies (Definition 3 violation).
    #[test]
    fn collinear_neighborhood_is_degenerate() {
        let coords = vec![Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0), Vec3::new(-0.5, 0.0, 0.0)];
        let out = ubf_test(&coords, 0, 1.0, &cfg());
        assert!(out.is_boundary);
        assert_eq!(out.balls_tested, 0);
        let strict = UbfConfig { degenerate_is_boundary: false, ..cfg() };
        assert!(!ubf_test(&coords, 0, 1.0, &strict).is_boundary);
    }

    #[test]
    #[should_panic(expected = "self index out of range")]
    fn bad_self_index_panics() {
        let _ = ubf_test(&[Vec3::ZERO], 5, 1.0, &cfg());
    }

    #[test]
    fn outcomes_key_deterministic_tallies() {
        use std::collections::BTreeMap;
        let a = UbfOutcome { is_boundary: true, balls_tested: 3 };
        let b = UbfOutcome { is_boundary: false, balls_tested: 3 };
        let mut tally: BTreeMap<UbfOutcome, usize> = BTreeMap::new();
        for out in [a, b, a] {
            *tally.entry(out).or_default() += 1;
        }
        assert_eq!(tally[&a], 2);
        assert_eq!(tally.len(), 2);
    }
}
