//! Boundary grouping (Sec. II-B, last paragraph).
//!
//! Nodes on the same boundary are connected through boundary nodes only;
//! nodes on different boundaries are not. Grouping is therefore connected
//! components of the boundary-induced subgraph; the outer boundary and
//! each hole boundary come out as separate groups.

use ballfit_wsn::components::components_of;
use ballfit_wsn::{NodeId, Topology};

/// One boundary group (a connected component of boundary nodes), sorted.
pub type BoundaryGroup = Vec<NodeId>;

/// Groups the boundary nodes into per-boundary components, ordered by
/// descending size (ties by smallest member ID). The largest group is
/// typically the outer boundary.
///
/// # Panics
///
/// Panics if `boundary.len() != topo.len()`.
pub fn group_boundaries(topo: &Topology, boundary: &[bool]) -> Vec<BoundaryGroup> {
    assert_eq!(boundary.len(), topo.len(), "boundary flag length mismatch");
    let mut groups = components_of(topo, |n| boundary[n]);
    groups.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_boundaries_with_interior_bridge() {
        // Boundary ring 0-1-2 and boundary pair 5-6, joined only through
        // interior nodes 3,4.
        let topo =
            Topology::from_edges(7, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let boundary = [true, true, true, false, false, true, true];
        let groups = group_boundaries(&topo, &boundary);
        assert_eq!(groups, vec![vec![0, 1, 2], vec![5, 6]]);
    }

    #[test]
    fn ordering_is_by_size_then_min_id() {
        let topo = Topology::from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let groups = group_boundaries(&topo, &[true; 6]);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], vec![0, 1]); // size tie → min id first
        assert_eq!(groups[1], vec![2, 3]);
        assert_eq!(groups[2], vec![4, 5]);
    }

    #[test]
    fn no_boundary_nodes() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(group_boundaries(&topo, &[false; 3]).is_empty());
    }
}
