//! Step IV: triangulation completion.
//!
//! The CDM is planar but may contain faces with more than three sides. For
//! every CDG-adjacent landmark pair left unconnected, a connection packet
//! retraces the shortest boundary path; it is dropped at any intermediate
//! node that already lies on the shortest path between two *connected*
//! landmarks (which would create a crossing edge). If it arrives, the
//! virtual edge is added and its path nodes become marked in turn.

use std::collections::BTreeMap;

use ballfit_wsn::bfs::shortest_path;
use ballfit_wsn::{NodeId, Topology};

use crate::cdg::LandmarkEdge;
use crate::cdm::Cdm;

/// Result of the completion step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Triangulation {
    /// Full edge set after completion (CDM edges plus added edges), sorted.
    pub edges: Vec<LandmarkEdge>,
    /// The edges added by this step.
    pub added: Vec<LandmarkEdge>,
    /// Connection attempts dropped to avoid crossings.
    pub dropped: Vec<LandmarkEdge>,
    /// Realizing path for every edge (CDM paths plus new ones).
    pub paths: BTreeMap<LandmarkEdge, Vec<NodeId>>,
}

/// Completes the CDM toward a triangulation by probing every unconnected
/// CDG pair in ascending `(lo, hi)` order — the deterministic stand-in for
/// the paper's distributed race.
///
/// When `route_around` is set, a pair whose shortest path hits a marked
/// node retries with a detour restricted to unmarked boundary nodes before
/// giving up. The paper drops on first contact; on its dense 4210-node
/// networks cells are wide and collisions rare, while sparser networks
/// funnel many shortest paths through the same nodes near landmarks —
/// the detour recovers those triangles without ever crossing a recorded
/// path (the non-crossing invariant is preserved by construction).
pub fn complete_triangulation(
    topo: &Topology,
    group: &[NodeId],
    cdm: &Cdm,
    cdg_edges: &[LandmarkEdge],
    route_around: bool,
) -> Triangulation {
    let member = |n: NodeId| group.binary_search(&n).is_ok();
    let mut marked = cdm.marked_nodes(topo.len());
    let mut paths = cdm.paths.clone();
    let mut edges = cdm.edges.clone();
    let mut added = Vec::new();
    let mut dropped = Vec::new();

    for &(a, b) in cdg_edges {
        if paths.contains_key(&(a, b)) {
            continue; // already connected by the CDM
        }
        // Primary probe: the plain shortest boundary path; valid only if
        // no *intermediate* node already lies on a connected pair's path
        // (landmark endpoints are naturally on their own paths).
        let primary = shortest_path(topo, a, b, member)
            .filter(|path| !path[1..path.len() - 1].iter().any(|&n| marked[n]));
        // Detour probe: restrict intermediates to unmarked boundary nodes.
        let path = primary.or_else(|| {
            if route_around {
                shortest_path(topo, a, b, |n| member(n) && !marked[n])
            } else {
                None
            }
        });
        let Some(path) = path else {
            dropped.push((a, b));
            continue;
        };
        for &n in &path {
            marked[n] = true;
        }
        paths.insert((a, b), path);
        edges.push((a, b));
        added.push((a, b));
    }
    edges.sort_unstable();
    Triangulation { edges, added, dropped, paths }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdg::build_cdg;
    use crate::cdm::build_cdm;
    use crate::cells::assign_cells;

    fn ring(n: usize) -> Topology {
        Topology::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn nothing_to_add_when_cdm_is_complete() {
        let topo = ring(12);
        let group: Vec<usize> = (0..12).collect();
        let cells = assign_cells(&topo, &group, &[0, 3, 6, 9]);
        let cdg = build_cdg(&topo, &group, &cells);
        let cdm = build_cdm(&topo, &group, &cells, &cdg);
        let tri = complete_triangulation(&topo, &group, &cdm, &cdg, false);
        assert_eq!(tri.edges, cdm.edges);
        assert!(tri.added.is_empty());
        assert!(tri.dropped.is_empty());
    }

    #[test]
    fn rejected_cdm_edge_can_be_added_when_clear() {
        // Line 0..=4, landmarks {0, 2, 4}; CDM rejected (0,4) because its
        // path crosses 2's cell, and the path 0-1-2-3-4 runs through nodes
        // marked by the accepted edges (0,2) and (2,4) → stays dropped.
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let group: Vec<usize> = (0..5).collect();
        let cells = assign_cells(&topo, &group, &[0, 2, 4]);
        let cdg = vec![(0, 2), (0, 4), (2, 4)];
        let cdm = build_cdm(&topo, &group, &cells, &cdg);
        let tri = complete_triangulation(&topo, &group, &cdm, &cdg, false);
        assert_eq!(tri.edges, vec![(0, 2), (2, 4)]);
        assert_eq!(tri.dropped, vec![(0, 4)]);
    }

    #[test]
    fn unconnected_pair_with_clear_path_gets_connected() {
        // Two parallel paths between landmarks 0 and 5:
        //   0-1-2-5 (via low IDs) and 0-3-4-5.
        // Force a CDM that connected nothing; completion should add (0,5)
        // via the min-ID path and mark it.
        let topo = Topology::from_edges(6, &[(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5)]);
        let group: Vec<usize> = (0..6).collect();
        let empty_cdm = Cdm { edges: vec![], rejected: vec![], paths: BTreeMap::new() };
        let tri = complete_triangulation(&topo, &group, &empty_cdm, &[(0, 5)], false);
        assert_eq!(tri.edges, vec![(0, 5)]);
        assert_eq!(tri.paths[&(0, 5)], vec![0, 1, 2, 5]);
    }

    #[test]
    fn crossing_attempt_is_dropped() {
        // Landmarks 0 and 5 connected through node 2 (marked); a later
        // pair (6,7) whose only path goes through node 2 must be dropped.
        let topo = Topology::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 5), (6, 2), (2, 7)]);
        let group: Vec<usize> = (0..8).collect();
        let mut paths = BTreeMap::new();
        paths.insert((0, 5), vec![0, 1, 2, 3, 5]);
        let cdm = Cdm { edges: vec![(0, 5)], rejected: vec![], paths };
        let tri = complete_triangulation(&topo, &group, &cdm, &[(0, 5), (6, 7)], false);
        assert_eq!(tri.dropped, vec![(6, 7)]);
        assert_eq!(tri.edges, vec![(0, 5)]);
    }

    #[test]
    fn route_around_recovers_blocked_pairs() {
        // (6,7)'s direct path goes through marked node 2, but an unmarked
        // detour 6-8-7 exists: with route_around it connects, without it
        // drops.
        let topo = Topology::from_edges(
            9,
            &[(0, 1), (1, 2), (2, 3), (3, 5), (6, 2), (2, 7), (6, 8), (8, 7)],
        );
        let group: Vec<usize> = (0..9).collect();
        let mut paths = BTreeMap::new();
        paths.insert((0, 5), vec![0, 1, 2, 3, 5]);
        let cdm = Cdm { edges: vec![(0, 5)], rejected: vec![], paths };
        let strict = complete_triangulation(&topo, &group, &cdm, &[(0, 5), (6, 7)], false);
        assert_eq!(strict.dropped, vec![(6, 7)]);
        let detour = complete_triangulation(&topo, &group, &cdm, &[(0, 5), (6, 7)], true);
        assert!(detour.added.contains(&(6, 7)));
        assert_eq!(detour.paths[&(6, 7)], vec![6, 8, 7]);
    }

    #[test]
    fn earlier_pairs_win_the_deterministic_race() {
        // Pairs (0,3) and (1,2) both need node 4; ascending order means
        // (0,3) connects first and (1,2) drops.
        let topo = Topology::from_edges(5, &[(0, 4), (4, 3), (1, 4), (4, 2)]);
        let group: Vec<usize> = (0..5).collect();
        let empty = Cdm { edges: vec![], rejected: vec![], paths: BTreeMap::new() };
        let tri = complete_triangulation(&topo, &group, &empty, &[(0, 3), (1, 2)], false);
        assert_eq!(tri.added, vec![(0, 3)]);
        assert_eq!(tri.dropped, vec![(1, 2)]);
    }
}
