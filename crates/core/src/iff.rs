//! Phase 2: Isolated Fragment Filtering (Sec. II-B of the paper).
//!
//! UBF occasionally promotes interior nodes (coordinate noise, locally thin
//! sampling) into small isolated fragments. Genuine boundaries form
//! well-connected closed surfaces of at least θ nodes (θ = 20, the
//! icosahedron bound), so each candidate floods the candidate subgraph
//! with TTL `T` and demotes itself when it observes a fragment smaller
//! than θ.

use ballfit_wsn::flood::fragment_sizes;
use ballfit_wsn::Topology;

use crate::config::IffConfig;

/// Applies IFF to the phase-1 candidate set, returning the surviving
/// boundary flags (centralized-equivalent execution; see
/// [`crate::protocols`] for the message-passing version).
///
/// Semantics: every candidate evaluates the *phase-1* candidate set (all
/// floods run concurrently in the protocol, so demotions are based on the
/// original membership), counts distinct candidates within `ttl` hops of
/// itself on the candidate subgraph *including itself*, and survives iff
/// that count is at least `theta`.
///
/// # Panics
///
/// Panics if `candidates.len() != topo.len()`.
pub fn apply_iff(topo: &Topology, candidates: &[bool], cfg: &IffConfig) -> Vec<bool> {
    assert_eq!(candidates.len(), topo.len(), "candidate flag length mismatch");
    let sizes = fragment_sizes(topo, cfg.ttl, |n| candidates[n]);
    (0..topo.len()).map(|n| candidates[n] && sizes[n] >= cfg.theta).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring of `n` candidates: fragment size visible within TTL t is
    /// min(n, 2t + 1).
    fn ring(n: usize) -> Topology {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Topology::from_edges(n, &edges)
    }

    #[test]
    fn small_fragment_is_filtered() {
        let topo = ring(30);
        // Candidates: a 5-node arc (isolated fragment) and a 25-node arc.
        let mut cand = vec![false; 30];
        for i in 0..5 {
            cand[i] = true;
        }
        for i in 10..29 {
            cand[i] = true;
        }
        let cfg = IffConfig { theta: 7, ttl: 5 };
        let out = apply_iff(&topo, &cand, &cfg);
        for i in 0..5 {
            assert!(!out[i], "small fragment node {i} must be demoted");
        }
        for i in 13..26 {
            assert!(out[i], "large fragment interior node {i} must survive");
        }
    }

    #[test]
    fn ttl_limits_visibility_and_can_demote_fragment_edges() {
        let topo = ring(40);
        let cand = vec![true; 40];
        // TTL 2 on a ring: every node sees 5 candidates including itself.
        let out = apply_iff(&topo, &cand, &IffConfig { theta: 6, ttl: 2 });
        assert!(out.iter().all(|&b| !b), "θ=6 > visible 5 ⇒ all demoted");
        let out = apply_iff(&topo, &cand, &IffConfig { theta: 5, ttl: 2 });
        assert!(out.iter().all(|&b| b), "θ=5 = visible 5 ⇒ all survive");
    }

    #[test]
    fn paper_defaults_keep_icosahedral_fragment() {
        // The paper's minimum hole: 20 boundary nodes with pairwise hop
        // distance ≤ 3. Model it as a 20-node graph of diameter 3
        // (two stacked 10-rings with rungs).
        let mut edges = Vec::new();
        for i in 0..10usize {
            edges.push((i, (i + 1) % 10)); // bottom ring
            edges.push((10 + i, 10 + (i + 1) % 10)); // top ring
            edges.push((i, 10 + i)); // rungs
            edges.push((i, 10 + (i + 1) % 10)); // diagonals shrink diameter
            edges.push((i, (i + 2) % 10)); // chords
            edges.push((10 + i, 10 + (i + 2) % 10));
        }
        let topo = Topology::from_edges(20, &edges);
        let cand = vec![true; 20];
        let out = apply_iff(&topo, &cand, &IffConfig::default());
        // Every node must see all 20 members within 3 hops.
        assert!(out.iter().all(|&b| b), "paper defaults must keep a θ-sized fragment");
    }

    #[test]
    fn demotions_do_not_cascade() {
        // Chain of 10 candidates, θ=4, TTL=1: every node sees ≤ 3 → all
        // demoted, but crucially based on the original set (no ordering
        // effects).
        let topo = Topology::from_edges(10, &(0..9).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let out = apply_iff(&topo, &vec![true; 10], &IffConfig { theta: 4, ttl: 1 });
        assert!(out.iter().all(|&b| !b));
        // With θ=3 all interior chain nodes see exactly 3 and survive while
        // endpoints see 2 and are demoted — if demotions cascaded, the
        // whole chain would unravel.
        let out = apply_iff(&topo, &vec![true; 10], &IffConfig { theta: 3, ttl: 1 });
        assert!(!out[0] && !out[9]);
        for i in 1..9 {
            assert!(out[i], "interior chain node {i} must survive");
        }
    }

    #[test]
    fn non_candidates_never_promoted() {
        let topo = ring(25);
        let mut cand = vec![true; 25];
        cand[3] = false;
        let out = apply_iff(&topo, &cand, &IffConfig { theta: 1, ttl: 3 });
        assert!(!out[3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let topo = ring(5);
        let _ = apply_iff(&topo, &[true; 3], &IffConfig::default());
    }
}
