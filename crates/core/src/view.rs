//! A borrowed view of a network: the minimal surface the detection
//! pipeline reads.
//!
//! [`crate::detector::BoundaryDetector::detect`] historically consumed a
//! full [`NetworkModel`], but the pipeline only ever reads four things:
//! the topology, the positions, the radio range, and a measurement oracle
//! derived from them. [`NetView`] captures exactly that, so the same
//! detection code runs both on a generated static model and on a
//! dynamic topology evolving under churn (see [`crate::incremental`],
//! which builds views over `ballfit_wsn::churn::DynamicTopology`) — and
//! the incremental detector's exactness pin can compare against the
//! identical code path.

use ballfit_geom::Vec3;
use ballfit_netgen::measure::{DistanceOracle, ErrorModel};
use ballfit_netgen::model::NetworkModel;
use ballfit_wsn::{NodeId, Topology};

/// The read-only network surface the detector consumes: connectivity,
/// positions, and the radio range they were built at.
///
/// Measurement noise stays reproducible under churn because
/// [`DistanceOracle`] is stateless per pair — a node's measured distances
/// depend only on `(noise_seed, node pair, true distance)`, never on which
/// other nodes exist.
#[derive(Debug, Clone, Copy)]
pub struct NetView<'a> {
    topology: &'a Topology,
    positions: &'a [Vec3],
    radio_range: f64,
}

impl<'a> NetView<'a> {
    /// Builds a view from parts.
    ///
    /// # Panics
    ///
    /// Panics if `topology` and `positions` disagree on the node count.
    pub fn new(topology: &'a Topology, positions: &'a [Vec3], radio_range: f64) -> Self {
        assert_eq!(
            topology.len(),
            positions.len(),
            "topology and positions must cover the same nodes"
        );
        NetView { topology, positions, radio_range }
    }

    /// The view of a static generated network.
    pub fn from_model(model: &'a NetworkModel) -> Self {
        NetView::new(model.topology(), model.positions(), model.radio_range())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the view has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The connectivity graph.
    pub fn topology(&self) -> &'a Topology {
        self.topology
    }

    /// Node positions.
    pub fn positions(&self) -> &'a [Vec3] {
        self.positions
    }

    /// The radio range.
    pub fn radio_range(&self) -> f64 {
        self.radio_range
    }

    /// True Euclidean distance between two nodes.
    pub fn true_distance(&self, i: NodeId, j: NodeId) -> f64 {
        self.positions[i].distance(self.positions[j])
    }

    /// A measurement oracle over this view — same construction as
    /// [`NetworkModel::oracle`], so a model and its view measure
    /// identically.
    pub fn oracle(&self, model: ErrorModel, noise_seed: u64) -> DistanceOracle {
        DistanceOracle::new(model, self.radio_range, noise_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballfit_netgen::builder::NetworkBuilder;
    use ballfit_netgen::scenario::Scenario;

    #[test]
    fn model_view_mirrors_the_model() {
        let model = NetworkBuilder::new(Scenario::SolidBox)
            .surface_nodes(80)
            .interior_nodes(120)
            .target_degree(12.0)
            .require_connected(false)
            .seed(3)
            .build()
            .unwrap();
        let view = NetView::from_model(&model);
        assert_eq!(view.len(), model.len());
        assert_eq!(view.radio_range(), model.radio_range());
        assert_eq!(view.true_distance(0, 1), model.true_distance(0, 1));
        let (a, b) = (
            view.oracle(ErrorModel::UniformRadius { fraction: 0.3 }, 5),
            model.oracle(ErrorModel::UniformRadius { fraction: 0.3 }, 5),
        );
        let d = model.true_distance(0, 1);
        assert_eq!(a.measure(0, 1, d), b.measure(0, 1, d));
    }

    #[test]
    fn view_from_parts_over_a_hand_built_graph() {
        let pts = vec![Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0), Vec3::new(1.5, 0.0, 0.0)];
        let topo = Topology::from_positions(&pts, 0.8);
        let view = NetView::new(&topo, &pts, 0.8);
        assert_eq!(view.len(), 3);
        assert!(view.topology().are_neighbors(0, 1));
        assert!(!view.topology().are_neighbors(0, 2));
    }

    #[test]
    #[should_panic(expected = "same nodes")]
    fn mismatched_lengths_panic() {
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let _ = NetView::new(&topo, &[Vec3::ZERO], 1.0);
    }
}
