//! The end-to-end boundary-node detector (Sec. II of the paper).

use ballfit_netgen::model::NetworkModel;
use ballfit_obs::{Trace, TraceEvent};
use ballfit_par::{par_map, Parallelism};
use ballfit_wsn::NodeId;

use crate::config::DetectorConfig;
use crate::grouping::{group_boundaries, BoundaryGroup};
use crate::iff::apply_iff;
use crate::localizer::neighborhood_frame_view;
use crate::ubf::ubf_test;
use crate::view::NetView;

/// Result of boundary-node detection on a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryDetection {
    /// Phase-1 (UBF) candidate flags per node.
    pub candidates: Vec<bool>,
    /// Final boundary flags after IFF.
    pub boundary: Vec<bool>,
    /// Boundary groups (outer boundary and hole boundaries), largest first.
    pub groups: Vec<BoundaryGroup>,
    /// Total unit balls tested across all nodes (Theorem 1 accounting).
    pub balls_tested: u64,
    /// Nodes whose local frame could not be built (degenerate
    /// neighborhoods); handled per configuration.
    pub degenerate_nodes: Vec<NodeId>,
}

impl BoundaryDetection {
    /// Indices of detected boundary nodes.
    pub fn boundary_indices(&self) -> Vec<NodeId> {
        (0..self.boundary.len()).filter(|&i| self.boundary[i]).collect()
    }

    /// Number of detected boundary nodes.
    pub fn boundary_count(&self) -> usize {
        self.boundary.iter().filter(|&&b| b).count()
    }
}

/// The detector: configuration plus the `detect` entry point.
///
/// # Example
///
/// ```
/// use ballfit::config::DetectorConfig;
/// use ballfit::detector::BoundaryDetector;
/// use ballfit_netgen::builder::NetworkBuilder;
/// use ballfit_netgen::scenario::Scenario;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = NetworkBuilder::new(Scenario::SolidSphere)
///     .surface_nodes(250)
///     .interior_nodes(450)
///     .target_degree(15.0)
///     .seed(1)
///     .build()?;
/// let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
/// assert!(detection.boundary_count() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BoundaryDetector {
    config: DetectorConfig,
    parallelism: Parallelism,
}

impl BoundaryDetector {
    /// Creates a detector with the given configuration. The UBF sweep is
    /// sharded over [`Parallelism::default`] worker threads; the output
    /// is byte-identical at every thread count.
    pub fn new(config: DetectorConfig) -> Self {
        BoundaryDetector { config, parallelism: Parallelism::default() }
    }

    /// Overrides the worker-thread count for the per-node UBF sweep.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The worker-thread configuration in force.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Runs phases 1 (UBF) and 2 (IFF) plus grouping on a network.
    ///
    /// This is the centralized-equivalent execution: per-node work is
    /// identical to the localized protocol (each node only consults its
    /// `witness_hops`-hop neighborhood — one hop in the paper's
    /// Algorithm 1) but runs in a simple loop; see [`crate::protocols`]
    /// for the message-passing execution.
    pub fn detect(&self, model: &NetworkModel) -> BoundaryDetection {
        self.detect_view(&NetView::from_model(model))
    }

    /// [`BoundaryDetector::detect`] over a borrowed [`NetView`] — the
    /// shared from-scratch implementation. The incremental detector
    /// ([`crate::incremental::IncrementalDetector`]) is pinned exact
    /// against this entry point after every churn event.
    pub fn detect_view(&self, view: &NetView<'_>) -> BoundaryDetection {
        self.detect_view_traced(view, &mut Trace::disabled())
    }

    /// [`BoundaryDetector::detect_view`] with structured tracing: a
    /// `"detect"` span wrapping per-phase `"ubf"` / `"iff"` /
    /// `"grouping"` spans, per-node [`TraceEvent::BallTests`] records
    /// (Theorem-1 candidate-ball accounting) and per-phase result
    /// counters. Events are emitted from the sequential fold over the
    /// (index-ordered) parallel sweep, so the trace is byte-identical
    /// at every thread count; with [`Trace::disabled`] this *is*
    /// `detect_view`.
    pub fn detect_view_traced(&self, view: &NetView<'_>, trace: &mut Trace) -> BoundaryDetection {
        let topo = view.topology();
        let range = view.radio_range();
        let mut candidates = vec![false; view.len()];
        let mut balls_tested = 0u64;
        let mut degenerate_nodes = Vec::new();
        trace.open("detect");
        trace.event(TraceEvent::NetSize { nodes: view.len(), edges: topo.edge_count() });

        // The UBF sweep is the pipeline's dominant cost and each node's
        // test reads only its own `witness_hops`-hop frame, so the sweep
        // shards over worker threads. Per-node outcomes come back in node
        // order (`par_map` is index-ordered) and the fold below is
        // sequential, so the result is byte-identical to the plain loop
        // at every thread count. `None` marks a degenerate neighborhood.
        trace.open("ubf");
        trace.event(TraceEvent::NetSize { nodes: view.len(), edges: topo.edge_count() });
        let nodes: Vec<NodeId> = (0..view.len()).collect();
        let outcomes = par_map(self.parallelism, &nodes, |&node| {
            neighborhood_frame_view(
                view,
                node,
                &self.config.coordinates,
                self.config.ubf.witness_hops,
            )
            .map(|frame| ubf_test(&frame.coords, frame.self_index, range, &self.config.ubf))
        });
        for (node, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Some(out) => {
                    candidates[node] = out.is_boundary;
                    balls_tested += out.balls_tested as u64;
                    trace.event(TraceEvent::BallTests {
                        node,
                        tests: out.balls_tested as u64,
                        boundary: out.is_boundary,
                    });
                }
                None => {
                    degenerate_nodes.push(node);
                    candidates[node] = self.config.ubf.degenerate_is_boundary;
                    trace.event(TraceEvent::Degenerate { node });
                }
            }
        }
        let candidate_count = candidates.iter().filter(|&&c| c).count() as u64;
        trace.event(TraceEvent::Counter { name: "candidates", value: candidate_count });
        trace.close();

        trace.open("iff");
        let boundary = apply_iff(topo, &candidates, &self.config.iff);
        let boundary_count = boundary.iter().filter(|&&b| b).count() as u64;
        trace.event(TraceEvent::Counter { name: "boundary", value: boundary_count });
        trace.close();

        trace.open("grouping");
        let groups = group_boundaries(topo, &boundary);
        trace.event(TraceEvent::Counter { name: "groups", value: groups.len() as u64 });
        trace.close();

        trace.close();
        BoundaryDetection { candidates, boundary, groups, balls_tested, degenerate_nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoordinateSource, IffConfig};
    use ballfit_netgen::builder::NetworkBuilder;
    use ballfit_netgen::scenario::Scenario;

    fn sphere_model(seed: u64) -> NetworkModel {
        NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(300)
            .interior_nodes(500)
            .target_degree(16.0)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn ground_truth_detection_on_a_sphere_is_accurate() {
        let model = sphere_model(21);
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);

        let truth = model.is_surface();
        let mut correct = 0;
        let mut missing = 0;
        for i in 0..model.len() {
            if truth[i] && detection.boundary[i] {
                correct += 1;
            }
            if truth[i] && !detection.boundary[i] {
                missing += 1;
            }
        }
        let truth_count = model.surface_count();
        assert!(
            correct as f64 >= 0.9 * truth_count as f64,
            "only {correct}/{truth_count} true boundary nodes found ({missing} missing)"
        );
        // The sphere has a single boundary.
        assert_eq!(detection.groups.len(), 1, "sphere must yield one boundary group");
        assert!(detection.balls_tested > 0);
    }

    #[test]
    fn iff_reduces_or_keeps_candidates() {
        let model = sphere_model(22);
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        for i in 0..model.len() {
            if detection.boundary[i] {
                assert!(detection.candidates[i], "IFF must never promote node {i}");
            }
        }
        let candidates = detection.candidates.iter().filter(|&&b| b).count();
        assert!(detection.boundary_count() <= candidates);
    }

    #[test]
    fn huge_theta_wipes_all_boundaries() {
        let model = sphere_model(23);
        let cfg =
            DetectorConfig { iff: IffConfig { theta: usize::MAX, ttl: 3 }, ..Default::default() };
        let detection = BoundaryDetector::new(cfg).detect(&model);
        assert_eq!(detection.boundary_count(), 0);
        assert!(detection.groups.is_empty());
    }

    #[test]
    fn mds_coordinates_without_noise_track_ground_truth() {
        let model = sphere_model(24);
        let truth_run = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        let mds_run = BoundaryDetector::new(DetectorConfig {
            coordinates: CoordinateSource::paper_error(0, 9),
            ..Default::default()
        })
        .detect(&model);
        // Noise-free MDS frames are near-isometric to the truth, so the two
        // runs must agree on the vast majority of nodes.
        let agree =
            (0..model.len()).filter(|&i| truth_run.boundary[i] == mds_run.boundary[i]).count();
        assert!(
            agree as f64 >= 0.9 * model.len() as f64,
            "only {agree}/{} nodes agree between truth and 0%-error MDS",
            model.len()
        );
    }

    #[test]
    fn detection_is_deterministic() {
        let model = sphere_model(25);
        let det = BoundaryDetector::new(DetectorConfig::paper(20, 5));
        let a = det.detect(&model);
        let b = det.detect(&model);
        assert_eq!(a.boundary, b.boundary);
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.balls_tested, b.balls_tested);
    }

    #[test]
    fn boundary_indices_match_flags() {
        let model = sphere_model(26);
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        let idx = detection.boundary_indices();
        assert_eq!(idx.len(), detection.boundary_count());
        for &i in &idx {
            assert!(detection.boundary[i]);
        }
    }
}
