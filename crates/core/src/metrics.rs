//! Detection-quality metrics (the quantities plotted in Figs. 1(g–i) and
//! 11(a–c) of the paper).

use ballfit_netgen::model::NetworkModel;
use ballfit_par::{par_map, Parallelism};
use ballfit_wsn::bfs::multi_source_hops;

use crate::detector::BoundaryDetection;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Histogram over hop distances 1, 2, 3 and >3 (the paper buckets 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct HopHistogram {
    /// Nodes at exactly 1 hop.
    pub one: usize,
    /// Nodes at exactly 2 hops.
    pub two: usize,
    /// Nodes at exactly 3 hops.
    pub three: usize,
    /// Nodes farther than 3 hops (or unreachable).
    pub beyond: usize,
}

impl HopHistogram {
    /// Total counted nodes.
    pub fn total(&self) -> usize {
        self.one + self.two + self.three + self.beyond
    }

    /// Fractions `(1 hop, 2 hop, 3 hop, beyond)`; zeros when empty.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let t = t as f64;
        (self.one as f64 / t, self.two as f64 / t, self.three as f64 / t, self.beyond as f64 / t)
    }

    fn record(&mut self, hops: Option<u32>) {
        match hops {
            // 0 hops from the nearest correctly-identified boundary node
            // means the node *is* one — not an error at all, so it belongs
            // in neither locality distribution.
            Some(0) => {}
            Some(1) => self.one += 1,
            Some(2) => self.two += 1,
            Some(3) => self.three += 1,
            _ => self.beyond += 1,
        }
    }
}

/// Detection statistics against ground truth — the series of Fig. 11(a)
/// plus the error-locality distributions of Figs. 11(b,c).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct DetectionStats {
    /// Ground-truth boundary nodes in the network.
    pub truth: usize,
    /// Nodes the detector reported as boundary ("Found").
    pub found: usize,
    /// Found ∩ truth ("Correct").
    pub correct: usize,
    /// Found \ truth ("Mistaken").
    pub mistaken: usize,
    /// Truth \ found ("Missing").
    pub missing: usize,
    /// Hop distance from each mistaken node to the nearest *correctly
    /// identified* boundary node (Fig. 11(b)).
    pub mistaken_hops: HopHistogram,
    /// Hop distance from each missing node to the nearest *correctly
    /// identified* boundary node (Fig. 11(c)).
    pub missing_hops: HopHistogram,
}

impl DetectionStats {
    /// Evaluates a detection against the model's ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the detection was produced for a different-sized network.
    pub fn evaluate(model: &NetworkModel, detection: &BoundaryDetection) -> Self {
        Self::evaluate_with(model, detection, Parallelism::default())
    }

    /// [`DetectionStats::evaluate`] with an explicit worker-thread count
    /// for the per-node ground-truth classification. Output is
    /// byte-identical at every thread count: the classification is
    /// sharded in node order and folded sequentially, and the hop BFS
    /// stays sequential (its frontier order is determinism-critical).
    ///
    /// # Panics
    ///
    /// Panics if the detection was produced for a different-sized network.
    pub fn evaluate_with(
        model: &NetworkModel,
        detection: &BoundaryDetection,
        parallelism: Parallelism,
    ) -> Self {
        assert_eq!(detection.boundary.len(), model.len(), "detection/model size mismatch");
        let truth_flags = model.is_surface();
        let found_flags = &detection.boundary;

        let nodes: Vec<usize> = (0..model.len()).collect();
        let classes = par_map(parallelism, &nodes, |&i| (found_flags[i], truth_flags[i]));
        let mut correct_nodes = Vec::new();
        let mut mistaken_nodes = Vec::new();
        let mut missing_nodes = Vec::new();
        for (i, class) in classes.into_iter().enumerate() {
            match class {
                (true, true) => correct_nodes.push(i),
                (true, false) => mistaken_nodes.push(i),
                (false, true) => missing_nodes.push(i),
                (false, false) => {}
            }
        }

        // Hop distances to the nearest correct node, over the full topology
        // (the paper measures plain hop distance in the network).
        let hops = if correct_nodes.is_empty() {
            vec![None; model.len()]
        } else {
            multi_source_hops(model.topology(), &correct_nodes, |_| true)
                .into_iter()
                .map(|o| o.map(|(d, _)| d))
                .collect()
        };
        let mut mistaken_hops = HopHistogram::default();
        for &n in &mistaken_nodes {
            mistaken_hops.record(hops[n]);
        }
        let mut missing_hops = HopHistogram::default();
        for &n in &missing_nodes {
            missing_hops.record(hops[n]);
        }

        DetectionStats {
            truth: truth_flags.iter().filter(|&&b| b).count(),
            found: found_flags.iter().filter(|&&b| b).count(),
            correct: correct_nodes.len(),
            mistaken: mistaken_nodes.len(),
            missing: missing_nodes.len(),
            mistaken_hops,
            missing_hops,
        }
    }

    /// Fraction of ground-truth nodes found correctly (recall).
    pub fn recall(&self) -> f64 {
        if self.truth == 0 {
            return 1.0;
        }
        self.correct as f64 / self.truth as f64
    }

    /// Fraction of reported nodes that are genuine (precision).
    pub fn precision(&self) -> f64 {
        if self.found == 0 {
            return 1.0;
        }
        self.correct as f64 / self.found as f64
    }
}

impl std::fmt::Display for DetectionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "truth {} | found {} correct {} mistaken {} missing {} | recall {:.1}% precision {:.1}%",
            self.truth,
            self.found,
            self.correct,
            self.mistaken,
            self.missing,
            100.0 * self.recall(),
            100.0 * self.precision()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use crate::detector::BoundaryDetector;
    use ballfit_geom::Vec3;
    use ballfit_netgen::builder::NetworkBuilder;
    use ballfit_netgen::scenario::Scenario;
    use ballfit_wsn::Topology;

    #[test]
    fn histogram_bookkeeping() {
        let mut h = HopHistogram::default();
        h.record(Some(1));
        h.record(Some(2));
        h.record(Some(2));
        h.record(Some(3));
        h.record(Some(7));
        h.record(None);
        assert_eq!(h.one, 1);
        assert_eq!(h.two, 2);
        assert_eq!(h.three, 1);
        assert_eq!(h.beyond, 2);
        assert_eq!(h.total(), 6);
        let (f1, f2, f3, fb) = h.fractions();
        assert!((f1 - 1.0 / 6.0).abs() < 1e-12);
        assert!((f2 - 2.0 / 6.0).abs() < 1e-12);
        assert!((f3 - 1.0 / 6.0).abs() < 1e-12);
        assert!((fb - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(HopHistogram::default().fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    /// Regression: a correctly-detected node (0 hops from the nearest
    /// correct node — it *is* one) must never pollute the locality
    /// histograms. The old code folded `Some(0)` into the 1-hop bucket.
    #[test]
    fn zero_hops_is_excluded_from_locality_histograms() {
        let mut h = HopHistogram::default();
        h.record(Some(0));
        assert_eq!(h, HopHistogram::default(), "Some(0) must be a no-op");
        assert_eq!(h.total(), 0);
        h.record(Some(1));
        h.record(Some(0));
        assert_eq!(h.one, 1, "Some(0) must not land in the 1-hop bucket");
        assert_eq!(h.total(), 1);
    }

    /// Hand-built 5-node line: truth = {0, 4}; detected = {0, 2}.
    #[test]
    fn stats_on_a_crafted_case() {
        let positions = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.9, 0.0, 0.0),
            Vec3::new(1.8, 0.0, 0.0),
            Vec3::new(2.7, 0.0, 0.0),
            Vec3::new(3.6, 0.0, 0.0),
        ];
        let topo = Topology::from_positions(&positions, 1.0);
        let model = ballfit_netgen::model::NetworkModel::from_parts(
            Scenario::SolidBox,
            0,
            positions,
            vec![true, false, false, false, true],
            1.0,
            topo,
        );
        let detection = BoundaryDetection {
            candidates: vec![true, false, true, false, false],
            boundary: vec![true, false, true, false, false],
            groups: vec![vec![0], vec![2]],
            balls_tested: 0,
            degenerate_nodes: vec![],
        };
        let stats = DetectionStats::evaluate(&model, &detection);
        assert_eq!(stats.truth, 2);
        assert_eq!(stats.found, 2);
        assert_eq!(stats.correct, 1); // node 0
        assert_eq!(stats.mistaken, 1); // node 2, two hops from correct node 0
        assert_eq!(stats.missing, 1); // node 4, four hops from node 0
        assert_eq!(stats.mistaken_hops.two, 1);
        assert_eq!(stats.missing_hops.beyond, 1);
        assert!((stats.recall() - 0.5).abs() < 1e-12);
        assert!((stats.precision() - 0.5).abs() < 1e-12);
        assert!(stats.to_string().contains("recall 50.0%"));
    }

    #[test]
    fn evaluate_is_thread_count_invariant() {
        let model = NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(250)
            .interior_nodes(400)
            .target_degree(15.0)
            .seed(33)
            .build()
            .unwrap();
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        let base = DetectionStats::evaluate_with(&model, &detection, Parallelism::sequential());
        for threads in [2, 4, 8] {
            let stats =
                DetectionStats::evaluate_with(&model, &detection, Parallelism::threads(threads));
            assert_eq!(stats, base, "threads = {threads}");
        }
    }

    #[test]
    fn perfect_detection_scores_perfectly() {
        let model = NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(250)
            .interior_nodes(400)
            .target_degree(15.0)
            .seed(31)
            .build()
            .unwrap();
        let fake = BoundaryDetection {
            candidates: model.is_surface().to_vec(),
            boundary: model.is_surface().to_vec(),
            groups: vec![model.surface_indices()],
            balls_tested: 0,
            degenerate_nodes: vec![],
        };
        let stats = DetectionStats::evaluate(&model, &fake);
        assert_eq!(stats.mistaken, 0);
        assert_eq!(stats.missing, 0);
        assert_eq!(stats.recall(), 1.0);
        assert_eq!(stats.precision(), 1.0);
    }

    #[test]
    fn real_detection_has_localized_errors() {
        let model = NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(300)
            .interior_nodes(500)
            .target_degree(16.0)
            .seed(32)
            .build()
            .unwrap();
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        let stats = DetectionStats::evaluate(&model, &detection);
        assert!(stats.recall() > 0.85, "{stats}");
        // The paper's locality claim: mistaken nodes sit within ≤3 hops of
        // correctly identified boundary nodes.
        if stats.mistaken > 0 {
            let (f1, f2, f3, _) = stats.mistaken_hops.fractions();
            assert!(
                f1 + f2 + f3 > 0.9,
                "mistaken nodes not near the boundary: {:?}",
                stats.mistaken_hops
            );
        }
    }
}
