//! Chaos runtime: combined fault + churn execution with adaptive
//! recovery, graceful degradation, and a convergence watchdog.
//!
//! The robustness harness ([`crate::protocols`]) runs each hardened
//! protocol against a static topology, and the churn harness
//! ([`crate::incremental`]) mutates the topology under a perfect radio.
//! This module interleaves both stressors epoch by epoch: a
//! [`ballfit_wsn::churn::ChurnPlan`] mutates the network while a fresh
//! [`FaultPlan`] (derived deterministically from the epoch index) drops,
//! duplicates, delays, and crashes the epoch's protocol traffic. An
//! [`IncrementalDetector`] follows every topology event as the exactness
//! oracle, so each epoch's distributed detection can be judged node by
//! node.
//!
//! The result is never all-or-nothing: instead of
//! [`crate::protocols::ConvergenceFailure`], each epoch yields a typed
//! [`DetectionOutcome`] — [`DetectionOutcome::Exact`] when every live
//! node agrees with the oracle, or [`DetectionOutcome::Degraded`] with
//! the achieved coverage, the nodes left behind, and a [`DegradeCause`]
//! assigned by the convergence watchdog (partition, crash quorum, retry
//! budget exhaustion, or round-budget truncation, in that priority
//! order). The watchdog records its verdict as a
//! [`ballfit_obs::TraceEvent::Verdict`] inside a `"watchdog"` span, so
//! trace summaries count degraded epochs without re-deriving them.
//!
//! Everything is seeded: the same `(model, config, position_seed)`
//! triple replays to a byte-identical [`ChaosReport`] — including the
//! resolved [`TopologyEvent`] log, which is what the crash-recovery pin
//! replays after restoring a [`ballfit_wsn::churn::TopologySnapshot`] +
//! [`crate::incremental::DetectorCheckpoint`] pair mid-run.

use std::collections::VecDeque;

use ballfit_netgen::churn::ChurnDriver;
use ballfit_netgen::model::NetworkModel;
use ballfit_netgen::GenError;
use ballfit_obs::{Trace, TraceEvent};
use ballfit_par::Parallelism;
use ballfit_wsn::churn::{ChurnPlan, DynamicTopology, TopologyEvent};
use ballfit_wsn::faults::{Crash, FaultPlan, SplitMix64, Xoshiro256PlusPlus};
use ballfit_wsn::flood::{HardenedFragmentFlood, REPEAT_GAP_CAP};
use ballfit_wsn::sim::Simulator;
use ballfit_wsn::NodeId;

use crate::config::{CoordinateSource, DetectorConfig};
use crate::detector::BoundaryDetection;
use crate::incremental::{BoundaryDiff, IncrementalDetector};
use crate::protocols::{Backoff, HardenedGrouping, HardenedUbf, UbfProtocol};
use crate::view::NetView;

/// Why a chaos epoch degraded, assigned by the convergence watchdog in
/// priority order (a partitioned epoch is reported as partitioned even
/// if retry budgets also ran out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DegradeCause {
    /// Churn or permanent crashes disconnected the live network: some
    /// nodes were unreachable by any protocol traffic.
    Partition,
    /// At least a quarter of the live population was permanently crashed
    /// for the whole epoch.
    CrashQuorum,
    /// Retry budgets ran out before every exchange was confirmed — the
    /// repair traffic the backoff schedule allows was not enough.
    RetryExhausted,
    /// A protocol run hit its hang-stop round budget without quiescing.
    Truncated,
}

impl DegradeCause {
    /// The stable string form used by [`TraceEvent::Verdict`] records.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeCause::Partition => "partition",
            DegradeCause::CrashQuorum => "crash-quorum",
            DegradeCause::RetryExhausted => "retry-exhausted",
            DegradeCause::Truncated => "truncated",
        }
    }
}

/// The graded result of one chaos epoch's distributed detection,
/// replacing the all-or-nothing convergence error: a degraded epoch
/// still reports the boundary it *did* establish, how much of the live
/// network it covers, and why the rest was missed.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DetectionOutcome {
    /// Every live node's boundary flag and group label match the oracle,
    /// and every protocol run quiesced.
    Exact {
        /// Live boundary nodes, ascending.
        boundary: Vec<NodeId>,
    },
    /// Some live nodes could not be brought into agreement with the
    /// oracle (or a run was truncated); the boundary below is what the
    /// distributed execution actually established.
    Degraded {
        /// Live nodes the distributed run flagged as boundary, ascending.
        boundary: Vec<NodeId>,
        /// Fraction of live nodes in full agreement with the oracle.
        coverage: f64,
        /// Live nodes whose boundary flag or group label disagrees with
        /// the oracle, ascending.
        unreached: Vec<NodeId>,
        /// The watchdog's verdict on why.
        cause: DegradeCause,
    },
}

impl DetectionOutcome {
    /// `true` for [`DetectionOutcome::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, DetectionOutcome::Exact { .. })
    }

    /// The boundary the distributed execution established (exact or not).
    pub fn boundary(&self) -> &[NodeId] {
        match self {
            DetectionOutcome::Exact { boundary } | DetectionOutcome::Degraded { boundary, .. } => {
                boundary
            }
        }
    }

    /// Fraction of live nodes in agreement with the oracle (1.0 if exact).
    pub fn coverage(&self) -> f64 {
        match self {
            DetectionOutcome::Exact { .. } => 1.0,
            DetectionOutcome::Degraded { coverage, .. } => *coverage,
        }
    }

    /// The degradation cause, if any.
    pub fn cause(&self) -> Option<DegradeCause> {
        match self {
            DetectionOutcome::Exact { .. } => None,
            DetectionOutcome::Degraded { cause, .. } => Some(*cause),
        }
    }
}

/// Configuration of a chaos run: the oracle's detector settings, the
/// churn plan mutating the topology, and the per-epoch fault intensity.
///
/// Fault seeds are derived per epoch from `fault_seed`, and crash
/// victims are drawn from the *currently live* population, so the same
/// configuration replays bit-identically regardless of thread count.
///
/// For an undisturbed epoch to be judged exact, the oracle and the
/// protocol stack must compute the same per-node frames: use a
/// [`CoordinateSource::LocalMds`] source (both sides embed measured
/// distances — [`DetectorConfig::paper`] at 0% error is the usual
/// choice). Under [`CoordinateSource::GroundTruth`] the centralized
/// oracle reads positions directly while protocols can only embed
/// distance tables, so a handful of near-threshold nodes may flip and
/// register as (honest) degradation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Oracle detector configuration (also decides protocol frames).
    pub detector: DetectorConfig,
    /// The churn schedule interleaved between detection epochs.
    pub churn: ChurnPlan,
    /// Base per-transmission loss probability for every epoch's radio.
    pub loss: f64,
    /// Per-transmission duplication probability.
    pub duplication: f64,
    /// Maximum extra delivery delay in rounds.
    pub max_delay: u32,
    /// Fraction of the live population crashed each epoch.
    pub crash_fraction: f64,
    /// Round (within each protocol run) the epoch's victims go down.
    pub crash_down: usize,
    /// Round the victims recover, or `None` for epoch-permanent crashes.
    pub crash_up: Option<usize>,
    /// Base seed of the per-epoch fault streams.
    pub fault_seed: u64,
    /// Retransmission policy of the hardened executors.
    pub backoff: Backoff,
    /// Repeat count of the hardened IFF flood.
    pub flood_repeats: u32,
}

impl ChaosConfig {
    /// A chaos configuration with a perfect radio: only churn stresses
    /// the run. Crash windows default to down-at-1 / up-at-6, inside the
    /// default [`Backoff`]'s second retransmission fire.
    pub fn new(detector: DetectorConfig, churn: ChurnPlan) -> Self {
        ChaosConfig {
            detector,
            churn,
            loss: 0.0,
            duplication: 0.0,
            max_delay: 0,
            crash_fraction: 0.0,
            crash_down: 1,
            crash_up: Some(6),
            fault_seed: 0,
            backoff: Backoff::default(),
            flood_repeats: 5,
        }
    }

    /// Builder: sets the base link-loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Builder: sets the duplication probability.
    pub fn with_duplication(mut self, duplication: f64) -> Self {
        self.duplication = duplication;
        self
    }

    /// Builder: sets the maximum extra delivery delay (rounds).
    pub fn with_max_delay(mut self, max_delay: u32) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Builder: crashes `fraction` of the live population each epoch.
    pub fn with_crash_fraction(mut self, fraction: f64) -> Self {
        self.crash_fraction = fraction;
        self
    }

    /// Builder: sets the crash window (`up` = `None` for permanent).
    pub fn with_crash_window(mut self, down: usize, up: Option<usize>) -> Self {
        self.crash_down = down;
        self.crash_up = up;
        self
    }

    /// Builder: sets the base fault seed.
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }
}

/// One epoch's judged result plus its cost counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochOutcome {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Churn events applied before this epoch's detection.
    pub events: usize,
    /// Live nodes when detection ran.
    pub live: usize,
    /// Crash victims scheduled this epoch.
    pub crashed: usize,
    /// The watchdog-judged detection outcome.
    pub outcome: DetectionOutcome,
    /// Jaccard index of the live distributed vs. oracle boundary sets.
    pub jaccard: f64,
    /// Rounds the faulty protocol stack ran (all three phases).
    pub rounds: usize,
    /// Rounds the same stack runs fault-free on this topology.
    pub clean_rounds: usize,
    /// Retry budget spent: UBF retransmissions + grouping repair probes.
    pub repairs: u64,
    /// Budget-exhaustion incidents (UBF nodes + grouping edges).
    pub exhausted: u64,
}

impl EpochOutcome {
    /// Detection lag: extra rounds the faults cost over the fault-free
    /// baseline on the identical topology.
    pub fn lag(&self) -> usize {
        self.rounds.saturating_sub(self.clean_rounds)
    }
}

/// Everything a chaos run produced: per-epoch outcomes, the resolved
/// (replayable) event log with the oracle's per-event diffs, and the
/// oracle's final detection state.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// One judged outcome per epoch.
    pub epochs: Vec<EpochOutcome>,
    /// Every resolved topology event, in application order. Replaying
    /// these against a fresh [`DynamicTopology`] of the model reproduces
    /// the run's topology trajectory exactly.
    pub events: Vec<TopologyEvent>,
    /// The oracle's boundary diff for each event, index-aligned with
    /// [`ChaosReport::events`].
    pub diffs: Vec<BoundaryDiff>,
    /// The oracle's detection state after the final epoch.
    pub detection: BoundaryDetection,
}

impl ChaosReport {
    /// Number of epochs judged exact.
    pub fn exact_epochs(&self) -> usize {
        self.epochs.iter().filter(|e| e.outcome.is_exact()).count()
    }

    /// The worst per-epoch coverage (1.0 if every epoch was exact).
    pub fn min_coverage(&self) -> f64 {
        self.epochs.iter().map(|e| e.outcome.coverage()).fold(1.0, f64::min)
    }

    /// Mean per-epoch boundary Jaccard index (1.0 for an epoch-less run).
    pub fn mean_jaccard(&self) -> f64 {
        if self.epochs.is_empty() {
            return 1.0;
        }
        self.epochs.iter().map(|e| e.jaccard).sum::<f64>() / self.epochs.len() as f64
    }

    /// Total detection lag across all epochs.
    pub fn total_lag(&self) -> usize {
        self.epochs.iter().map(EpochOutcome::lag).sum()
    }
}

/// Decorrelates the per-epoch fault streams from the base seed.
fn epoch_seed(base: u64, epoch: usize) -> u64 {
    SplitMix64::new(base ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// Builds the epoch's fault plan: the configured loss/duplication/delay
/// knobs plus `crash_fraction` of the *live* population (partial
/// Fisher–Yates over `live`, so dead churn slots are never "crashed").
///
/// Public so long-lived front ends (`ballfit-serve`'s `inject` request)
/// can derive the identical per-epoch fault stream a [`run_chaos`]
/// schedule would: the plan is a pure function of
/// `(config, epoch, live)`.
pub fn epoch_plan(config: &ChaosConfig, epoch: usize, live: &[NodeId]) -> FaultPlan {
    let seed = epoch_seed(config.fault_seed, epoch);
    let mut plan = FaultPlan::lossy(seed, config.loss)
        .with_duplication(config.duplication)
        .with_max_delay(config.max_delay);
    let count = ((config.crash_fraction * live.len() as f64).round() as usize).min(live.len());
    if count > 0 {
        let mut pool = live.to_vec();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed ^ 0x94D0_49BB_1331_11EB);
        let mut crashes = Vec::with_capacity(count);
        for i in 0..count {
            let j = i + rng.gen_inclusive((pool.len() - 1 - i) as u64) as usize;
            pool.swap(i, j);
            crashes.push(Crash {
                node: pool[i],
                down_at: config.crash_down,
                up_at: config.crash_up,
            });
        }
        plan = plan.with_crashes(crashes);
    }
    plan
}

/// What one pass of the distributed stack produced on a fixed topology.
struct StackRun {
    boundary: Vec<bool>,
    labels: Vec<Option<NodeId>>,
    rounds: usize,
    repairs: u64,
    exhausted: u64,
    quiescent: bool,
}

/// Runs the full hardened stack (UBF → IFF flood → grouping) once on
/// the dynamic topology under `plan`. Distance tables carry true
/// distances (see [`ChaosConfig`]); each phase chains into the next, so
/// degradation compounds exactly as it would in a deployment.
fn run_stack(
    dynamic: &DynamicTopology,
    config: &ChaosConfig,
    plan: &FaultPlan,
    trace: &mut Trace,
) -> StackRun {
    let topo = dynamic.topology();
    let positions = dynamic.positions();
    let n = topo.len();
    let backoff = config.backoff;
    let det = &config.detector;

    // Phase 1: hardened UBF table exchange over the churned topology.
    // Distance tables go through the same measurement oracle the
    // centralized frames use, so the oracle and the distributed stack
    // judge the same inputs (at zero ranging error: true distances).
    let view = NetView::new(topo, positions, dynamic.radio_range());
    let ranging = match &det.coordinates {
        CoordinateSource::GroundTruth => None,
        CoordinateSource::LocalMds { error, noise_seed, .. } => {
            Some(view.oracle(*error, *noise_seed))
        }
    };
    let measure = |i: NodeId, j: NodeId| {
        let d = view.true_distance(i, j);
        ranging.as_ref().map_or(d, |o| o.measure(i, j, d))
    };
    let states: Vec<HardenedUbf> = (0..n)
        .map(|i| {
            let table =
                topo.neighbors(i).iter().map(|&j| (j as NodeId, measure(i, j as NodeId))).collect();
            HardenedUbf::new(UbfProtocol::new(i, table), backoff)
        })
        .collect();
    let mut ubf_sim = Simulator::new(topo, |id| states[id].clone());
    let ubf_budget = 4 + backoff.worst_case_span() + plan.round_slack();
    trace.open("hardened-ubf");
    let ubf_stats = ubf_sim.run_with_faults_traced(ubf_budget, plan, trace);
    for node in 0..n {
        let resends = ubf_sim.node(node).retransmissions();
        if resends > 0 {
            trace.event(TraceEvent::Retransmits { node, resends });
        }
    }
    trace.close();
    let candidates: Vec<bool> = (0..n)
        .map(|i| ubf_sim.node(i).decide(dynamic.radio_range(), &det.ubf, &det.coordinates))
        .collect();
    let mut repairs: u64 = (0..n).map(|i| ubf_sim.node(i).retransmissions()).sum();
    let mut exhausted = (0..n).filter(|&i| ubf_sim.node(i).exhausted()).count() as u64;

    // Phase 2: hardened IFF flood over the *distributed* candidate set.
    let ttl = det.iff.ttl;
    let repeats = config.flood_repeats.max(1);
    let mut flood_sim =
        Simulator::new(topo, |id| HardenedFragmentFlood::new(candidates[id], ttl, repeats));
    let flood_budget = (repeats as usize + 1) * (REPEAT_GAP_CAP as usize + 1)
        + ttl as usize
        + 4
        + plan.round_slack();
    trace.open("hardened-iff");
    let flood_stats = flood_sim.run_with_faults_traced(flood_budget, plan, trace);
    trace.close();
    let boundary: Vec<bool> = (0..n)
        .map(|i| candidates[i] && flood_sim.node(i).fragment_size() >= det.iff.theta)
        .collect();

    // Phase 3: hardened grouping over the distributed boundary.
    let mut group_sim = Simulator::new(topo, |id| HardenedGrouping::new(id, boundary[id], backoff));
    let group_budget = 2 * n + 2 * backoff.worst_case_span() + plan.round_slack() + 8;
    trace.open("hardened-grouping");
    let group_stats = group_sim.run_with_faults_traced(group_budget, plan, trace);
    for node in 0..n {
        let resends = group_sim.node(node).repairs();
        if resends > 0 {
            trace.event(TraceEvent::Retransmits { node, resends });
        }
    }
    trace.close();
    let labels: Vec<Option<NodeId>> = (0..n).map(|i| group_sim.node(i).label()).collect();
    repairs += (0..n).map(|i| group_sim.node(i).repairs()).sum::<u64>();
    exhausted += (0..n).map(|i| group_sim.node(i).exhausted()).sum::<u64>();

    StackRun {
        boundary,
        labels,
        rounds: ubf_stats.rounds + flood_stats.rounds + group_stats.rounds,
        repairs,
        exhausted,
        quiescent: ubf_stats.quiescent && flood_stats.quiescent && group_stats.quiescent,
    }
}

/// `true` if the live population minus the epoch's permanent crash
/// victims is disconnected — protocol traffic could not have reached
/// everyone no matter how generous the retry budgets.
fn is_partitioned(dynamic: &DynamicTopology, perm_down: &[bool]) -> bool {
    let topo = dynamic.topology();
    let reachable: Vec<NodeId> =
        dynamic.live_nodes().into_iter().filter(|&v| !perm_down[v]).collect();
    let Some(&start) = reachable.first() else {
        return false;
    };
    let mut seen = vec![false; topo.len()];
    seen[start] = true;
    let mut queue = VecDeque::from([start]);
    while let Some(u) = queue.pop_front() {
        for &v in topo.neighbors(u) {
            let v = v as NodeId;
            if !seen[v] && dynamic.is_live(v) && !perm_down[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    reachable.iter().any(|&v| !seen[v])
}

/// One epoch's watchdog-judged detection verdict, as produced by
/// [`run_epoch`]: the graded outcome plus the cost counters that price
/// it. [`EpochOutcome`] wraps this with the schedule-level context
/// (epoch index, applied events, population counts) that only the full
/// [`run_chaos`] loop knows.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochVerdict {
    /// The watchdog-judged detection outcome.
    pub outcome: DetectionOutcome,
    /// Jaccard index of the live distributed vs. oracle boundary sets.
    pub jaccard: f64,
    /// Rounds the faulty protocol stack ran (all three phases).
    pub rounds: usize,
    /// Rounds the same stack runs fault-free on this topology.
    pub clean_rounds: usize,
    /// Retry budget spent: UBF retransmissions + grouping repair probes.
    pub repairs: u64,
    /// Budget-exhaustion incidents (UBF nodes + grouping edges).
    pub exhausted: u64,
}

impl EpochVerdict {
    /// Detection lag: extra rounds the faults cost over the fault-free
    /// baseline on the identical topology.
    pub fn lag(&self) -> usize {
        self.rounds.saturating_sub(self.clean_rounds)
    }
}

/// Runs one chaos epoch's detection on a fixed topology: the hardened
/// stack under `plan`, the fault-free baseline that prices the lag, and
/// the convergence watchdog judging the distributed result against
/// `oracle` (which must be exact for the current state of `dynamic`).
/// Records the verdict as a [`TraceEvent::Verdict`] inside a
/// `"watchdog"` span, exactly as the [`run_chaos`] epoch loop does —
/// this *is* that loop's detection step, factored out so a long-lived
/// service can judge epochs one `inject` request at a time.
pub fn run_epoch(
    dynamic: &DynamicTopology,
    config: &ChaosConfig,
    plan: &FaultPlan,
    oracle: &IncrementalDetector,
    trace: &mut Trace,
) -> EpochVerdict {
    let live = dynamic.live_nodes();
    let run = run_stack(dynamic, config, plan, trace);
    let clean = run_stack(dynamic, config, &FaultPlan::none(), &mut Trace::disabled());

    let mut perm_down = vec![false; dynamic.len()];
    for c in &plan.crashes {
        if c.up_at.is_none() {
            perm_down[c.node] = true;
        }
    }
    let perm_crashed = perm_down.iter().filter(|d| **d).count();
    let oracle_boundary = oracle.boundary();
    let mut oracle_label: Vec<Option<NodeId>> = vec![None; dynamic.len()];
    for group in oracle.groups() {
        for &m in group {
            oracle_label[m] = Some(group[0]);
        }
    }
    let mut unreached = Vec::new();
    let (mut inter, mut union) = (0usize, 0usize);
    for &v in &live {
        let ours = run.boundary[v];
        let theirs = oracle_boundary[v];
        inter += usize::from(ours && theirs);
        union += usize::from(ours || theirs);
        if ours != theirs || (theirs && run.labels[v] != oracle_label[v]) {
            unreached.push(v);
        }
    }
    let coverage =
        if live.is_empty() { 1.0 } else { 1.0 - unreached.len() as f64 / live.len() as f64 };
    let jaccard = if union == 0 { 1.0 } else { inter as f64 / union as f64 };
    let boundary: Vec<NodeId> = live.iter().copied().filter(|&v| run.boundary[v]).collect();
    let exact = unreached.is_empty() && run.quiescent;
    let outcome = if exact {
        DetectionOutcome::Exact { boundary }
    } else {
        let cause = if is_partitioned(dynamic, &perm_down) {
            DegradeCause::Partition
        } else if !live.is_empty() && 4 * perm_crashed >= live.len() {
            DegradeCause::CrashQuorum
        } else if run.exhausted > 0 {
            DegradeCause::RetryExhausted
        } else if !run.quiescent {
            DegradeCause::Truncated
        } else {
            // Residual disagreement with budgets intact: evidence was
            // lost in flight — charge it to the repair layer.
            DegradeCause::RetryExhausted
        };
        DetectionOutcome::Degraded { boundary, coverage, unreached, cause }
    };
    trace.open("watchdog");
    trace.event(TraceEvent::Verdict {
        exact,
        cause: outcome.cause().map_or("none", DegradeCause::as_str),
        unreached: match &outcome {
            DetectionOutcome::Exact { .. } => 0,
            DetectionOutcome::Degraded { unreached, .. } => unreached.len() as u64,
        },
        coverage_ppm: (outcome.coverage() * 1_000_000.0).round() as u64,
    });
    trace.close();

    EpochVerdict {
        outcome,
        jaccard,
        rounds: run.rounds,
        clean_rounds: clean.rounds,
        repairs: run.repairs,
        exhausted: run.exhausted,
    }
}

/// Runs the full chaos schedule: per epoch, the churn events are
/// applied (oracle kept exact event by event), then the hardened
/// detection stack runs under that epoch's derived fault plan and the
/// watchdog judges the result against the oracle. See the module docs.
///
/// # Errors
///
/// [`GenError`] if a churn join cannot sample a position inside the
/// deployment shape (rejection-sampler exhaustion).
pub fn run_chaos(
    model: &NetworkModel,
    config: &ChaosConfig,
    position_seed: u64,
    parallelism: Parallelism,
) -> Result<ChaosReport, GenError> {
    run_chaos_traced(model, config, position_seed, parallelism, &mut Trace::disabled())
}

/// [`run_chaos`] with structured tracing: the run opens a `"chaos"`
/// span holding one `"chaos-epoch"` span per epoch, which in turn holds
/// the oracle's `"churn-event"` spans, the hardened protocol spans, and
/// the `"watchdog"` span carrying the epoch's
/// [`TraceEvent::Verdict`]. With [`Trace::disabled`] this *is*
/// [`run_chaos`].
///
/// # Errors
///
/// [`GenError`] as for [`run_chaos`].
pub fn run_chaos_traced(
    model: &NetworkModel,
    config: &ChaosConfig,
    position_seed: u64,
    parallelism: Parallelism,
    trace: &mut Trace,
) -> Result<ChaosReport, GenError> {
    config.churn.validate();
    let schedule = config.churn.schedule(model.len());
    let mut driver = ChurnDriver::new(model, position_seed);
    let mut oracle =
        IncrementalDetector::new_with_parallelism(config.detector, driver.dynamic(), parallelism);

    let mut events = Vec::new();
    let mut diffs = Vec::new();
    let mut epochs = Vec::new();
    let mut cursor = 0usize;
    trace.open("chaos");
    for epoch in 0..config.churn.epochs {
        trace.open("chaos-epoch");

        // 1. Churn: apply this epoch's events, oracle tracking each one.
        let mut applied = 0usize;
        while cursor < schedule.len() && schedule[cursor].epoch == epoch {
            let (event, delta) = driver.step(&schedule[cursor])?;
            let diff = oracle.apply_traced(driver.dynamic(), &delta, trace);
            events.push(event);
            diffs.push(diff);
            applied += 1;
            cursor += 1;
        }

        // 2–3. Faults + watchdog: derive the epoch's radio, run the stack
        // and the fault-free baseline under it, and judge the result
        // against the oracle.
        let dynamic = driver.dynamic();
        let live = dynamic.live_nodes();
        let plan = epoch_plan(config, epoch, &live);
        plan.validate();
        let verdict = run_epoch(dynamic, config, &plan, &oracle, trace);

        epochs.push(EpochOutcome {
            epoch,
            events: applied,
            live: live.len(),
            crashed: plan.crashes.len(),
            outcome: verdict.outcome,
            jaccard: verdict.jaccard,
            rounds: verdict.rounds,
            clean_rounds: verdict.clean_rounds,
            repairs: verdict.repairs,
            exhausted: verdict.exhausted,
        });
        trace.close();
    }
    trace.close();
    Ok(ChaosReport { epochs, events, diffs, detection: oracle.detection() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballfit_netgen::builder::NetworkBuilder;
    use ballfit_netgen::scenario::Scenario;

    fn model() -> NetworkModel {
        NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(120)
            .interior_nodes(180)
            .target_degree(12.0)
            .require_connected(false)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn perfect_radio_static_epochs_are_exact_with_zero_lag() {
        let model = model();
        let churn = ChurnPlan::none().with_epochs(2);
        let config = ChaosConfig::new(DetectorConfig::paper(0, 0), churn);
        let report =
            run_chaos(&model, &config, 1, Parallelism::sequential()).expect("no joins to sample");
        assert_eq!(report.epochs.len(), 2);
        assert!(report.events.is_empty());
        for e in &report.epochs {
            assert!(e.outcome.is_exact(), "epoch {}: {:?}", e.epoch, e.outcome.cause());
            assert_eq!(e.jaccard, 1.0);
            assert_eq!(e.repairs, 0, "fault-free epochs must spend no retry budget");
            assert_eq!(e.lag(), 0, "fault-free epochs must match the clean baseline");
        }
        assert_eq!(report.exact_epochs(), 2);
        assert_eq!(report.min_coverage(), 1.0);
        assert!(!report.detection.groups.is_empty());
    }

    #[test]
    fn heavy_chaos_degrades_gracefully_and_replays_identically() {
        let model = model();
        let churn = ChurnPlan::none()
            .with_seed(9)
            .with_epochs(2)
            .with_join_rate(0.02)
            .with_leave_rate(0.02)
            .with_move_rate(0.05)
            .with_max_drift(model.radio_range());
        let config = ChaosConfig::new(DetectorConfig::paper(0, 0), churn)
            .with_loss(0.3)
            .with_duplication(0.05)
            .with_max_delay(1)
            .with_crash_fraction(0.2)
            .with_crash_window(1, None)
            .with_fault_seed(7);
        let a = run_chaos(&model, &config, 3, Parallelism::sequential()).unwrap();
        let b = run_chaos(&model, &config, 3, Parallelism::default()).unwrap();
        assert_eq!(a, b, "same seeds must replay bit-identically at any thread count");
        assert!(!a.events.is_empty(), "churn must have produced events");
        assert_eq!(a.events.len(), a.diffs.len());
        // Permanent crashes freeze a fifth of the network mid-exchange:
        // the watchdog must degrade (never panic or hang) with a cause.
        let degraded: Vec<_> = a.epochs.iter().filter(|e| !e.outcome.is_exact()).collect();
        assert!(!degraded.is_empty(), "20% permanent crashes cannot stay exact");
        for e in &degraded {
            assert!(e.outcome.cause().is_some());
            assert!(e.outcome.coverage() < 1.0);
            assert!(e.outcome.coverage() >= 0.0);
        }
        assert!(a.min_coverage() < 1.0);
    }
}
