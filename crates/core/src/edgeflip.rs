//! Step V: edge flips toward a 2-manifold.
//!
//! "To ensure the mesh to be a 2-manifold, each virtual edge must be
//! associated with two triangles. [...] there still possibly exist edges
//! with three triangular faces, formed with three corresponding nodes C,
//! D, and E. [...] Edge AB is removed; two shortest edges are added
//! between the corresponding nodes." (Sec. III, step V; Fig. 5)
//!
//! With more than three apexes (rare, but possible on noisy meshes) the
//! same idea generalizes: remove the over-full edge and reconnect the
//! apexes by their minimum spanning tree under the same length measure —
//! for exactly three apexes that is precisely "the two shortest of
//! {CD, DE, CE}".

use std::collections::{BTreeMap, BTreeSet};

use ballfit_wsn::NodeId;

use crate::cdg::LandmarkEdge;

/// One performed flip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlipRecord {
    /// The removed over-full edge.
    pub removed: LandmarkEdge,
    /// The apex landmarks that shared it.
    pub apexes: Vec<NodeId>,
    /// The edges added to reconnect the apexes.
    pub added: Vec<LandmarkEdge>,
}

/// Result of the flip pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlipOutcome {
    /// Final edge set, sorted.
    pub edges: Vec<LandmarkEdge>,
    /// Flips performed, in order.
    pub flips: Vec<FlipRecord>,
    /// `true` if no over-full edge remains.
    pub converged: bool,
}

fn normalize(a: NodeId, b: NodeId) -> LandmarkEdge {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Common neighbors of `a` and `b` in the adjacency map.
fn apexes_of(adj: &BTreeMap<NodeId, BTreeSet<NodeId>>, a: NodeId, b: NodeId) -> Vec<NodeId> {
    match (adj.get(&a), adj.get(&b)) {
        (Some(na), Some(nb)) => na.intersection(nb).copied().collect(),
        _ => Vec::new(),
    }
}

/// Apexes of `(a, b)` whose triangle is *empty*: no further vertex is
/// adjacent to all three corners. An empty triangle is a genuine surface
/// face; a non-empty one spans a region subdivided by interior landmarks
/// and must be neither flipped on nor emitted as a face.
fn face_apexes_of(adj: &BTreeMap<NodeId, BTreeSet<NodeId>>, a: NodeId, b: NodeId) -> Vec<NodeId> {
    // A vertex adjacent to a, b and c is, in particular, another apex of
    // (a, b) adjacent to c.
    let apexes = apexes_of(adj, a, b);
    apexes
        .iter()
        .copied()
        .filter(|&c| {
            !apexes.iter().any(|&d| d != c && adj.get(&c).is_some_and(|nc| nc.contains(&d)))
        })
        .collect()
}

/// Minimum spanning tree over `apexes` under `length`, as normalized
/// edges (Prim's algorithm; apex counts are tiny).
fn apex_spanning_tree<L: FnMut(NodeId, NodeId) -> f64>(
    apexes: &[NodeId],
    mut length: L,
) -> Vec<LandmarkEdge> {
    if apexes.len() < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![apexes[0]];
    let mut rest: Vec<NodeId> = apexes[1..].to_vec();
    let mut out = Vec::new();
    while !rest.is_empty() {
        let mut best: Option<(f64, LandmarkEdge, usize)> = None;
        for (ri, &r) in rest.iter().enumerate() {
            for &t in &in_tree {
                let len = length(t, r);
                let edge = normalize(t, r);
                let cand = (len, edge, ri);
                let better = match &best {
                    None => true,
                    Some((bl, be, _)) => len < *bl || (len == *bl && edge < *be),
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        let (_, edge, ri) = best.expect("non-empty rest");
        out.push(edge);
        in_tree.push(rest.remove(ri));
    }
    out
}

/// Repeatedly removes edges bordering three or more triangles, replacing
/// each with the apex spanning tree, until convergence or until
/// `max_flips` individual flips have been performed. Triangles are counted
/// as raw 3-cliques (the paper's local signaling); use
/// [`flip_to_manifold_filtered`] to refine which cliques count as faces.
///
/// `length(a, b)` measures candidate edges (the pipeline uses hop distance
/// over the boundary subgraph — the algorithm is connectivity-only).
pub fn flip_to_manifold<L: FnMut(NodeId, NodeId) -> f64>(
    edges: &[LandmarkEdge],
    max_flips: usize,
    length: L,
) -> FlipOutcome {
    flip_scan(edges, max_flips, length, false)
}

/// [`flip_to_manifold`] with the empty-triangle face rule of [`faces_of`]:
/// only edges bordering three or more *empty* cliques flip. This is what
/// the surface builder runs — raw-clique counting cascades on sparse
/// networks where large non-face cliques abound.
pub fn flip_to_manifold_empty_faces<L: FnMut(NodeId, NodeId) -> f64>(
    edges: &[LandmarkEdge],
    max_flips: usize,
    length: L,
) -> FlipOutcome {
    // Rebuild adjacency inside the filter: the filter only sees raw
    // apexes, and emptiness needs the evolving edge set. Rather than
    // duplicate state, flip on the scan's own adjacency via the dedicated
    // scan below.
    flip_scan(edges, max_flips, length, true)
}

/// Like [`flip_to_manifold`], but a `face_filter` decides which of an
/// edge's clique apexes form genuine *faces*; only edges with three or
/// more face apexes are flipped (e.g. a geometric subdivision filter).
pub fn flip_to_manifold_filtered<L, F>(
    edges: &[LandmarkEdge],
    max_flips: usize,
    mut length: L,
    mut face_filter: F,
) -> FlipOutcome
where
    L: FnMut(NodeId, NodeId) -> f64,
    F: FnMut(LandmarkEdge, &[NodeId]) -> Vec<NodeId>,
{
    flip_impl(edges, max_flips, &mut length, &mut |adj, a, b| {
        face_filter((a, b), &apexes_of(adj, a, b))
    })
}

fn flip_scan<L: FnMut(NodeId, NodeId) -> f64>(
    edges: &[LandmarkEdge],
    max_flips: usize,
    mut length: L,
    empty_faces: bool,
) -> FlipOutcome {
    flip_impl(edges, max_flips, &mut length, &mut |adj, a, b| {
        if empty_faces {
            face_apexes_of(adj, a, b)
        } else {
            apexes_of(adj, a, b)
        }
    })
}

fn flip_impl(
    edges: &[LandmarkEdge],
    max_flips: usize,
    length: &mut dyn FnMut(NodeId, NodeId) -> f64,
    apex_provider: &mut dyn FnMut(
        &BTreeMap<NodeId, BTreeSet<NodeId>>,
        NodeId,
        NodeId,
    ) -> Vec<NodeId>,
) -> FlipOutcome {
    let mut adj: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().insert(b);
        adj.entry(b).or_default().insert(a);
    }
    let mut flips = Vec::new();
    // The paper's step V is detect-then-transform: over-full edges are
    // found by local signaling *once*, then each is flipped. Restricting
    // flips to that initial set (instead of re-scanning after every flip)
    // prevents flip cascades from shredding sparse meshes — edges created
    // by a flip are never themselves flipped in the same pass.
    let mut initial: Vec<LandmarkEdge> = Vec::new();
    for (&a, nbrs) in &adj {
        for &b in nbrs.range((a + 1)..) {
            if apex_provider(&adj, a, b).len() >= 3 {
                initial.push((a, b));
            }
        }
    }
    // Removed edges must never be re-introduced by a later apex
    // reconnection.
    let mut banned: BTreeSet<LandmarkEdge> = BTreeSet::new();
    for (a, b) in initial {
        if flips.len() >= max_flips {
            break;
        }
        // Re-check: an earlier flip may have already resolved this edge.
        if !adj.get(&a).is_some_and(|n| n.contains(&b)) {
            continue;
        }
        let apexes = apex_provider(&adj, a, b);
        if apexes.len() < 3 {
            continue;
        }
        // Remove AB and ban it from ever returning.
        adj.get_mut(&a).expect("endpoint exists").remove(&b);
        adj.get_mut(&b).expect("endpoint exists").remove(&a);
        banned.insert((a, b));
        // Reconnect apexes with their spanning tree (new, un-banned edges
        // only; banned pairs are priced out of the tree).
        let tree = apex_spanning_tree(&apexes, |c, d| {
            if banned.contains(&normalize(c, d)) {
                f64::INFINITY
            } else {
                length(c, d)
            }
        });
        let mut added = Vec::new();
        for (c, d) in tree {
            if banned.contains(&(c, d)) {
                continue;
            }
            if adj.entry(c).or_default().insert(d) {
                adj.entry(d).or_default().insert(c);
                added.push((c, d));
            }
        }
        flips.push(FlipRecord { removed: (a, b), apexes, added });
    }
    // Converged when no over-full edge remains.
    let mut converged = true;
    'check: for (&a, nbrs) in &adj {
        for &b in nbrs.range((a + 1)..) {
            if apex_provider(&adj, a, b).len() >= 3 {
                converged = false;
                break 'check;
            }
        }
    }
    let mut out_edges = Vec::new();
    for (&a, nbrs) in &adj {
        for &b in nbrs.range((a + 1)..) {
            out_edges.push((a, b));
        }
    }
    FlipOutcome { edges: out_edges, flips, converged }
}

/// Enumerates the triangles (3-cliques) of a landmark edge set, each as a
/// sorted triple, in sorted order.
pub fn triangles_of(edges: &[LandmarkEdge]) -> Vec<[NodeId; 3]> {
    let mut adj: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().insert(b);
        adj.entry(b).or_default().insert(a);
    }
    let mut out = Vec::new();
    for &(a, b) in edges {
        for &c in apexes_of(&adj, a, b).iter() {
            if c > b {
                out.push([a, b, c]);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Enumerates the *faces* of a landmark edge set: empty triangles only —
/// 3-cliques with no vertex adjacent to all three corners. These are the
/// triangles emitted into the final mesh and counted by the flip step.
pub fn faces_of(edges: &[LandmarkEdge]) -> Vec<[NodeId; 3]> {
    let mut adj: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().insert(b);
        adj.entry(b).or_default().insert(a);
    }
    let mut out = Vec::new();
    for &(a, b) in edges {
        for &c in face_apexes_of(&adj, a, b).iter() {
            if c > b {
                out.push([a, b, c]);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Euclidean-free toy length: |a − b| as f64.
    fn id_len(a: NodeId, b: NodeId) -> f64 {
        (a as f64 - b as f64).abs()
    }

    #[test]
    fn paper_figure_five_case() {
        // Edge AB=(0,1) with three apexes C=2, D=3, E=4 (Fig. 5(a)).
        // Lengths: make CD (2,3) and DE (3,4) shorter than CE (2,4).
        let edges = vec![(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (0, 4), (1, 4)];
        let out = flip_to_manifold(&edges, 8, id_len);
        assert!(out.converged);
        assert_eq!(out.flips.len(), 1);
        let flip = &out.flips[0];
        assert_eq!(flip.removed, (0, 1));
        assert_eq!(flip.apexes, vec![2, 3, 4]);
        assert_eq!(flip.added, vec![(2, 3), (3, 4)], "two shortest apex edges");
        // No over-full edge remains.
        for &(a, b) in &out.edges {
            let adj_edges = out.edges.clone();
            let tris = triangles_of(&adj_edges);
            let count = tris.iter().filter(|t| t.contains(&a) && t.contains(&b)).count();
            assert!(count <= 2, "edge ({a},{b}) still has {count} faces");
        }
    }

    #[test]
    fn manifold_input_is_untouched() {
        // Tetrahedron graph: every edge has exactly two triangles.
        let edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let out = flip_to_manifold(&edges, 8, id_len);
        assert!(out.converged);
        assert!(out.flips.is_empty());
        assert_eq!(out.edges, edges);
        assert_eq!(triangles_of(&edges).len(), 4);
    }

    #[test]
    fn triangles_enumeration() {
        let edges = vec![(0, 1), (1, 2), (0, 2), (2, 3)];
        assert_eq!(triangles_of(&edges), vec![[0, 1, 2]]);
        assert!(triangles_of(&[(0, 1)]).is_empty());
        assert!(triangles_of(&[]).is_empty());
    }

    #[test]
    fn spanning_tree_reconnects_four_apexes() {
        // Edge (0,1) with four apexes 2,3,4,5.
        let mut edges = vec![(0, 1)];
        for apex in 2..6 {
            edges.push((0, apex));
            edges.push((1, apex));
        }
        let out = flip_to_manifold(&edges, 8, id_len);
        assert!(out.converged);
        assert_eq!(out.flips[0].apexes, vec![2, 3, 4, 5]);
        // Spanning tree over 4 apexes has 3 edges: chain 2-3-4-5 by id_len.
        assert_eq!(out.flips[0].added, vec![(2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn zero_flip_budget_leaves_graph_unchanged() {
        let edges = vec![(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (0, 4), (1, 4)];
        let out = flip_to_manifold(&edges, 0, id_len);
        assert!(!out.converged, "over-full edge remains with zero budget");
        assert!(out.flips.is_empty());
        let mut expected = edges.clone();
        expected.sort_unstable();
        assert_eq!(out.edges, expected, "no flip means no change");
    }

    #[test]
    fn empty_graph() {
        let out = flip_to_manifold(&[], 4, id_len);
        assert!(out.converged);
        assert!(out.edges.is_empty());
    }
}
