//! Step I of UBF: per-node neighborhood coordinates.
//!
//! Each node needs coordinates for its closed one-hop neighborhood `N(i)`.
//! Depending on [`CoordinateSource`] these are either the true positions
//! (coordinates known) or a local MDS frame built from noisy pairwise
//! distance measurements between mutually-adjacent neighborhood members
//! (the paper's default; Shang–Ruml-style localization from
//! `ballfit-mds`).

use ballfit_geom::Vec3;
use ballfit_mds::local::{embed_local, LocalDistances};
use ballfit_netgen::model::NetworkModel;
use ballfit_wsn::NodeId;

use crate::config::CoordinateSource;
use crate::view::NetView;

/// Coordinates for one node's closed neighborhood.
#[derive(Debug, Clone)]
pub struct NeighborhoodFrame {
    /// Neighborhood members (sorted; includes the node itself).
    pub members: Vec<NodeId>,
    /// Index of the node itself within `members`.
    pub self_index: usize,
    /// Coordinates per member, in `members` order. Local frames are
    /// centered and arbitrarily oriented; ground-truth frames are global.
    pub coords: Vec<Vec3>,
    /// Residual stress of the embedding (0 for ground truth).
    pub stress: f64,
}

/// Computes the neighborhood frame of `node`.
///
/// Returns `None` when a local frame cannot be built (neighborhood smaller
/// than 2, or its measured-distance graph is disconnected) — the caller
/// treats such nodes per [`crate::config::UbfConfig::degenerate_is_boundary`].
pub fn neighborhood_frame(
    model: &NetworkModel,
    node: NodeId,
    source: &CoordinateSource,
) -> Option<NeighborhoodFrame> {
    neighborhood_frame_k(model, node, source, 1)
}

/// [`neighborhood_frame`] over the closed `k`-hop neighborhood (the 2-hop
/// variant realizes Lemma 1's full `2r` witness scope; see
/// [`crate::config::UbfConfig::witness_hops`]).
pub fn neighborhood_frame_k(
    model: &NetworkModel,
    node: NodeId,
    source: &CoordinateSource,
    k: u32,
) -> Option<NeighborhoodFrame> {
    neighborhood_frame_view(&NetView::from_model(model), node, source, k)
}

/// [`neighborhood_frame_k`] over a borrowed [`NetView`] — the shared
/// implementation both the static detector and the incremental
/// (churn-following) detector call, so their per-node results are
/// byte-identical by construction.
pub fn neighborhood_frame_view(
    view: &NetView<'_>,
    node: NodeId,
    source: &CoordinateSource,
    k: u32,
) -> Option<NeighborhoodFrame> {
    let topo = view.topology();
    let members = topo.closed_k_hop_neighborhood(node, k);
    let self_index = members.binary_search(&node).expect("node is in its own neighborhood");
    match source {
        CoordinateSource::GroundTruth => {
            let coords = members.iter().map(|&m| view.positions()[m]).collect();
            Some(NeighborhoodFrame { members, self_index, coords, stress: 0.0 })
        }
        CoordinateSource::LocalMds { error, noise_seed, .. } => {
            if members.len() < 2 {
                return None;
            }
            let oracle = view.oracle(*error, *noise_seed);
            let mut table = LocalDistances::new(members.len());
            for a in 0..members.len() {
                for b in (a + 1)..members.len() {
                    let (i, j) = (members[a], members[b]);
                    // Only mutually-adjacent pairs can range each other.
                    if topo.are_neighbors(i, j) {
                        table.set(a, b, oracle.measure(i, j, view.true_distance(i, j)));
                    }
                }
            }
            // Unmeasured pairs are out-of-range pairs: assert the radio
            // range as a distance floor during refinement.
            // Note on floors: `ballfit-mds` can assert a distance floor on
            // unmeasured (out-of-range) pairs during refinement. At
            // moderate noise that trades a little recall for precision,
            // but at extreme noise it suppresses detection entirely and
            // breaks the paper's Fig. 1(g) shape — so the pipeline leaves
            // it off (see DESIGN.md §6b).
            let frame = embed_local(&table, source.frame_config()).ok()?;
            Some(NeighborhoodFrame {
                members,
                self_index,
                coords: frame.coords,
                stress: frame.stress,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballfit_netgen::builder::NetworkBuilder;
    use ballfit_netgen::measure::ErrorModel;
    use ballfit_netgen::scenario::Scenario;

    fn small_model() -> NetworkModel {
        NetworkBuilder::new(Scenario::SolidBox)
            .surface_nodes(120)
            .interior_nodes(180)
            .target_degree(12.0)
            .require_connected(false)
            .seed(42)
            .build()
            .expect("seeded SolidBox scenario always builds")
    }

    #[test]
    fn ground_truth_frame_uses_true_positions() {
        let model = small_model();
        let f = neighborhood_frame(&model, 10, &CoordinateSource::GroundTruth)
            .expect("ground-truth frames exist for every node");
        assert_eq!(f.members[f.self_index], 10);
        assert_eq!(f.stress, 0.0);
        for (idx, &m) in f.members.iter().enumerate() {
            assert_eq!(f.coords[idx], model.positions()[m]);
        }
    }

    #[test]
    fn noiseless_mds_frame_preserves_measured_distances() {
        let model = small_model();
        let source =
            CoordinateSource::LocalMds { error: ErrorModel::None, noise_seed: 0, refine: true };
        // Pick a node with a decent neighborhood.
        let node = (0..model.len())
            .max_by_key(|&i| model.topology().degree(i))
            .expect("model is non-empty");
        let f = neighborhood_frame(&model, node, &source).expect("max-degree neighborhood embeds");
        let topo = model.topology();
        let mut checked = 0;
        for a in 0..f.members.len() {
            for b in (a + 1)..f.members.len() {
                let (i, j) = (f.members[a], f.members[b]);
                if topo.are_neighbors(i, j) {
                    let truth = model.true_distance(i, j);
                    let embedded = f.coords[a].distance(f.coords[b]);
                    assert!(
                        (truth - embedded).abs() < 0.15,
                        "pair ({i},{j}): true {truth}, embedded {embedded}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 5, "too few measured pairs exercised");
    }

    #[test]
    fn noisy_frames_have_higher_stress() {
        let model = small_model();
        let node = (0..model.len())
            .max_by_key(|&i| model.topology().degree(i))
            .expect("model is non-empty");
        let clean = neighborhood_frame(
            &model,
            node,
            &CoordinateSource::LocalMds { error: ErrorModel::None, noise_seed: 0, refine: true },
        )
        .expect("noiseless max-degree neighborhood embeds");
        let noisy = neighborhood_frame(
            &model,
            node,
            &CoordinateSource::LocalMds {
                error: ErrorModel::UniformRadius { fraction: 0.5 },
                noise_seed: 0,
                refine: true,
            },
        )
        .expect("noisy max-degree neighborhood still embeds");
        assert!(noisy.stress > clean.stress);
    }
}
