//! Step III: Combinatorial Delaunay Map (CDM).
//!
//! For every CDG-adjacent landmark pair, a packet travels the shortest
//! path (over identified boundary nodes only). The pair is connected iff
//! (1) every node on the path is associated with one of the two landmarks,
//! and (2) the path visits the source landmark's cell first and then the
//! destination's, without interleaving. The surviving edge set — the CDM —
//! is a planar graph on each boundary (Funke–Milosavljević, extended to 3D
//! surfaces by the paper).

use std::collections::BTreeMap;

use ballfit_wsn::bfs::shortest_path;
use ballfit_wsn::{NodeId, Topology};

use crate::cdg::LandmarkEdge;
use crate::cells::CellAssignment;

/// Result of CDM construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cdm {
    /// Accepted (connected) landmark edges, sorted.
    pub edges: Vec<LandmarkEdge>,
    /// CDG edges rejected by the path conditions.
    pub rejected: Vec<LandmarkEdge>,
    /// For each accepted edge, the boundary path that realized it
    /// (including both landmark endpoints).
    pub paths: BTreeMap<LandmarkEdge, Vec<NodeId>>,
}

impl Cdm {
    /// Nodes lying on any accepted path ("on the shortest path between two
    /// connected landmarks") — the crossing guards of step IV.
    pub fn marked_nodes(&self, n: usize) -> Vec<bool> {
        let mut marked = vec![false; n];
        for path in self.paths.values() {
            for &p in path {
                marked[p] = true;
            }
        }
        marked
    }
}

/// Checks the paper's two CDM conditions on a path from landmark `a` to
/// landmark `b`.
pub fn path_is_valid(path: &[NodeId], a: NodeId, b: NodeId, cells: &CellAssignment) -> bool {
    // (1) All path nodes associated with a or b only.
    // (2) a-cell prefix then b-cell suffix, no interleaving.
    let mut seen_b = false;
    for &node in path {
        match cells.owner_of(node) {
            Some(o) if o == a => {
                if seen_b {
                    return false; // interleaved back into a's cell
                }
            }
            Some(o) if o == b => {
                seen_b = true;
            }
            _ => return false, // foreign or unassigned cell
        }
    }
    true
}

/// Builds the CDM from the CDG by probing each adjacent pair's shortest
/// boundary path (deterministic min-ID BFS, traversal restricted to the
/// group). Pairs whose endpoints have no path inside the group are
/// rejected.
pub fn build_cdm(
    topo: &Topology,
    group: &[NodeId],
    cells: &CellAssignment,
    cdg_edges: &[LandmarkEdge],
) -> Cdm {
    let member = |n: NodeId| group.binary_search(&n).is_ok();
    let mut edges = Vec::new();
    let mut rejected = Vec::new();
    let mut paths = BTreeMap::new();
    for &(a, b) in cdg_edges {
        match shortest_path(topo, a, b, member) {
            Some(path) if path_is_valid(&path, a, b, cells) => {
                paths.insert((a, b), path);
                edges.push((a, b));
            }
            _ => rejected.push((a, b)),
        }
    }
    Cdm { edges, rejected, paths }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdg::build_cdg;
    use crate::cells::assign_cells;

    fn ring(n: usize) -> Topology {
        Topology::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn ring_cdm_keeps_all_cycle_edges() {
        let topo = ring(12);
        let group: Vec<usize> = (0..12).collect();
        let landmarks = vec![0, 3, 6, 9];
        let cells = assign_cells(&topo, &group, &landmarks);
        let cdg = build_cdg(&topo, &group, &cells);
        let cdm = build_cdm(&topo, &group, &cells, &cdg);
        assert_eq!(cdm.edges, cdg, "ring paths are clean two-cell paths");
        assert!(cdm.rejected.is_empty());
        // Paths recorded for every accepted edge.
        for e in &cdm.edges {
            let p = &cdm.paths[e];
            assert_eq!(p.first(), Some(&e.0));
            assert_eq!(p.last(), Some(&e.1));
        }
        let marked = cdm.marked_nodes(12);
        assert!(marked.iter().filter(|&&m| m).count() >= 8);
    }

    #[test]
    fn path_validity_conditions() {
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let group: Vec<usize> = (0..5).collect();
        let cells = assign_cells(&topo, &group, &[0, 4]);
        // 0,1,2 owned by 0; 3,4 owned by 4.
        assert!(path_is_valid(&[0, 1, 2, 3, 4], 0, 4, &cells));
        // Interleaving: back into a's cell after b's.
        assert!(!path_is_valid(&[0, 3, 1, 4], 0, 4, &cells));
        // Foreign owner.
        let cells3 = assign_cells(&topo, &group, &[0, 2, 4]);
        assert!(!path_is_valid(&[0, 1, 2, 3, 4], 0, 4, &cells3));
    }

    #[test]
    fn third_cell_on_path_rejects_the_edge() {
        // Path topology: 0-1-2-3-4 with landmarks 0, 2, 4. CDG adjacency
        // 0–2 and 2–4 are fine; 0–4's path passes through 2's cell ⇒ if 0–4
        // were CDG-adjacent it must be rejected.
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let group: Vec<usize> = (0..5).collect();
        let cells = assign_cells(&topo, &group, &[0, 2, 4]);
        let forced_cdg = vec![(0, 2), (0, 4), (2, 4)];
        let cdm = build_cdm(&topo, &group, &cells, &forced_cdg);
        assert_eq!(cdm.edges, vec![(0, 2), (2, 4)]);
        assert_eq!(cdm.rejected, vec![(0, 4)]);
    }

    #[test]
    fn unreachable_pair_is_rejected() {
        let topo = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        let group = vec![0, 1, 2, 3];
        let cells = assign_cells(&topo, &group, &[0, 2]);
        let cdm = build_cdm(&topo, &group, &cells, &[(0, 2)]);
        assert!(cdm.edges.is_empty());
        assert_eq!(cdm.rejected, vec![(0, 2)]);
    }
}
