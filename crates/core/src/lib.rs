//! # ballfit
//!
//! A from-scratch Rust reproduction of **"Localized Algorithm for Precise
//! Boundary Detection in 3D Wireless Networks"** (Hongyu Zhou, Su Xia,
//! Miao Jin, Hongyi Wu — ICDCS 2010).
//!
//! Given a 3D wireless network described only by local connectivity and
//! (noisy) pairwise distance measurements, the pipeline:
//!
//! 1. **Detects boundary nodes** — [`ubf`] (Unit Ball Fitting, phase 1)
//!    finds every node that an empty radio-range ball can touch;
//!    [`iff`] (Isolated Fragment Filtering, phase 2) removes spurious
//!    small fragments; [`grouping`] separates the outer boundary from each
//!    interior hole.
//! 2. **Constructs locally planarized 2-manifold triangular meshes** per
//!    boundary — [`landmarks`] election, Voronoi [`cells`], the
//!    combinatorial Delaunay graph ([`cdg`]) and map ([`cdm`]),
//!    [`triangulate`] completion and [`edgeflip`] repair, assembled by
//!    [`surface::SurfaceBuilder`].
//!
//! Every step is *localized*: nodes use one-hop information only. The
//! [`protocols`] module runs the same algorithms as genuine message-passing
//! protocols on the `ballfit-wsn` round simulator and is tested equivalent
//! to the fast centralized-equivalent executors used by the experiment
//! harness. Detection quality against ground truth is measured by
//! [`metrics::DetectionStats`] — the quantities of the paper's Figs. 1
//! and 11.
//!
//! Dynamic networks are served by [`incremental`]: an
//! [`incremental::IncrementalDetector`] follows a churning topology by
//! recomputing only the dirty halo of each event, pinned exact against
//! the from-scratch detector (both run over the shared [`view::NetView`]
//! abstraction). The [`chaos`] module stresses both layers at once —
//! radio faults injected while the topology churns — and grades each
//! epoch with a typed [`chaos::DetectionOutcome`] instead of failing
//! outright. Above all of this sits the `ballfit-serve` crate, which
//! exposes many concurrent detector instances behind a deterministic
//! JSONL wire protocol — this crate stays a library and never depends
//! on the service layer (enforced by the `serve-scope` lint pass).
//!
//! # Quickstart
//!
//! ```
//! use ballfit::Pipeline;
//! use ballfit_netgen::builder::NetworkBuilder;
//! use ballfit_netgen::scenario::Scenario;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a 3D network in a sphere (ground truth included).
//! let model = NetworkBuilder::new(Scenario::SolidSphere)
//!     .surface_nodes(300)
//!     .interior_nodes(500)
//!     .target_degree(16.0)
//!     .seed(7)
//!     .build()?;
//!
//! // Detect boundary nodes and build the boundary surface.
//! let result = Pipeline::default().run(&model);
//! assert!(result.stats.recall() > 0.8);
//! assert_eq!(result.surfaces.len(), 1); // one boundary: the sphere shell
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod applications;
pub mod cdg;
pub mod cdm;
pub mod cells;
pub mod chaos;
pub mod config;
pub mod detector;
pub mod edgeflip;
pub mod grouping;
pub mod iff;
pub mod incremental;
pub mod landmarks;
pub mod localizer;
pub mod metrics;
pub mod protocols;
pub mod surface;
pub mod triangulate;
pub mod ubf;
pub mod view;

pub use config::{CoordinateSource, DetectorConfig, IffConfig, SurfaceConfig, UbfConfig};
pub use detector::{BoundaryDetection, BoundaryDetector};
pub use metrics::DetectionStats;
pub use surface::{BoundarySurface, SurfaceBuilder};

/// The full paper pipeline: boundary-node detection followed by surface
/// construction and ground-truth evaluation.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    /// Detection configuration (coordinates, UBF, IFF).
    pub detector: DetectorConfig,
    /// Surface-construction configuration (k, flips).
    pub surface: SurfaceConfig,
}

/// Everything the pipeline produces for one network.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Phase 1+2 output: per-node flags and boundary groups.
    pub detection: BoundaryDetection,
    /// One triangular mesh per (large enough) boundary group.
    pub surfaces: Vec<BoundarySurface>,
    /// Detection quality against the model's ground truth.
    pub stats: DetectionStats,
}

impl Pipeline {
    /// Creates a pipeline from explicit configurations.
    pub fn new(detector: DetectorConfig, surface: SurfaceConfig) -> Self {
        Pipeline { detector, surface }
    }

    /// The paper's default evaluation pipeline at a given distance-error
    /// percentage (local-MDS coordinates, θ=20/T=3 IFF, k=3 meshes).
    pub fn paper(error_percent: u32, noise_seed: u64) -> Self {
        Pipeline {
            detector: DetectorConfig::paper(error_percent, noise_seed),
            surface: SurfaceConfig::default(),
        }
    }

    /// Runs detection, evaluation and surface construction on a network.
    pub fn run(&self, model: &ballfit_netgen::model::NetworkModel) -> PipelineResult {
        self.run_traced(model, &mut ballfit_obs::Trace::disabled())
    }

    /// [`Pipeline::run`] with structured tracing: the detection phases
    /// record their spans and per-node ball-test events into `trace`
    /// (see [`BoundaryDetector::detect_view_traced`]). With
    /// [`ballfit_obs::Trace::disabled`] this *is* `run`.
    pub fn run_traced(
        &self,
        model: &ballfit_netgen::model::NetworkModel,
        trace: &mut ballfit_obs::Trace,
    ) -> PipelineResult {
        let view = view::NetView::from_model(model);
        let detection = BoundaryDetector::new(self.detector).detect_view_traced(&view, trace);
        let stats = DetectionStats::evaluate(model, &detection);
        let surfaces = SurfaceBuilder::new(self.surface).build(model, &detection);
        PipelineResult { detection, surfaces, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballfit_netgen::builder::NetworkBuilder;
    use ballfit_netgen::scenario::Scenario;

    #[test]
    fn pipeline_end_to_end_on_a_sphere() {
        let model = NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(300)
            .interior_nodes(500)
            .target_degree(16.0)
            .seed(55)
            .build()
            .unwrap();
        let result = Pipeline::default().run(&model);
        assert!(result.stats.recall() > 0.85, "{}", result.stats);
        assert_eq!(result.surfaces.len(), 1);
        assert!(result.surfaces[0].stats.faces > 0);
    }

    #[test]
    fn paper_constructor_wires_error_percent() {
        let p = Pipeline::paper(30, 4);
        match p.detector.coordinates {
            CoordinateSource::LocalMds { error, .. } => {
                assert_eq!(
                    error,
                    ballfit_netgen::measure::ErrorModel::UniformRadius { fraction: 0.3 }
                );
            }
            other => panic!("unexpected source {other:?}"),
        }
    }
}
