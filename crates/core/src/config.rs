//! Pipeline configuration.

use ballfit_mds::local::LocalFrameConfig;
use ballfit_netgen::measure::ErrorModel;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Unit Ball Fitting parameters (Sec. II-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct UbfConfig {
    /// Ball radius as a multiple of the radio range — the paper's
    /// `r = 1 + ε`. Larger values only detect larger holes (Sec. II-A3).
    pub ball_radius_factor: f64,
    /// Shrink margin for the strict-containment test, as a fraction of the
    /// radio range: points within this margin of the ball surface do not
    /// invalidate the ball. Absorbs floating-point noise so the three
    /// defining nodes never "block" their own ball.
    pub containment_tolerance: f64,
    /// Whether a node with fewer than 2 neighbors is declared a boundary
    /// candidate outright. The paper's well-connectedness assumption
    /// (Definition 3) excludes such nodes; real samples occasionally
    /// contain them and they are certainly exposed.
    pub degenerate_is_boundary: bool,
    /// Neighborhood radius (hops) used for ball definition and emptiness
    /// witnesses. The paper's Algorithm 1 is the 1-hop ("truly localized")
    /// variant; Lemma 1's correctness argument actually ranges over the
    /// `2r` ball, i.e. 2 hops. The 2-hop variant trades one extra exchange
    /// round for fewer hidden-witness false positives (ablation E13).
    pub witness_hops: u32,
}

impl Default for UbfConfig {
    fn default() -> Self {
        UbfConfig {
            ball_radius_factor: 1.0 + 1e-6,
            containment_tolerance: 1e-7,
            degenerate_is_boundary: true,
            witness_hops: 1,
        }
    }
}

impl UbfConfig {
    /// The absolute ball radius for a network with the given radio range.
    pub fn ball_radius(&self, radio_range: f64) -> f64 {
        self.ball_radius_factor * radio_range
    }
}

/// Isolated Fragment Filtering parameters (Sec. II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct IffConfig {
    /// Fragment-size threshold θ: fragments with fewer members are
    /// demoted. The paper derives θ = 20 from the icosahedron bound on the
    /// smallest hole.
    pub theta: usize,
    /// Flooding TTL `T`; the paper uses 3, the maximum hop distance
    /// between two nodes on a minimum (icosahedral) hole boundary.
    pub ttl: u32,
}

impl Default for IffConfig {
    fn default() -> Self {
        IffConfig { theta: 20, ttl: 3 }
    }
}

/// How nodes obtain the coordinates of their one-hop neighborhood
/// (step I of UBF).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum CoordinateSource {
    /// Nodes know their true coordinates ("If all nodes have known their
    /// coordinates, this step can be skipped", Sec. II-A3).
    GroundTruth,
    /// Nodes build a local frame by MDS over measured pairwise distances —
    /// the paper's default. The error model drives the measurement noise.
    LocalMds {
        /// Distance-measurement error model.
        error: ErrorModel,
        /// Seed of the per-pair measurement noise.
        noise_seed: u64,
        /// Whether SMACOF refinement runs after classical MDS.
        refine: bool,
    },
}

impl CoordinateSource {
    /// The paper's sweep point: local MDS with uniform distance error of
    /// `percent`% of the radio range.
    pub fn paper_error(percent: u32, noise_seed: u64) -> Self {
        CoordinateSource::LocalMds {
            error: ErrorModel::paper_percent(percent),
            noise_seed,
            refine: true,
        }
    }

    /// MDS frame configuration implied by this source (for `LocalMds`).
    pub fn frame_config(&self) -> LocalFrameConfig {
        match self {
            CoordinateSource::GroundTruth => LocalFrameConfig::default(),
            CoordinateSource::LocalMds { refine, .. } => {
                LocalFrameConfig { refine: *refine, ..Default::default() }
            }
        }
    }
}

/// Full boundary-detection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct DetectorConfig {
    /// Coordinate acquisition (step I).
    pub coordinates: CoordinateSource,
    /// Unit Ball Fitting (phase 1).
    pub ubf: UbfConfig,
    /// Isolated Fragment Filtering (phase 2).
    pub iff: IffConfig,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            coordinates: CoordinateSource::GroundTruth,
            ubf: UbfConfig::default(),
            iff: IffConfig::default(),
        }
    }
}

impl DetectorConfig {
    /// The paper's default evaluation setting: local MDS coordinates at the
    /// given distance-error percentage.
    pub fn paper(percent: u32, noise_seed: u64) -> Self {
        DetectorConfig {
            coordinates: CoordinateSource::paper_error(percent, noise_seed),
            ..Default::default()
        }
    }
}

/// Surface-construction parameters (Sec. III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SurfaceConfig {
    /// Landmark spacing `k`: any two landmarks are at least `k` hops apart
    /// on the boundary subgraph. "Usually set between 3 to 5" (Sec. III);
    /// Fig. 1(f) uses 3.
    pub k: u32,
    /// Upper bound on edge flips, as a multiple of the pre-flip edge count
    /// (the flip budget is `max_flip_passes · |edges|`; a handful of flips
    /// is typical, so the default of 8 is generous).
    pub max_flip_passes: usize,
    /// Minimum number of landmarks a boundary group must produce to
    /// attempt meshing (fewer cannot form a closed surface).
    pub min_landmarks: usize,
    /// Whether triangulation completion may re-route blocked connection
    /// probes around already-marked nodes (default true). The paper drops
    /// a probe on first contact with a marked node; on networks sparser
    /// than its 4210-node evaluation that leaves many open polygons, and
    /// the detour — which still never walks over a recorded path — closes
    /// them. Set false for the strictly paper-faithful rule (the two are
    /// compared in the `ablation_k` harness).
    pub route_around: bool,
}

impl Default for SurfaceConfig {
    fn default() -> Self {
        SurfaceConfig { k: 3, max_flip_passes: 8, min_landmarks: 4, route_around: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let iff = IffConfig::default();
        assert_eq!(iff.theta, 20);
        assert_eq!(iff.ttl, 3);
        let ubf = UbfConfig::default();
        assert!(ubf.ball_radius_factor > 1.0);
        assert!((ubf.ball_radius(2.0) - 2.0 * ubf.ball_radius_factor).abs() < 1e-15);
        let s = SurfaceConfig::default();
        assert_eq!(s.k, 3);
    }

    #[test]
    fn paper_error_constructor() {
        match CoordinateSource::paper_error(30, 7) {
            CoordinateSource::LocalMds { error, noise_seed, refine } => {
                assert_eq!(error, ErrorModel::UniformRadius { fraction: 0.3 });
                assert_eq!(noise_seed, 7);
                assert!(refine);
            }
            other => panic!("unexpected {other:?}"),
        }
        match CoordinateSource::paper_error(0, 7) {
            CoordinateSource::LocalMds { error, .. } => assert_eq!(error, ErrorModel::None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn detector_config_paper() {
        let cfg = DetectorConfig::paper(20, 3);
        assert!(matches!(cfg.coordinates, CoordinateSource::LocalMds { .. }));
        assert_eq!(cfg.iff.theta, 20);
    }
}
