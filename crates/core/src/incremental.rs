//! Incremental boundary maintenance under churn.
//!
//! Re-running [`crate::detector::BoundaryDetector::detect`] after every
//! topology event costs `O(n)` neighborhood frames even though a single
//! join/leave/drift only perturbs a small region. [`IncrementalDetector`]
//! maintains the exact detection state by recomputing only the *dirty
//! halo* of each event and returns a [`BoundaryDiff`] describing what
//! changed.
//!
//! # Dirty-halo radius argument
//!
//! Let `w` be [`crate::config::UbfConfig::witness_hops`] (1 in the paper's
//! Algorithm 1) and `T` be [`crate::config::IffConfig::ttl`]. Every edge an
//! event changes is incident to the event node (see
//! [`TopologyDelta`]), so the *seeds* — event node plus gained/lost
//! neighbors — cover every changed-edge endpoint.
//!
//! * **UBF scope.** A node's candidacy depends only on its closed `w`-hop
//!   neighborhood (members and their positions). If that neighborhood
//!   changed, some changed edge lay within `w` hops of the node in the old
//!   or the new topology. Old-topology paths reduce to new-topology paths:
//!   truncate at the first changed edge — the prefix uses only unchanged
//!   edges and ends at a seed. Hence every candidacy change lies inside
//!   the closed `w`-hop ball of the seeds *in the new topology*, which is
//!   what [`IncrementalDetector::apply`] recomputes.
//! * **IFF scope.** A fragment count at node `v` reads candidate flags
//!   and edges within `T` hops of `v` *on the candidate subgraph*, whose
//!   hop distances dominate full-graph ones. Its inputs therefore changed
//!   only if a *candidacy flip* lies within `T` full-graph hops of `v`,
//!   or a changed edge was usable by its flood. *Added* edges are only
//!   usable by new-topology floods, which must visit the event node to
//!   cross them (every changed edge is incident to it) — covered by the
//!   `T`-ball of the event node. *Removed* edges were usable by
//!   old-topology floods; truncating such a flood path at the removed
//!   edge leaves a new-topology path ending at the event node or a
//!   removed neighbor — covered by their `T`-balls. The implementation
//!   therefore recomputes exactly the closed `T`-ball of {candidacy
//!   flips} ∪ {event node} ∪ {removed neighbors} — a subset of the
//!   worst-case closed `(w + 1 + T)`-hop neighborhood of the seeds (the
//!   "(2+T)-hop" bound at `w = 1`), and usually far smaller, since most
//!   events flip no candidacies at all.
//! * **Grouping scope.** Boundary groups are connected components of the
//!   boundary subgraph; only components containing a flipped node or a
//!   changed-edge endpoint can split, merge, grow, or shrink. Those are
//!   re-flooded from scratch (a scoped flood seeded at their surviving
//!   members plus promotions); untouched components are kept verbatim.
//!
//! Exactness — state identical to a from-scratch
//! [`crate::detector::BoundaryDetector::detect_view`] after *every* event —
//! is the module invariant, regression-pinned by `tests/churn.rs`;
//! the speedup is the payoff, measured by the `churn_sweep` benchmark
//! (E16).

use std::collections::{BTreeSet, VecDeque};

use ballfit_obs::{Trace, TraceEvent};
use ballfit_par::{par_map, Parallelism};
use ballfit_wsn::churn::{DynamicTopology, TopologyDelta};
use ballfit_wsn::{NodeId, Topology};

use crate::config::DetectorConfig;
use crate::detector::BoundaryDetection;
use crate::grouping::BoundaryGroup;
use crate::localizer::neighborhood_frame_view;
use crate::ubf::ubf_test;
use crate::view::NetView;

/// What one applied event changed, all lists sorted by node ID.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BoundaryDiff {
    /// Nodes that became boundary.
    pub promoted: Vec<NodeId>,
    /// Nodes that stopped being boundary.
    pub demoted: Vec<NodeId>,
    /// Nodes still on the boundary whose group membership changed
    /// (split, merge, or a gained/lost co-member).
    pub regrouped: Vec<NodeId>,
    /// The dirty halo: every node whose detection state was recomputed —
    /// the closed `w`-ball of the event's seeds (UBF) united with the
    /// closed `T`-ball of the candidacy flips and the event node (IFF).
    pub halo: Vec<NodeId>,
    /// Unit balls tested while repairing this event's halo (Theorem 1
    /// accounting) — the event's UBF compute cost, as opposed to the
    /// cumulative per-slot totals [`crate::detector::BoundaryDetection`]
    /// reports.
    pub balls: u64,
}

impl BoundaryDiff {
    /// `true` if the event changed no node's boundary status or grouping.
    pub fn is_quiet(&self) -> bool {
        self.promoted.is_empty() && self.demoted.is_empty() && self.regrouped.is_empty()
    }
}

/// Boundary detection state maintained incrementally across
/// [`DynamicTopology`] events.
///
/// Construct with [`IncrementalDetector::new`] (one full detection pass),
/// then feed each event's [`TopologyDelta`] to
/// [`IncrementalDetector::apply`]. At any point
/// [`IncrementalDetector::detection`] yields a snapshot equal to what
/// [`crate::detector::BoundaryDetector::detect_view`] would produce from
/// scratch on the current topology.
#[derive(Debug, Clone)]
pub struct IncrementalDetector {
    config: DetectorConfig,
    parallelism: Parallelism,
    candidates: Vec<bool>,
    degenerate: Vec<bool>,
    balls: Vec<u64>,
    /// IFF fragment size per node (0 for non-candidates), as
    /// [`ballfit_wsn::flood::fragment_sizes`] defines it.
    fragments: Vec<usize>,
    boundary: Vec<bool>,
    groups: Vec<BoundaryGroup>,
    /// `label[n]` = index into `groups` of the group containing `n`.
    label: Vec<Option<usize>>,
}

/// A serializable point-in-time image of an [`IncrementalDetector`],
/// taken with [`IncrementalDetector::checkpoint`] and revived with
/// [`IncrementalDetector::restore`]. The node → group label map is not
/// stored — it is a pure function of `groups` and is rebuilt on restore —
/// and the worker-thread count is an execution parameter, re-supplied at
/// restore time. Restoring and replaying the remaining topology events is
/// byte-identical to the uninterrupted run (the crash-recovery pin in
/// `tests/robustness.rs`).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DetectorCheckpoint {
    /// The configuration in force.
    pub config: DetectorConfig,
    /// Per-slot UBF candidate flags.
    pub candidates: Vec<bool>,
    /// Per-slot degenerate-neighborhood flags.
    pub degenerate: Vec<bool>,
    /// Per-slot candidate-ball counts (Theorem 1 accounting).
    pub balls: Vec<u64>,
    /// Per-slot IFF fragment sizes (0 for non-candidates).
    pub fragments: Vec<usize>,
    /// Per-slot boundary flags.
    pub boundary: Vec<bool>,
    /// Boundary groups in canonical order (size desc, min-ID asc).
    pub groups: Vec<BoundaryGroup>,
}

/// The detector's read view of a dynamic topology: dead slots appear as
/// isolated nodes and take the degenerate-neighborhood path, exactly as
/// they would in a from-scratch run over the same slot space.
fn view_of(dynamic: &DynamicTopology) -> NetView<'_> {
    NetView::new(dynamic.topology(), dynamic.positions(), dynamic.radio_range())
}

/// Sorted closed ball: every node within `radius` hops of a seed.
fn closed_ball(topo: &Topology, seeds: &[NodeId], radius: u32) -> Vec<NodeId> {
    let mut dist: Vec<Option<u32>> = vec![None; topo.len()];
    let mut queue = VecDeque::new();
    for &s in seeds {
        if dist[s].is_none() {
            dist[s] = Some(0);
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let d = dist[u].expect("queued nodes have distances");
        if d == radius {
            continue;
        }
        for &v in topo.neighbors(u) {
            let v = v as NodeId;
            if dist[v].is_none() {
                dist[v] = Some(d + 1);
                queue.push_back(v);
            }
        }
    }
    (0..topo.len()).filter(|&i| dist[i].is_some()).collect()
}

impl IncrementalDetector {
    /// Bootstraps the state with one full detection pass over the dynamic
    /// topology's current state. The bootstrap's UBF sweep (and any other
    /// whole-network recompute) shards over [`Parallelism::default`]
    /// workers; per-event halo repairs stay sequential — they are small.
    pub fn new(config: DetectorConfig, dynamic: &DynamicTopology) -> Self {
        Self::new_with_parallelism(config, dynamic, Parallelism::default())
    }

    /// [`IncrementalDetector::new`] with an explicit worker-thread count
    /// for whole-network UBF sweeps. State is byte-identical at every
    /// thread count.
    pub fn new_with_parallelism(
        config: DetectorConfig,
        dynamic: &DynamicTopology,
        parallelism: Parallelism,
    ) -> Self {
        let mut det = IncrementalDetector {
            config,
            parallelism,
            candidates: Vec::new(),
            degenerate: Vec::new(),
            balls: Vec::new(),
            fragments: Vec::new(),
            boundary: Vec::new(),
            groups: Vec::new(),
            label: Vec::new(),
        };
        let view = view_of(dynamic);
        det.grow_to(view.len());
        let all: Vec<NodeId> = (0..view.len()).collect();
        det.recompute_ubf(&view, &all);
        det.recompute_iff(&view, &all);
        det.groups = crate::grouping::group_boundaries(view.topology(), &det.boundary);
        det.relabel();
        det
    }

    /// The configuration in force.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Current boundary flags.
    pub fn boundary(&self) -> &[bool] {
        &self.boundary
    }

    /// Current UBF candidate flags.
    pub fn candidates(&self) -> &[bool] {
        &self.candidates
    }

    /// Current IFF fragment sizes (0 for non-candidates).
    pub fn fragments(&self) -> &[usize] {
        &self.fragments
    }

    /// Current boundary groups, largest first.
    pub fn groups(&self) -> &[BoundaryGroup] {
        &self.groups
    }

    /// A snapshot equal to a from-scratch
    /// [`crate::detector::BoundaryDetector::detect_view`] on the current
    /// topology.
    pub fn detection(&self) -> BoundaryDetection {
        BoundaryDetection {
            candidates: self.candidates.clone(),
            boundary: self.boundary.clone(),
            groups: self.groups.clone(),
            balls_tested: self.balls.iter().sum(),
            degenerate_nodes: (0..self.degenerate.len()).filter(|&i| self.degenerate[i]).collect(),
        }
    }

    /// Captures the full detection state as a serializable checkpoint.
    /// The label map is derivable from `groups` and is therefore omitted.
    pub fn checkpoint(&self) -> DetectorCheckpoint {
        DetectorCheckpoint {
            config: self.config,
            candidates: self.candidates.clone(),
            degenerate: self.degenerate.clone(),
            balls: self.balls.clone(),
            fragments: self.fragments.clone(),
            boundary: self.boundary.clone(),
            groups: self.groups.clone(),
        }
    }

    /// Revives a detector from a checkpoint without any recomputation:
    /// the per-slot state is adopted verbatim and the label map is
    /// rebuilt from the stored groups. `parallelism` only affects future
    /// whole-network sweeps; per-event repairs are sequential either way,
    /// so restored state evolves byte-identically at every thread count.
    pub fn restore(checkpoint: &DetectorCheckpoint, parallelism: Parallelism) -> Self {
        let mut det = IncrementalDetector {
            config: checkpoint.config,
            parallelism,
            candidates: checkpoint.candidates.clone(),
            degenerate: checkpoint.degenerate.clone(),
            balls: checkpoint.balls.clone(),
            fragments: checkpoint.fragments.clone(),
            boundary: checkpoint.boundary.clone(),
            groups: checkpoint.groups.clone(),
            label: vec![None; checkpoint.boundary.len()],
        };
        det.relabel();
        det
    }

    /// Repairs the detection state after `dynamic` applied the event that
    /// produced `delta`, recomputing only the dirty halo. Returns what
    /// changed.
    ///
    /// Call with the delta of *every* event, in order; skipping one leaves
    /// the state stale (the exactness invariant is per-event).
    pub fn apply(&mut self, dynamic: &DynamicTopology, delta: &TopologyDelta) -> BoundaryDiff {
        self.apply_traced(dynamic, delta, &mut Trace::disabled())
    }

    /// [`IncrementalDetector::apply`] with structured tracing: wraps the
    /// repair in a `"churn-event"` span carrying one
    /// [`TraceEvent::Halo`] record (dirty-halo size and the boundary
    /// diff). With [`Trace::disabled`] this *is* `apply`.
    pub fn apply_traced(
        &mut self,
        dynamic: &DynamicTopology,
        delta: &TopologyDelta,
        trace: &mut Trace,
    ) -> BoundaryDiff {
        trace.open("churn-event");
        let diff = self.apply_inner(dynamic, delta);
        trace.event(TraceEvent::Halo {
            size: diff.halo.len(),
            promoted: diff.promoted.len(),
            demoted: diff.demoted.len(),
            regrouped: diff.regrouped.len(),
        });
        trace.close();
        diff
    }

    fn apply_inner(&mut self, dynamic: &DynamicTopology, delta: &TopologyDelta) -> BoundaryDiff {
        let view = view_of(dynamic);
        self.grow_to(view.len());
        let seeds = delta.touched();
        let w = self.config.ubf.witness_hops;
        let ttl = self.config.iff.ttl;

        // Phase 1 (UBF) on the w-ball of the seeds, then phase 2 (IFF) on
        // the T-ball of the actual candidacy flips, the event node, and
        // its removed neighbors; see the module docs for why these radii
        // are sufficient (added neighbors are reachable through the event
        // node and need no seeding of their own).
        let ubf_set = closed_ball(view.topology(), &seeds, w);
        let (mut flips, balls) = self.recompute_ubf(&view, &ubf_set);
        flips.push(delta.node);
        flips.extend_from_slice(&delta.removed);
        flips.sort_unstable();
        flips.dedup();
        let iff_set = closed_ball(view.topology(), &flips, ttl);
        let old_boundary: Vec<(NodeId, bool)> =
            iff_set.iter().map(|&n| (n, self.boundary[n])).collect();
        self.recompute_iff(&view, &iff_set);
        let mut halo: Vec<NodeId> = ubf_set.iter().chain(&iff_set).copied().collect();
        halo.sort_unstable();
        halo.dedup();

        let mut promoted = Vec::new();
        let mut demoted = Vec::new();
        for (n, was) in old_boundary {
            match (was, self.boundary[n]) {
                (false, true) => promoted.push(n),
                (true, false) => demoted.push(n),
                _ => {}
            }
        }

        let regrouped = self.repair_groups(view.topology(), &seeds, &promoted, &demoted);
        BoundaryDiff { promoted, demoted, regrouped, halo, balls }
    }

    /// Extends all per-node state to `n` slots (new slots join as
    /// non-candidates; their real state is computed by the event that
    /// created them).
    fn grow_to(&mut self, n: usize) {
        self.candidates.resize(n, false);
        self.degenerate.resize(n, false);
        self.balls.resize(n, 0);
        self.fragments.resize(n, 0);
        self.boundary.resize(n, false);
        self.label.resize(n, None);
    }

    /// Recomputes UBF candidacy for exactly `nodes` — the same per-node
    /// code path as the from-scratch detector. Returns the nodes whose
    /// candidate flag actually flipped (ascending, since `nodes` is) and
    /// the number of unit balls the recompute tested.
    fn recompute_ubf(&mut self, view: &NetView<'_>, nodes: &[NodeId]) -> (Vec<NodeId>, u64) {
        // Per-node UBF tests are independent, so big batches — the
        // bootstrap and the from-scratch exactness baselines — shard over
        // workers; per-event halos stay on the caller (they are a handful
        // of nodes, not worth a thread spawn). Both paths produce the
        // same outcomes, and the fold below applies them in node order,
        // so the resulting state is byte-identical either way.
        const PAR_FLOOR: usize = 64;
        let config = &self.config;
        let probe = |&node: &NodeId| {
            neighborhood_frame_view(view, node, &config.coordinates, config.ubf.witness_hops).map(
                |frame| ubf_test(&frame.coords, frame.self_index, view.radio_range(), &config.ubf),
            )
        };
        let outcomes = if nodes.len() >= PAR_FLOOR && self.parallelism.get() > 1 {
            par_map(self.parallelism, nodes, probe)
        } else {
            nodes.iter().map(probe).collect()
        };

        let mut flips = Vec::new();
        let mut tested = 0u64;
        for (&node, outcome) in nodes.iter().zip(outcomes) {
            let was = self.candidates[node];
            match outcome {
                Some(out) => {
                    self.candidates[node] = out.is_boundary;
                    self.degenerate[node] = false;
                    self.balls[node] = out.balls_tested as u64;
                    tested += out.balls_tested as u64;
                }
                None => {
                    self.candidates[node] = self.config.ubf.degenerate_is_boundary;
                    self.degenerate[node] = true;
                    self.balls[node] = 0;
                }
            }
            if self.candidates[node] != was {
                flips.push(node);
            }
        }
        (flips, tested)
    }

    /// Recomputes IFF fragment sizes and boundary flags for exactly
    /// `nodes`, against the *current* (already repaired) candidate flags —
    /// the per-node equivalent of [`crate::iff::apply_iff`].
    fn recompute_iff(&mut self, view: &NetView<'_>, nodes: &[NodeId]) {
        let topo = view.topology();
        for &node in nodes {
            if self.candidates[node] {
                let reached =
                    ballfit_wsn::bfs::nodes_within(topo, node, self.config.iff.ttl, |n| {
                        self.candidates[n]
                    });
                self.fragments[node] = reached.len() + 1;
            } else {
                self.fragments[node] = 0;
            }
            self.boundary[node] =
                self.candidates[node] && self.fragments[node] >= self.config.iff.theta;
        }
    }

    /// Repairs the group list after boundary flips: discards every group
    /// touched by a flip or a changed edge, re-floods replacement
    /// components, keeps the rest verbatim, and restores the canonical
    /// (size desc, min-ID asc) order. Returns the sorted list of
    /// still-boundary nodes whose group membership changed.
    fn repair_groups(
        &mut self,
        topo: &Topology,
        seeds: &[NodeId],
        promoted: &[NodeId],
        demoted: &[NodeId],
    ) -> Vec<NodeId> {
        // Old groups that can change: any containing a flipped node or a
        // changed-edge endpoint. (Demoted nodes still carry their old
        // label at this point.)
        let mut affected: BTreeSet<usize> = BTreeSet::new();
        for &n in seeds.iter().chain(promoted).chain(demoted) {
            if let Some(g) = self.label[n] {
                affected.insert(g);
            }
        }
        if affected.is_empty() && promoted.is_empty() {
            return Vec::new(); // grouping untouched
        }

        // Scoped flood: rebuild components reachable from the affected
        // groups' surviving members and the promotions. Traversal is
        // unrestricted over the current boundary subgraph, so a merge
        // absorbs even a previously-unaffected component (which is then
        // discarded below in favor of the recomputed one).
        let mut starts: BTreeSet<NodeId> = promoted.iter().copied().collect();
        for &g in &affected {
            starts.extend(self.groups[g].iter().copied().filter(|&m| self.boundary[m]));
        }
        let mut visited = vec![false; topo.len()];
        let mut rebuilt: Vec<BoundaryGroup> = Vec::new();
        for &start in &starts {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            let mut comp = vec![start];
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &v in topo.neighbors(u) {
                    let v = v as NodeId;
                    if self.boundary[v] && !visited[v] {
                        visited[v] = true;
                        comp.push(v);
                        queue.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            rebuilt.push(comp);
        }

        // Drop affected groups plus any group a rebuilt component absorbed.
        let mut drop = vec![false; self.groups.len()];
        for &g in &affected {
            drop[g] = true;
        }
        for comp in &rebuilt {
            for &m in comp {
                if let Some(g) = self.label[m] {
                    drop[g] = true;
                }
            }
        }

        // Membership changes: a surviving node is regrouped when its new
        // component is not the same set as its old group.
        let mut regrouped = Vec::new();
        for comp in &rebuilt {
            for &m in comp {
                match self.label[m] {
                    Some(g) => {
                        if self.groups[g] != *comp {
                            regrouped.push(m);
                        }
                    }
                    None => {} // promoted: reported separately
                }
            }
        }
        regrouped.sort_unstable();

        let kept =
            self.groups.iter().enumerate().filter(|&(g, _)| !drop[g]).map(|(_, c)| c.clone());
        let mut groups: Vec<BoundaryGroup> = kept.chain(rebuilt).collect();
        // Same canonical order as `group_boundaries`: min IDs are unique
        // across components, so the comparator is total and the result
        // matches a from-scratch grouping exactly.
        groups.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
        self.groups = groups;
        self.relabel();
        regrouped
    }

    /// Rebuilds the node → group-index map from `self.groups`.
    fn relabel(&mut self) {
        self.label.iter_mut().for_each(|l| *l = None);
        for (gi, group) in self.groups.iter().enumerate() {
            for &m in group {
                self.label[m] = Some(gi);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::BoundaryDetector;
    use ballfit_geom::Vec3;
    use ballfit_wsn::churn::TopologyEvent;

    /// Deterministic jittered grid shell: a hollow box of points, dense
    /// enough that UBF finds a closed boundary.
    fn box_points(side: usize, spacing: f64) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    // Deterministic sub-cell jitter so frames are generic.
                    let j = |a: usize, b: usize, c: usize| {
                        let h = (a * 73_856_093) ^ (b * 19_349_663) ^ (c * 83_492_791);
                        ((h % 1000) as f64 / 1000.0 - 0.5) * 0.2 * spacing
                    };
                    pts.push(Vec3::new(
                        x as f64 * spacing + j(x, y, z),
                        y as f64 * spacing + j(y, z, x),
                        z as f64 * spacing + j(z, x, y),
                    ));
                }
            }
        }
        pts
    }

    fn assert_matches_scratch(inc: &IncrementalDetector, dynamic: &DynamicTopology) {
        let scratch = BoundaryDetector::new(inc.config).detect_view(&NetView::new(
            dynamic.topology(),
            dynamic.positions(),
            dynamic.radio_range(),
        ));
        assert_eq!(inc.candidates(), &scratch.candidates[..], "candidates diverged");
        assert_eq!(inc.boundary(), &scratch.boundary[..], "boundary diverged");
        assert_eq!(inc.groups(), &scratch.groups[..], "groups diverged");
        let snap = inc.detection();
        assert_eq!(snap.balls_tested, scratch.balls_tested, "balls_tested diverged");
        assert_eq!(snap.degenerate_nodes, scratch.degenerate_nodes, "degenerates diverged");
        // Fragment sizes against the flood primitive directly.
        let sizes =
            ballfit_wsn::flood::fragment_sizes(dynamic.topology(), inc.config.iff.ttl, |n| {
                scratch.candidates[n]
            });
        assert_eq!(inc.fragments(), &sizes[..], "fragment sizes diverged");
    }

    #[test]
    fn bootstrap_equals_scratch() {
        let pts = box_points(6, 0.8);
        let dynamic = DynamicTopology::new(&pts, 1.0);
        let inc = IncrementalDetector::new(DetectorConfig::default(), &dynamic);
        assert_matches_scratch(&inc, &dynamic);
        assert!(inc.detection().boundary_count() > 0, "box shell must have a boundary");
    }

    #[test]
    fn events_stay_exact_and_report_flips() {
        let pts = box_points(6, 0.8);
        let mut dynamic = DynamicTopology::new(&pts, 1.0);
        let mut inc = IncrementalDetector::new(DetectorConfig::default(), &dynamic);

        // Carve at the box center: leaves promote interior nodes.
        let center = Vec3::new(2.5 * 0.8, 2.5 * 0.8, 2.5 * 0.8);
        let mut order: Vec<NodeId> = dynamic.live_nodes();
        order.sort_by(|&a, &b| {
            dynamic.positions()[a]
                .distance(center)
                .partial_cmp(&dynamic.positions()[b].distance(center))
                .expect("finite distances")
        });
        let victims: Vec<NodeId> = order[..10].to_vec();
        let mut any_promotion = false;
        for &v in &victims {
            let delta = dynamic.apply(&TopologyEvent::Leave { node: v });
            let diff = inc.apply(&dynamic, &delta);
            assert_matches_scratch(&inc, &dynamic);
            for &p in &diff.promoted {
                assert!(inc.boundary()[p]);
                assert!(diff.halo.binary_search(&p).is_ok(), "flip outside reported halo");
            }
            for &d in &diff.demoted {
                assert!(!inc.boundary()[d]);
            }
            any_promotion |= !diff.promoted.is_empty();
        }
        assert!(any_promotion, "carving a cavity must promote hole-boundary nodes");

        // Heal: re-join at the carved positions (fresh slots).
        for &v in &victims {
            let delta = dynamic.apply(&TopologyEvent::Join { position: dynamic.positions()[v] });
            let diff = inc.apply(&dynamic, &delta);
            let _ = diff;
            assert_matches_scratch(&inc, &dynamic);
        }

        // Drift a surface node far away and back.
        let surface = order[order.len() - 1];
        let home = dynamic.positions()[surface];
        for to in [home + Vec3::new(3.0, 0.0, 0.0), home] {
            let delta = dynamic.apply(&TopologyEvent::Move { node: surface, to });
            inc.apply(&dynamic, &delta);
            assert_matches_scratch(&inc, &dynamic);
        }
    }

    #[test]
    fn checkpoint_restore_resumes_byte_identically() {
        let pts = box_points(5, 0.8);
        let mut dynamic = DynamicTopology::new(&pts, 1.0);
        let mut inc = IncrementalDetector::new(DetectorConfig::default(), &dynamic);

        // Perturb, checkpoint mid-stream, then replay the tail on both
        // the original and the restored detector.
        let delta = dynamic.apply(&TopologyEvent::Leave { node: 31 });
        inc.apply(&dynamic, &delta);
        let checkpoint = inc.checkpoint();
        let mut revived =
            IncrementalDetector::restore(&checkpoint, ballfit_par::Parallelism::sequential());
        assert_eq!(revived.detection(), inc.detection(), "restore must be lossless");
        assert_eq!(revived.fragments(), inc.fragments());

        let tail = [
            TopologyEvent::Leave { node: 32 },
            TopologyEvent::Join { position: pts[31] },
            TopologyEvent::Move { node: 40, to: pts[40] + Vec3::new(0.4, 0.0, 0.0) },
        ];
        for ev in &tail {
            let delta = dynamic.apply(ev);
            let a = inc.apply(&dynamic, &delta);
            let b = revived.apply(&dynamic, &delta);
            assert_eq!(a, b, "replayed diffs diverged");
        }
        assert_eq!(revived.detection(), inc.detection());
        assert_matches_scratch(&revived, &dynamic);
    }

    #[test]
    fn quiet_diff_for_a_far_away_join() {
        let pts = box_points(5, 0.8);
        let mut dynamic = DynamicTopology::new(&pts, 1.0);
        let mut inc = IncrementalDetector::new(DetectorConfig::default(), &dynamic);
        // An isolated joiner far from the box: degenerate frame, candidate
        // by default, but a 1-node fragment never survives θ=20 — so no
        // boundary change, only the halo bookkeeping.
        let delta = dynamic.apply(&TopologyEvent::Join { position: Vec3::new(50.0, 50.0, 50.0) });
        let diff = inc.apply(&dynamic, &delta);
        assert!(diff.is_quiet(), "{diff:?}");
        assert_eq!(diff.halo, vec![dynamic.len() - 1]);
        assert_matches_scratch(&inc, &dynamic);
    }
}
