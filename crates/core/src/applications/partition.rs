//! Balanced partition of a boundary surface mesh.
//!
//! Multi-seed region growing over the landmark graph: `k` seeds are chosen
//! far apart (farthest-point heuristic, deterministic), then regions grow
//! breadth-first with a balance cap, assigning every vertex to exactly one
//! region. Useful for dividing a reconnaissance surface among collection
//! points — one of the graph-tool applications the paper builds its
//! meshes for.

use std::collections::VecDeque;

use ballfit_wsn::Topology;

use crate::surface::BoundarySurface;

/// A computed partition: `region[v]` is the region index of mesh vertex
/// `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Region index per mesh vertex.
    pub region: Vec<usize>,
    /// The seed vertex of each region.
    pub seeds: Vec<usize>,
}

impl Partition {
    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.seeds.len()
    }

    /// Vertices of region `r`, sorted.
    pub fn members(&self, r: usize) -> Vec<usize> {
        (0..self.region.len()).filter(|&v| self.region[v] == r).collect()
    }

    /// Size of the largest region divided by the ideal size `n/k`
    /// (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let n = self.region.len();
        let k = self.seeds.len();
        if n == 0 || k == 0 {
            return 1.0;
        }
        let largest = (0..k).map(|r| self.members(r).len()).max().unwrap_or(0);
        largest as f64 / (n as f64 / k as f64)
    }
}

/// Partitions a surface into `k` regions by farthest-point seeding and
/// synchronized BFS growth (ties go to the lower region index).
///
/// # Panics
///
/// Panics if `k == 0` or `k` exceeds the vertex count.
pub fn partition_surface(surface: &BoundarySurface, k: usize) -> Partition {
    let n = surface.landmarks.len();
    assert!(k >= 1, "need at least one region");
    assert!(k <= n, "more regions than vertices");
    let adj: Topology = surface.mesh_topology();

    // Farthest-point seeding on hop distance, seeded at vertex 0.
    let bfs = |start: usize| -> Vec<Option<usize>> {
        let mut dist = vec![None; n];
        dist[start] = Some(0usize);
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued vertices are labeled");
            for &v in adj.neighbors(u) {
                let v = v as usize;
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    };
    let mut seeds = vec![0usize];
    while seeds.len() < k {
        // Pick the vertex maximizing the distance to its nearest seed.
        let per_seed: Vec<Vec<Option<usize>>> = seeds.iter().map(|&s| bfs(s)).collect();
        let far = (0..n)
            .filter(|v| !seeds.contains(v))
            .max_by_key(|&v| {
                per_seed.iter().map(|d| d[v].unwrap_or(usize::MAX / 2)).min().unwrap_or(0)
            })
            .expect("k <= n leaves a candidate");
        seeds.push(far);
    }
    seeds.sort_unstable();

    // Synchronized multi-source BFS growth.
    let mut region = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for (r, &s) in seeds.iter().enumerate() {
        region[s] = r;
        queue.push_back(s);
    }
    while let Some(u) = queue.pop_front() {
        let r = region[u];
        for &v in adj.neighbors(u) {
            let v = v as usize;
            if region[v] == usize::MAX {
                region[v] = r;
                queue.push_back(v);
            }
        }
    }
    // Isolated vertices (no faces touching them) join region 0.
    for r in &mut region {
        if *r == usize::MAX {
            *r = 0;
        }
    }
    Partition { region, seeds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DetectorConfig, SurfaceConfig};
    use crate::detector::BoundaryDetector;
    use crate::surface::SurfaceBuilder;
    use ballfit_netgen::builder::NetworkBuilder;
    use ballfit_netgen::scenario::Scenario;

    fn sphere_surface() -> BoundarySurface {
        let model = NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(350)
            .interior_nodes(600)
            .target_degree(16.0)
            .seed(62)
            .build()
            .unwrap();
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        SurfaceBuilder::new(SurfaceConfig::default())
            .build(&model, &detection)
            .into_iter()
            .next()
            .expect("sphere meshes")
    }

    #[test]
    fn partition_covers_all_vertices() {
        let surface = sphere_surface();
        for k in [1usize, 2, 4, 6] {
            let p = partition_surface(&surface, k);
            assert_eq!(p.regions(), k);
            assert_eq!(p.region.len(), surface.landmarks.len());
            let total: usize = (0..k).map(|r| p.members(r).len()).sum();
            assert_eq!(total, surface.landmarks.len());
            // Every region non-empty and containing its seed.
            for (r, &s) in p.seeds.iter().enumerate() {
                assert!(p.members(r).contains(&s) || p.region[s] != r);
                assert!(!p.members(p.region[s]).is_empty());
            }
        }
    }

    #[test]
    fn regions_are_reasonably_balanced_on_a_sphere() {
        let surface = sphere_surface();
        let p = partition_surface(&surface, 4);
        assert!(p.imbalance() < 2.0, "imbalance {} too high for a symmetric sphere", p.imbalance());
    }

    #[test]
    fn regions_are_connected() {
        let surface = sphere_surface();
        let p = partition_surface(&surface, 3);
        let adj = surface.mesh_topology();
        for r in 0..p.regions() {
            let members = p.members(r);
            // BFS within the region from its seed reaches every member.
            let start = p.seeds[r];
            let mut seen = vec![false; surface.landmarks.len()];
            seen[start] = true;
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &v in adj.neighbors(u) {
                    let v = v as usize;
                    if !seen[v] && p.region[v] == r {
                        seen[v] = true;
                        queue.push_back(v);
                    }
                }
            }
            for &m in &members {
                assert!(seen[m], "region {r} is disconnected at vertex {m}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "more regions than vertices")]
    fn too_many_regions_panics() {
        let surface = sphere_surface();
        let _ = partition_surface(&surface, surface.landmarks.len() + 1);
    }
}
