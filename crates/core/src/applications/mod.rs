//! Applications on the constructed boundary surfaces.
//!
//! The paper's second objective is to "construct locally planarized
//! 2-manifold surfaces [...] in order to enable available graph theory
//! tools to be applied on 3D surfaces, such as embedding, localization,
//! partition, and greedy routing among many others" (Sec. I-B). This
//! module implements two of those motivating applications on the landmark
//! meshes produced by [`crate::surface::SurfaceBuilder`], closing the loop
//! from raw connectivity to usable surface infrastructure:
//!
//! * [`routing`] — greedy geographic routing over the mesh's landmark
//!   graph, with success-rate and stretch accounting (the well-behaved
//!   2-manifold structure is what makes greedy routing viable).
//! * [`partition`] — balanced multi-seed region growing over the mesh,
//!   e.g. for assigning surface regions to collection points.

pub mod partition;
pub mod routing;
