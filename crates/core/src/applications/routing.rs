//! Greedy geographic routing over a boundary surface mesh.
//!
//! Each step forwards to the mesh neighbor strictly closest (Euclidean)
//! to the destination; routing fails at a local minimum (no neighbor
//! closer than the current vertex). On a well-formed 2-manifold landmark
//! mesh of a convex-ish boundary greedy routing almost always succeeds —
//! one of the paper's motivations for building the mesh at all.

use ballfit_geom::Vec3;
use ballfit_wsn::Topology;

use crate::surface::BoundarySurface;

/// Outcome of one greedy route.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RouteOutcome {
    /// Destination reached; the vertex path is recorded (mesh-vertex
    /// indices, endpoints included).
    Delivered {
        /// Visited mesh-vertex indices from source to destination.
        path: Vec<usize>,
    },
    /// Stuck at a local minimum before reaching the destination.
    Stuck {
        /// Vertices visited before getting stuck.
        path: Vec<usize>,
    },
}

impl RouteOutcome {
    /// `true` for a delivered route.
    pub fn is_delivered(&self) -> bool {
        matches!(self, RouteOutcome::Delivered { .. })
    }

    /// Hop count of the traversed path (delivered or not).
    pub fn hops(&self) -> usize {
        match self {
            RouteOutcome::Delivered { path } | RouteOutcome::Stuck { path } => {
                path.len().saturating_sub(1)
            }
        }
    }
}

/// Greedy router over a [`BoundarySurface`]'s landmark mesh.
#[derive(Debug, Clone)]
pub struct GreedyRouter {
    positions: Vec<Vec3>,
    mesh: Topology,
}

impl GreedyRouter {
    /// Builds the router from a constructed surface (mesh-vertex indices
    /// are positions in `surface.landmarks`). The mesh adjacency is the
    /// shared CSR [`Topology`] from [`BoundarySurface::mesh_topology`].
    pub fn new(surface: &BoundarySurface) -> Self {
        let positions = surface.mesh.vertices().to_vec();
        let mesh = surface.mesh_topology();
        GreedyRouter { positions, mesh }
    }

    /// Number of routable vertices.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when the mesh has no vertices.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Routes greedily from vertex `from` to vertex `to`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn route(&self, from: usize, to: usize) -> RouteOutcome {
        assert!(from < self.len() && to < self.len(), "vertex out of range");
        let target = self.positions[to];
        let mut path = vec![from];
        let mut current = from;
        // The strict-progress rule bounds the walk by the vertex count.
        while current != to {
            let here = self.positions[current].distance_squared(target);
            let next = self
                .mesh
                .neighbors(current)
                .iter()
                .map(|&n| n as usize)
                .map(|n| (self.positions[n].distance_squared(target), n))
                .filter(|&(d, _)| d < here)
                .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            match next {
                Some((_, n)) => {
                    path.push(n);
                    current = n;
                }
                None => return RouteOutcome::Stuck { path },
            }
        }
        RouteOutcome::Delivered { path }
    }

    /// Shortest-path hop distance on the mesh (for stretch computation);
    /// `None` if unreachable.
    pub fn mesh_hops(&self, from: usize, to: usize) -> Option<usize> {
        let mut dist = vec![None; self.len()];
        dist[from] = Some(0usize);
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(u) = queue.pop_front() {
            if u == to {
                return dist[to];
            }
            let du = dist[u].expect("queued nodes have distances");
            for &v in self.mesh.neighbors(u) {
                let v = v as usize;
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist[to]
    }
}

/// Aggregate routing statistics over all ordered vertex pairs (or a
/// deterministic sample of `max_pairs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingStats {
    /// Routed pairs.
    pub pairs: usize,
    /// Pairs delivered greedily.
    pub delivered: usize,
    /// Mean stretch (greedy hops / shortest hops) over delivered pairs
    /// with a nonzero shortest path; 0 when no such pair exists.
    pub mean_stretch: f64,
}

impl RoutingStats {
    /// Delivery success rate in [0, 1]; 1.0 for zero pairs.
    pub fn success_rate(&self) -> f64 {
        if self.pairs == 0 {
            1.0
        } else {
            self.delivered as f64 / self.pairs as f64
        }
    }
}

/// Routes a deterministic sample of vertex pairs and aggregates the
/// outcome. Pairs are taken in row-major order `(i, j), i ≠ j` up to
/// `max_pairs`.
pub fn evaluate_routing(router: &GreedyRouter, max_pairs: usize) -> RoutingStats {
    let n = router.len();
    let mut pairs = 0usize;
    let mut delivered = 0usize;
    let mut stretch_sum = 0.0;
    let mut stretch_count = 0usize;
    'outer: for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if pairs >= max_pairs {
                break 'outer;
            }
            pairs += 1;
            let outcome = router.route(i, j);
            if outcome.is_delivered() {
                delivered += 1;
                if let Some(opt) = router.mesh_hops(i, j) {
                    if opt > 0 {
                        stretch_sum += outcome.hops() as f64 / opt as f64;
                        stretch_count += 1;
                    }
                }
            }
        }
    }
    RoutingStats {
        pairs,
        delivered,
        mean_stretch: if stretch_count == 0 { 0.0 } else { stretch_sum / stretch_count as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DetectorConfig, SurfaceConfig};
    use crate::detector::BoundaryDetector;
    use crate::surface::SurfaceBuilder;
    use ballfit_netgen::builder::NetworkBuilder;
    use ballfit_netgen::scenario::Scenario;

    fn sphere_surface() -> BoundarySurface {
        let model = NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(350)
            .interior_nodes(600)
            .target_degree(16.0)
            .seed(61)
            .build()
            .unwrap();
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        SurfaceBuilder::new(SurfaceConfig::default())
            .build(&model, &detection)
            .into_iter()
            .next()
            .expect("sphere meshes")
    }

    #[test]
    fn greedy_routing_on_a_sphere_mesh_mostly_delivers() {
        let surface = sphere_surface();
        let router = GreedyRouter::new(&surface);
        assert!(!router.is_empty());
        let stats = evaluate_routing(&router, 500);
        assert!(stats.pairs > 100);
        assert!(
            stats.success_rate() > 0.9,
            "greedy delivery too low: {:.1}% of {} pairs",
            100.0 * stats.success_rate(),
            stats.pairs
        );
        assert!(stats.mean_stretch >= 1.0 || stats.delivered == 0);
        assert!(stats.mean_stretch < 2.5, "stretch {}", stats.mean_stretch);
    }

    #[test]
    fn route_to_self_is_trivial() {
        let surface = sphere_surface();
        let router = GreedyRouter::new(&surface);
        let out = router.route(0, 0);
        assert!(out.is_delivered());
        assert_eq!(out.hops(), 0);
    }

    #[test]
    fn delivered_paths_are_mesh_walks_with_strict_progress() {
        let surface = sphere_surface();
        let router = GreedyRouter::new(&surface);
        for (a, b) in [(0usize, 5usize), (1, 9), (3, 7)] {
            if a >= router.len() || b >= router.len() {
                continue;
            }
            if let RouteOutcome::Delivered { path } = router.route(a, b) {
                assert_eq!(path[0], a);
                assert_eq!(*path.last().unwrap(), b);
                let target = surface.mesh.vertices()[b];
                for w in path.windows(2) {
                    let d0 = surface.mesh.vertices()[w[0]].distance(target);
                    let d1 = surface.mesh.vertices()[w[1]].distance(target);
                    assert!(d1 < d0, "no progress at step {w:?}");
                }
            }
        }
    }

    #[test]
    fn mesh_hops_bfs() {
        let surface = sphere_surface();
        let router = GreedyRouter::new(&surface);
        assert_eq!(router.mesh_hops(0, 0), Some(0));
        // Neighbors are one hop.
        if let Some(&n) =
            surface.edges.iter().find(|&&(a, _)| a == surface.landmarks[0]).map(|(_, b)| b)
        {
            let bi = surface.landmarks.binary_search(&n).unwrap();
            assert_eq!(router.mesh_hops(0, bi), Some(1));
        }
    }
}
