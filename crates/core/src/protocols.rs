//! Message-passing executions of the pipeline's localized protocols.
//!
//! The centralized functions in this crate ([`crate::detector`],
//! [`crate::iff`], [`crate::grouping`], [`crate::landmarks`]) are
//! *centralized-equivalent* executions of distributed algorithms. This
//! module provides the genuine message-passing versions on the
//! [`ballfit_wsn::sim`] round engine, with full message accounting. The
//! test-suite (and the `protocol_audit` experiment binary) asserts that
//! both executions produce identical outputs — evidence that the paper's
//! "localized, one-hop information only" claim holds for this
//! implementation.
//!
//! Protocols provided:
//!
//! * [`UbfProtocol`] — one round of neighbor-table exchange, then local
//!   MDS + Unit Ball Fitting per node (Algorithm 1).
//! * [`ballfit_wsn::flood::FragmentFlood`] — IFF's scoped flooding
//!   (already hosted in the substrate crate).
//! * [`GroupingProtocol`] — min-ID label flooding over the boundary
//!   subgraph (boundary grouping, Sec. II-B).
//! * [`LandmarkElection`] — iterated local-minimum MIS election in the
//!   (k−1)-power of the boundary subgraph, converging to the same
//!   lexicographically-first landmark set as the greedy reference.
//!
//! For unreliable radios ([`ballfit_wsn::faults::FaultPlan`]) the module
//! also provides hardened variants: [`HardenedUbf`] (ack/retransmit table
//! exchange) and [`HardenedGrouping`] (evidence-tracked label repair),
//! plus [`ballfit_wsn::flood::HardenedFragmentFlood`] in the substrate
//! crate. All retransmission follows the exponential [`Backoff`] schedule
//! with a bounded per-neighbor budget — there is no fixed worst-case
//! re-broadcast horizon. On a perfect radio each hardened protocol
//! produces exactly the same outputs as its plain counterpart (and, for
//! grouping, the same round count); the runners return
//! [`ConvergenceFailure`] instead of asserting, so truncated runs are
//! loud in release builds too.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ballfit_mds::local::{embed_local, LocalDistances};
use ballfit_netgen::model::NetworkModel;
use ballfit_obs::{MsgBytes, Trace, TraceEvent};
use ballfit_wsn::faults::FaultPlan;
use ballfit_wsn::sim::{Ctx, Protocol, RunStats, Simulator};
use ballfit_wsn::{NodeId, Topology};

use crate::config::{CoordinateSource, UbfConfig};
use crate::ubf::ubf_test;
use crate::view::NetView;

/// A protocol run stopped at its round budget without reaching quiescence:
/// the reported outputs would be truncated, so runners return this error
/// instead of wrong flags. (The seed repo `debug_assert!`ed quiescence,
/// which vanishes in release builds — a silent-failure mode.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceFailure {
    /// Which protocol failed (`"ubf"`, `"grouping"`, `"landmark"`).
    pub protocol: &'static str,
    /// Rounds executed before giving up.
    pub rounds: usize,
    /// Messages sent before giving up.
    pub messages: u64,
}

impl fmt::Display for ConvergenceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} protocol failed to converge within {} rounds ({} messages sent)",
            self.protocol, self.rounds, self.messages
        )
    }
}

impl std::error::Error for ConvergenceFailure {}

fn require_quiescent(
    stats: RunStats,
    protocol: &'static str,
) -> Result<RunStats, ConvergenceFailure> {
    if stats.quiescent {
        Ok(stats)
    } else {
        Err(ConvergenceFailure { protocol, rounds: stats.rounds, messages: stats.messages })
    }
}

/// Adaptive retransmission policy of the hardened protocols: after an
/// initial quiet period of `first` rounds a pending retransmission fires,
/// and the cooldown doubles on every subsequent attempt (capped at
/// `cap`), up to `attempts` fires total. The short first countdown keeps
/// repair latency low when something *was* lost, while the exponential
/// tail means a fault-free exchange quiesces as soon as the success
/// evidence arrives — nobody waits out a worst-case horizon — and a
/// genuinely dead link drains a bounded budget instead of re-sending
/// forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Quiet rounds before the first retransmission fires.
    pub first: usize,
    /// Ceiling for the doubling cooldown, in rounds.
    pub cap: usize,
    /// Maximum number of retransmissions (beyond the first send).
    pub attempts: u32,
}

impl Default for Backoff {
    /// Cooldowns 2, 4, 8, 16, 16, …: a schedule that survives ≥ 30% link
    /// loss with high probability (failure needs all `attempts + 1`
    /// copies dropped).
    fn default() -> Self {
        Backoff { first: 2, cap: 16, attempts: 8 }
    }
}

impl Backoff {
    /// Upper bound on the rounds a full retry schedule can span: the
    /// initial countdown plus every capped exponential cooldown. Runners
    /// size their hang-stop budgets from this.
    pub fn worst_case_span(&self) -> usize {
        self.first + (self.attempts as usize + 1) * (self.cap.max(1) + 1)
    }
}

/// Per-node state of the distributed UBF phase.
///
/// Round 0: every node broadcasts its measured-distance table (one entry
/// per radio neighbor). Round 1: tables arrive; each node now knows the
/// measured distance for every mutually-adjacent pair within its closed
/// neighborhood and runs step (I) local embedding + steps (II–III) ball
/// tests locally. No further communication — UBF is a 1-round protocol.
#[derive(Debug, Clone)]
pub struct UbfProtocol {
    id: NodeId,
    own_table: Vec<(NodeId, f64)>,
    received: BTreeMap<NodeId, Vec<(NodeId, f64)>>,
}

impl UbfProtocol {
    /// Builds the per-node state: `own_table` holds the node's measured
    /// distances to each radio neighbor.
    pub fn new(id: NodeId, own_table: Vec<(NodeId, f64)>) -> Self {
        UbfProtocol { id, own_table, received: BTreeMap::new() }
    }

    /// Convenience: constructs all per-node states for a model under a
    /// coordinate source (which fixes the measurement oracle).
    pub fn for_model(model: &NetworkModel, source: &CoordinateSource) -> Vec<UbfProtocol> {
        Self::for_view(&NetView::from_model(model), source)
    }

    /// [`UbfProtocol::for_model`] over a borrowed [`NetView`] — the
    /// shared constructor. A view and its model measure identically
    /// (same oracle construction), so the two entry points build
    /// byte-identical tables; the view form is what backend adapters
    /// (`ballfit-backends`) use to price the exchange on any topology.
    pub fn for_view(view: &NetView<'_>, source: &CoordinateSource) -> Vec<UbfProtocol> {
        let topo = view.topology();
        (0..view.len())
            .map(|i| {
                let table = topo
                    .neighbors(i)
                    .iter()
                    .map(|&j| {
                        let j = j as NodeId;
                        let d = match source {
                            CoordinateSource::GroundTruth => view.true_distance(i, j),
                            CoordinateSource::LocalMds { error, noise_seed, .. } => view
                                .oracle(*error, *noise_seed)
                                .measure(i, j, view.true_distance(i, j)),
                        };
                        (j, d)
                    })
                    .collect();
                UbfProtocol::new(i, table)
            })
            .collect()
    }

    /// After the run: decide boundary membership from the collected
    /// tables, exactly as the centralized detector does.
    ///
    /// For [`CoordinateSource::GroundTruth`] the centralized path uses true
    /// positions directly; the protocol only ever sees distances, so it
    /// embeds them — the frames are isometric and the outcome identical.
    pub fn decide(&self, radio_range: f64, cfg: &UbfConfig, source: &CoordinateSource) -> bool {
        decide_from_tables(self.id, &self.own_table, &self.received, radio_range, cfg, source)
    }
}

/// The UBF decision from collected neighbor tables: local embedding of the
/// closed neighborhood, then the ball test — exactly as the centralized
/// detector computes it. Shared by [`UbfProtocol`] and [`HardenedUbf`].
fn decide_from_tables(
    id: NodeId,
    own_table: &[(NodeId, f64)],
    received: &BTreeMap<NodeId, Vec<(NodeId, f64)>>,
    radio_range: f64,
    cfg: &UbfConfig,
    source: &CoordinateSource,
) -> bool {
    // Closed neighborhood in ascending ID order (self + neighbors).
    let mut members: Vec<NodeId> = own_table.iter().map(|&(j, _)| j).collect();
    members.push(id);
    members.sort_unstable();
    if members.len() < 2 {
        return cfg.degenerate_is_boundary;
    }
    let index: BTreeMap<NodeId, usize> = members.iter().enumerate().map(|(a, &m)| (m, a)).collect();
    let mut table = LocalDistances::new(members.len());
    let mut add = |a: NodeId, b: NodeId, d: f64| {
        table.set(index[&a], index[&b], d);
    };
    for &(j, d) in own_table {
        add(id, j, d);
    }
    for (&j, jt) in received {
        for &(k, d) in jt {
            if k != id && index.contains_key(&k) {
                add(j, k, d);
            }
        }
    }
    let Ok(frame) = embed_local(&table, source.frame_config()) else {
        return cfg.degenerate_is_boundary;
    };
    let self_index = index[&id];
    ubf_test(&frame.coords, self_index, radio_range, cfg).is_boundary
}

impl Protocol for UbfProtocol {
    type Msg = Vec<(NodeId, f64)>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        ctx.broadcast(self.own_table.clone());
    }

    fn on_message(&mut self, from: NodeId, msg: &Self::Msg, _ctx: &mut Ctx<'_, Self::Msg>) {
        self.received.insert(from, msg.clone());
    }
}

/// Runs the distributed UBF phase end to end, returning the per-node
/// boundary-candidate flags and the message count.
///
/// # Errors
///
/// [`ConvergenceFailure`] if the exchange does not quiesce within the
/// round budget (cannot happen on a perfect radio; returning the flags
/// anyway would silently report truncated state).
pub fn run_ubf_protocol(
    model: &NetworkModel,
    cfg: &UbfConfig,
    source: &CoordinateSource,
) -> Result<(Vec<bool>, u64), ConvergenceFailure> {
    run_ubf_protocol_traced(model, cfg, source, &mut Trace::disabled())
}

/// [`run_ubf_protocol`] with structured tracing: the whole exchange runs
/// inside a `"ubf"` span, so [`ballfit_obs::summary::summarize`] lands
/// its message/byte accounting in the same row as the detector's
/// ball-test counts. With [`Trace::disabled`] this *is*
/// `run_ubf_protocol`.
///
/// # Errors
///
/// [`ConvergenceFailure`] as for [`run_ubf_protocol`].
pub fn run_ubf_protocol_traced(
    model: &NetworkModel,
    cfg: &UbfConfig,
    source: &CoordinateSource,
    trace: &mut Trace,
) -> Result<(Vec<bool>, u64), ConvergenceFailure> {
    run_ubf_protocol_view_traced(&NetView::from_model(model), cfg, source, trace)
}

/// [`run_ubf_protocol_traced`] over a borrowed [`NetView`] — the shared
/// runner. Detection backends use this form to execute the exchange on
/// views that have no backing [`NetworkModel`] (e.g. a churned
/// `DynamicTopology`); the model entry point is the
/// `NetView::from_model` special case.
///
/// # Errors
///
/// [`ConvergenceFailure`] as for [`run_ubf_protocol`].
pub fn run_ubf_protocol_view_traced(
    view: &NetView<'_>,
    cfg: &UbfConfig,
    source: &CoordinateSource,
    trace: &mut Trace,
) -> Result<(Vec<bool>, u64), ConvergenceFailure> {
    let states = UbfProtocol::for_view(view, source);
    let mut sim = Simulator::new(view.topology(), |id| states[id].clone());
    trace.open("ubf");
    let stats = sim.run_traced(4, trace);
    trace.close();
    let stats = require_quiescent(stats, "ubf")?;
    let flags =
        (0..view.len()).map(|i| sim.node(i).decide(view.radio_range(), cfg, source)).collect();
    Ok((flags, stats.messages))
}

/// Messages of the hardened UBF exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum UbfMsg {
    /// A node's measured-distance table (possibly a retransmission).
    Table(Vec<(NodeId, f64)>),
    /// Acknowledges receipt of the sender's table.
    Ack,
}

impl MsgBytes for UbfMsg {
    /// One tag byte, plus the table payload for [`UbfMsg::Table`].
    fn msg_bytes(&self) -> u64 {
        match self {
            UbfMsg::Table(table) => 1 + table.msg_bytes(),
            UbfMsg::Ack => 1,
        }
    }
}

/// Loss-tolerant UBF table exchange: tables are acknowledged, and a node
/// retransmits (unicast) to every neighbor that has not acked, on the
/// exponential [`Backoff`] schedule. Duplicate tables are idempotent
/// (last write wins with identical content) and re-trigger the ack, so
/// lost acks also heal. On a perfect radio the schedule is: tables round
/// 0, acks round 1, done — no retransmission ever fires, and the
/// decision matches [`UbfProtocol`] exactly.
#[derive(Debug, Clone)]
pub struct HardenedUbf {
    inner: UbfProtocol,
    backoff: Backoff,
    acked: BTreeSet<NodeId>,
    attempts_left: u32,
    cooldown: usize,
    delay: usize,
}

impl HardenedUbf {
    /// Wraps a [`UbfProtocol`] state with the retransmission policy.
    pub fn new(inner: UbfProtocol, backoff: Backoff) -> Self {
        HardenedUbf {
            inner,
            backoff,
            acked: BTreeSet::new(),
            attempts_left: backoff.attempts,
            cooldown: backoff.first,
            delay: backoff.first,
        }
    }

    /// Constructs all per-node states (see [`UbfProtocol::for_model`]).
    pub fn for_model(
        model: &NetworkModel,
        source: &CoordinateSource,
        backoff: Backoff,
    ) -> Vec<HardenedUbf> {
        UbfProtocol::for_model(model, source)
            .into_iter()
            .map(|inner| HardenedUbf::new(inner, backoff))
            .collect()
    }

    /// The boundary decision from whatever tables were collected (see
    /// [`UbfProtocol::decide`]). A table lost to an exhausted retry budget
    /// degrades the decision locally rather than failing the run.
    pub fn decide(&self, radio_range: f64, cfg: &UbfConfig, source: &CoordinateSource) -> bool {
        self.inner.decide(radio_range, cfg, source)
    }

    /// Retransmissions this node actually performed (spent retry budget).
    pub fn retransmissions(&self) -> u64 {
        u64::from(self.backoff.attempts - self.attempts_left)
    }

    /// True if the retry budget ran out with some neighbor still unacked:
    /// the node decided from a partial table set (degraded coverage).
    pub fn exhausted(&self) -> bool {
        self.attempts_left == 0 && !self.fully_acked()
    }

    fn fully_acked(&self) -> bool {
        self.acked.len() >= self.inner.own_table.len()
    }
}

impl Protocol for HardenedUbf {
    type Msg = UbfMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        ctx.broadcast(UbfMsg::Table(self.inner.own_table.clone()));
    }

    fn on_message(&mut self, from: NodeId, msg: &Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
        match msg {
            UbfMsg::Table(table) => {
                self.inner.received.insert(from, table.clone());
                // Ack every copy: if the previous ack was dropped, the
                // sender retransmits and this one answers it.
                ctx.send(from, UbfMsg::Ack);
            }
            UbfMsg::Ack => {
                self.acked.insert(from);
            }
        }
    }

    fn on_round_end(&mut self, _round: usize, ctx: &mut Ctx<'_, Self::Msg>) {
        if self.fully_acked() || self.attempts_left == 0 {
            return;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return;
        }
        self.delay = (self.delay * 2).min(self.backoff.cap.max(1));
        self.cooldown = self.delay;
        self.attempts_left -= 1;
        for &(j, _) in &self.inner.own_table {
            if !self.acked.contains(&j) {
                ctx.send(j, UbfMsg::Table(self.inner.own_table.clone()));
            }
        }
    }

    fn wants_tick(&self) -> bool {
        // Keep the clock running while retransmissions are still possible;
        // once the budget is spent the node accepts whatever it has.
        self.attempts_left > 0 && !self.fully_acked()
    }
}

/// Runs the hardened UBF phase on an unreliable radio. Nodes that are
/// down when the run ends (or whose neighbors exhausted their retry
/// budget) decide from partial tables.
///
/// # Errors
///
/// [`ConvergenceFailure`] if retransmissions still could not quiesce the
/// exchange within the (generous) round budget.
pub fn run_hardened_ubf(
    model: &NetworkModel,
    cfg: &UbfConfig,
    source: &CoordinateSource,
    backoff: Backoff,
    plan: &FaultPlan,
) -> Result<(Vec<bool>, u64), ConvergenceFailure> {
    run_hardened_ubf_traced(model, cfg, source, backoff, plan, &mut Trace::disabled())
}

/// [`run_hardened_ubf`] with structured tracing: a `"hardened-ubf"`
/// span around the faulty run, plus one [`TraceEvent::Retransmits`]
/// record per node that spent retry budget (silent nodes are omitted to
/// keep traces proportional to actual repair work).
///
/// # Errors
///
/// [`ConvergenceFailure`] as for [`run_hardened_ubf`].
pub fn run_hardened_ubf_traced(
    model: &NetworkModel,
    cfg: &UbfConfig,
    source: &CoordinateSource,
    backoff: Backoff,
    plan: &FaultPlan,
    trace: &mut Trace,
) -> Result<(Vec<bool>, u64), ConvergenceFailure> {
    let states = HardenedUbf::for_model(model, source, backoff);
    let mut sim = Simulator::new(model.topology(), |id| states[id].clone());
    let budget = 4 + backoff.worst_case_span() + plan.round_slack();
    trace.open("hardened-ubf");
    let stats = sim.run_with_faults_traced(budget, plan, trace);
    for node in 0..model.len() {
        let resends = sim.node(node).retransmissions();
        if resends > 0 {
            trace.event(TraceEvent::Retransmits { node, resends });
        }
    }
    trace.close();
    let stats = require_quiescent(stats, "ubf")?;
    let flags =
        (0..model.len()).map(|i| sim.node(i).decide(model.radio_range(), cfg, source)).collect();
    Ok((flags, stats.messages))
}

/// Min-ID label flooding over the boundary subgraph: after quiescence,
/// every boundary node's label is the smallest node ID of its boundary
/// component — the distributed form of [`crate::grouping`].
#[derive(Debug, Clone)]
pub struct GroupingProtocol {
    member: bool,
    label: Option<NodeId>,
}

impl GroupingProtocol {
    /// Creates per-node state; `member` marks boundary nodes.
    pub fn new(id: NodeId, member: bool) -> Self {
        GroupingProtocol { member, label: member.then_some(id) }
    }

    /// The component label after the run (`None` for non-members).
    pub fn label(&self) -> Option<NodeId> {
        self.label
    }
}

impl Protocol for GroupingProtocol {
    type Msg = NodeId;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if let Some(l) = self.label {
            ctx.broadcast(l);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {
        if !self.member {
            return;
        }
        // Members are labeled in `new`; a (impossible) missing label just
        // adopts the incoming one — round handlers must not panic.
        if self.label.is_none_or(|current| *msg < current) {
            self.label = Some(*msg);
            ctx.broadcast(*msg);
        }
    }
}

/// Runs boundary grouping distributively; returns per-node component
/// labels (min member ID per component) and the message count.
///
/// # Errors
///
/// [`ConvergenceFailure`] if label flooding does not quiesce within
/// `n + 2` rounds (cannot happen on a perfect radio).
pub fn run_grouping_protocol(
    topo: &Topology,
    boundary: &[bool],
) -> Result<(Vec<Option<NodeId>>, u64), ConvergenceFailure> {
    run_grouping_protocol_traced(topo, boundary, &mut Trace::disabled())
}

/// [`run_grouping_protocol`] with structured tracing: the label flood
/// runs inside a `"grouping"` span. With [`Trace::disabled`] this *is*
/// `run_grouping_protocol`.
///
/// # Errors
///
/// [`ConvergenceFailure`] as for [`run_grouping_protocol`].
pub fn run_grouping_protocol_traced(
    topo: &Topology,
    boundary: &[bool],
    trace: &mut Trace,
) -> Result<(Vec<Option<NodeId>>, u64), ConvergenceFailure> {
    let mut sim = Simulator::new(topo, |id| GroupingProtocol::new(id, boundary[id]));
    trace.open("grouping");
    let stats = sim.run_traced(topo.len() + 2, trace);
    trace.close();
    let stats = require_quiescent(stats, "grouping")?;
    let labels = (0..topo.len()).map(|i| sim.node(i).label()).collect();
    Ok((labels, stats.messages))
}

/// Messages of the hardened grouping exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupMsg {
    /// The sender's current label state (`None` = non-member), broadcast
    /// at start and on every adoption.
    Announce(Option<NodeId>),
    /// Unicast repair probe carrying the sender's label; the receiver
    /// answers with [`GroupMsg::Echo`] whether or not it is a member.
    Repair(NodeId),
    /// Unicast reply to a [`GroupMsg::Repair`] probe.
    Echo(Option<NodeId>),
}

impl MsgBytes for GroupMsg {
    /// One tag byte plus the label payload.
    fn msg_bytes(&self) -> u64 {
        match self {
            GroupMsg::Announce(label) | GroupMsg::Echo(label) => 1 + label.msg_bytes(),
            GroupMsg::Repair(label) => 1 + label.msg_bytes(),
        }
    }
}

/// Per-neighbor repair schedule of [`HardenedGrouping`]: the last label
/// state heard from the neighbor and the backoff state toward it.
#[derive(Debug, Clone)]
struct PeerRepair {
    /// The neighbor's last announced label state, if anything was heard.
    heard: Option<Option<NodeId>>,
    /// Evidence says the neighbor agrees (same label, or a non-member).
    confirmed: bool,
    cooldown: usize,
    delay: usize,
    attempts_left: u32,
}

impl PeerRepair {
    fn armed(backoff: Backoff) -> Self {
        PeerRepair {
            heard: None,
            confirmed: false,
            cooldown: backoff.first,
            delay: backoff.first,
            attempts_left: backoff.attempts,
        }
    }

    /// Fresh evidence (or an adoption) invalidated the old schedule:
    /// restart it with a full budget.
    fn rearm(&mut self, backoff: Backoff) {
        self.confirmed = false;
        self.cooldown = backoff.first;
        self.delay = backoff.first;
        self.attempts_left = backoff.attempts;
    }

    fn pending(&self) -> bool {
        !self.confirmed && self.attempts_left > 0
    }

    fn exhausted(&self) -> bool {
        !self.confirmed && self.attempts_left == 0
    }
}

/// Loss-tolerant boundary grouping with quiescence-aware termination:
/// min-ID label flooding in which every member tracks, per neighbor, the
/// last label state it heard, and unicasts [`GroupMsg::Repair`] probes on
/// the exponential [`Backoff`] schedule to any neighbor not yet confirmed
/// to agree with it. A probe is answered with [`GroupMsg::Echo`] (by
/// non-members too), so one surviving round trip settles the pair in
/// either direction. On a perfect radio the confirming evidence always
/// arrives before the first countdown expires: fault-free runs send zero
/// repair probes and finish in exactly as many rounds as
/// [`GroupingProtocol`] — there is no fixed re-broadcast horizon to wait
/// out. Under loss the per-neighbor budgets bound the total repair
/// traffic; a neighbor whose budget runs out unconfirmed is surfaced via
/// [`HardenedGrouping::exhausted`] instead of being silently wrong.
#[derive(Debug, Clone)]
pub struct HardenedGrouping {
    member: bool,
    label: Option<NodeId>,
    backoff: Backoff,
    peers: BTreeMap<NodeId, PeerRepair>,
    repairs: u64,
    last_round: Option<usize>,
}

impl HardenedGrouping {
    /// Creates per-node state; `member` marks boundary nodes.
    pub fn new(id: NodeId, member: bool, backoff: Backoff) -> Self {
        HardenedGrouping {
            member,
            label: member.then_some(id),
            backoff,
            peers: BTreeMap::new(),
            repairs: 0,
            last_round: None,
        }
    }

    /// The component label after the run (`None` for non-members).
    pub fn label(&self) -> Option<NodeId> {
        self.label
    }

    /// Repair probes this node sent (spent retry budget — the hardening
    /// overhead beyond plain min-label flooding).
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Neighbors whose repair budget ran out without agreement: the
    /// labels across those edges may be stale (degraded coverage).
    pub fn exhausted(&self) -> u64 {
        self.peers.values().filter(|p| p.exhausted()).count() as u64
    }

    /// Records evidence of `from`'s label state and updates the repair
    /// schedule toward it (members only).
    fn note(&mut self, from: NodeId, their: Option<NodeId>, ctx: &mut Ctx<'_, GroupMsg>) {
        if !self.member {
            return;
        }
        let backoff = self.backoff;
        let mut adopt = None;
        let peer = self.peers.entry(from).or_insert_with(|| PeerRepair::armed(backoff));
        peer.heard = Some(their);
        match their {
            None => peer.confirmed = true,
            Some(l) => {
                if self.label.is_none_or(|current| l < current) {
                    adopt = Some(l);
                } else if self.label == Some(l) {
                    peer.confirmed = true;
                } else {
                    // The neighbor is behind: restart the schedule toward
                    // it with a full budget so our label reaches it.
                    peer.rearm(backoff);
                }
            }
        }
        if let Some(l) = adopt {
            self.adopt(l, ctx);
        }
    }

    /// Adopts a smaller label: broadcast it and re-evaluate every repair
    /// schedule against the new value.
    fn adopt(&mut self, label: NodeId, ctx: &mut Ctx<'_, GroupMsg>) {
        self.label = Some(label);
        ctx.broadcast(GroupMsg::Announce(Some(label)));
        let backoff = self.backoff;
        for peer in self.peers.values_mut() {
            let agrees = peer.heard == Some(None) || peer.heard == Some(Some(label));
            if agrees {
                peer.confirmed = true;
            } else {
                peer.rearm(backoff);
            }
        }
    }
}

impl Protocol for HardenedGrouping {
    type Msg = GroupMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        // Everyone announces its state — non-members included, so members
        // can confirm mixed edges without probing them.
        ctx.broadcast(GroupMsg::Announce(self.label));
        if self.member {
            let backoff = self.backoff;
            self.peers = ctx
                .neighbors()
                .iter()
                .map(|&v| (v as NodeId, PeerRepair::armed(backoff)))
                .collect();
        }
    }

    fn on_message(&mut self, from: NodeId, msg: &Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
        match *msg {
            GroupMsg::Announce(their) | GroupMsg::Echo(their) => self.note(from, their, ctx),
            GroupMsg::Repair(l) => {
                self.note(from, Some(l), ctx);
                // Answer every probe — non-members too — so the prober
                // can confirm this edge and stand down.
                ctx.send(from, GroupMsg::Echo(self.label));
            }
        }
    }

    fn on_round_end(&mut self, round: usize, ctx: &mut Ctx<'_, Self::Msg>) {
        if !self.member {
            return;
        }
        // A gap in observed rounds means this node was crashed in between:
        // neighbors may have moved on while it was dark. Re-announce and
        // restart every schedule with a fresh budget.
        let gap = match self.last_round {
            Some(prev) => round > prev + 1,
            None => round > 0,
        };
        if gap {
            ctx.broadcast(GroupMsg::Announce(self.label));
            let backoff = self.backoff;
            for peer in self.peers.values_mut() {
                peer.rearm(backoff);
            }
        }
        self.last_round = Some(round);
        let Some(label) = self.label else { return };
        let cap = self.backoff.cap.max(1);
        let mut fired = 0;
        for (&v, peer) in self.peers.iter_mut() {
            if !peer.pending() {
                continue;
            }
            if peer.cooldown > 0 {
                peer.cooldown -= 1;
                continue;
            }
            peer.delay = (peer.delay * 2).min(cap);
            peer.cooldown = peer.delay;
            peer.attempts_left -= 1;
            fired += 1;
            ctx.send(v, GroupMsg::Repair(label));
        }
        self.repairs += fired;
    }

    fn wants_tick(&self) -> bool {
        self.member && self.peers.values().any(PeerRepair::pending)
    }
}

/// Runs hardened boundary grouping on an unreliable radio. Termination is
/// quiescence-aware — the run ends as soon as no messages are in flight
/// and every repair schedule is confirmed or exhausted — so fault-free
/// runs pay no horizon; the round budget is only a hang-stop sized so
/// even a fully re-armed worst-case schedule can drain.
///
/// # Errors
///
/// [`ConvergenceFailure`] if the run does not quiesce within the budget.
pub fn run_hardened_grouping(
    topo: &Topology,
    boundary: &[bool],
    backoff: Backoff,
    plan: &FaultPlan,
) -> Result<(Vec<Option<NodeId>>, u64), ConvergenceFailure> {
    run_hardened_grouping_traced(topo, boundary, backoff, plan, &mut Trace::disabled())
}

/// [`run_hardened_grouping`] with structured tracing: a
/// `"hardened-grouping"` span around the faulty run, plus one
/// [`TraceEvent::Retransmits`] record per node that sent repair probes
/// (the hardening overhead).
///
/// # Errors
///
/// [`ConvergenceFailure`] as for [`run_hardened_grouping`].
pub fn run_hardened_grouping_traced(
    topo: &Topology,
    boundary: &[bool],
    backoff: Backoff,
    plan: &FaultPlan,
    trace: &mut Trace,
) -> Result<(Vec<Option<NodeId>>, u64), ConvergenceFailure> {
    let mut sim = Simulator::new(topo, |id| HardenedGrouping::new(id, boundary[id], backoff));
    let budget = 2 * topo.len() + 2 * backoff.worst_case_span() + plan.round_slack() + 8;
    trace.open("hardened-grouping");
    let stats = sim.run_with_faults_traced(budget, plan, trace);
    for node in 0..topo.len() {
        let resends = sim.node(node).repairs();
        if resends > 0 {
            trace.event(TraceEvent::Retransmits { node, resends });
        }
    }
    trace.close();
    let stats = require_quiescent(stats, "grouping")?;
    let labels = (0..topo.len()).map(|i| sim.node(i).label()).collect();
    Ok((labels, stats.messages))
}

/// Messages of the landmark election.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandmarkMsg {
    /// "I am undecided this iteration": flooded k−1 hops.
    Probe {
        /// Originating undecided node.
        origin: NodeId,
        /// Remaining forwarding budget.
        ttl: u32,
    },
    /// "I became a landmark": suppresses nodes within k−1 hops.
    Suppress {
        /// The new landmark.
        origin: NodeId,
        /// Remaining forwarding budget.
        ttl: u32,
    },
}

impl MsgBytes for LandmarkMsg {
    /// One tag byte plus the origin id and TTL, for either variant.
    fn msg_bytes(&self) -> u64 {
        match self {
            LandmarkMsg::Probe { origin, ttl } | LandmarkMsg::Suppress { origin, ttl } => {
                1 + origin.msg_bytes() + ttl.msg_bytes()
            }
        }
    }
}

/// Iterated local-minimum landmark election (distributed form of
/// [`crate::landmarks::elect_landmarks`]).
///
/// Each iteration spans `2·(k−1)` rounds: undecided members flood probes
/// for k−1 rounds; a member whose ID is smaller than every probe received
/// becomes a landmark and floods suppression for the next k−1 rounds,
/// deciding its (k−1)-ball to non-landmark. Iterations repeat until all
/// members are decided; the fixed point is the lexicographically-first
/// maximal independent set of the (k−1)-power graph — identical to the
/// greedy centralized election.
#[derive(Debug, Clone)]
pub struct LandmarkElection {
    member: bool,
    k: u32,
    decided: Option<bool>,
    probes_seen: BTreeSet<NodeId>,
    suppress_seen: BTreeSet<NodeId>,
}

impl LandmarkElection {
    /// Creates per-node state; `member` marks this group's boundary nodes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(member: bool, k: u32) -> Self {
        assert!(k >= 1, "landmark spacing k must be at least 1");
        LandmarkElection {
            member,
            k,
            decided: None,
            probes_seen: BTreeSet::new(),
            suppress_seen: BTreeSet::new(),
        }
    }

    /// `Some(true)` if elected landmark, `Some(false)` if suppressed,
    /// `None` if not a member (or the run was truncated).
    pub fn decision(&self) -> Option<bool> {
        if self.member {
            self.decided
        } else {
            None
        }
    }

    fn reach(&self) -> u32 {
        self.k - 1
    }

    fn iteration_len(&self) -> usize {
        2 * self.reach().max(1) as usize
    }

    fn start_iteration(&mut self, ctx: &mut Ctx<'_, LandmarkMsg>, me: NodeId) {
        // Probe dedup is per-iteration for *all* members: decided nodes
        // keep forwarding later iterations' probes.
        self.probes_seen.clear();
        if self.member && self.decided.is_none() && self.reach() > 0 {
            ctx.broadcast(LandmarkMsg::Probe { origin: me, ttl: self.reach() - 1 });
        }
    }
}

impl Protocol for LandmarkElection {
    type Msg = LandmarkMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let me = ctx.node();
        if self.member && self.reach() == 0 {
            // k = 1: everyone is a landmark immediately.
            self.decided = Some(true);
            return;
        }
        self.start_iteration(ctx, me);
    }

    fn on_message(&mut self, _from: NodeId, msg: &Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
        if !self.member {
            return; // probes travel the boundary subgraph only
        }
        match *msg {
            LandmarkMsg::Probe { origin, ttl } => {
                if origin != ctx.node() && self.probes_seen.insert(origin) && ttl > 0 {
                    ctx.broadcast(LandmarkMsg::Probe { origin, ttl: ttl - 1 });
                }
            }
            LandmarkMsg::Suppress { origin, ttl } => {
                if self.suppress_seen.insert(origin) {
                    if self.decided.is_none() {
                        self.decided = Some(false);
                    }
                    if ttl > 0 {
                        ctx.broadcast(LandmarkMsg::Suppress { origin, ttl: ttl - 1 });
                    }
                }
            }
        }
    }

    fn on_round_end(&mut self, round: usize, ctx: &mut Ctx<'_, Self::Msg>) {
        if !self.member || self.reach() == 0 {
            return;
        }
        let me = ctx.node();
        let len = self.iteration_len();
        let phase = (round + 1) % len;
        let half = self.reach().max(1) as usize;
        if phase == half {
            // Probe phase complete: local minima become landmarks.
            if self.decided.is_none() && self.probes_seen.iter().all(|&origin| origin > me) {
                self.decided = Some(true);
                ctx.broadcast(LandmarkMsg::Suppress { origin: me, ttl: self.reach() - 1 });
            }
        } else if phase == 0 {
            // Suppress phase complete: next iteration begins (every member
            // resets its probe dedup so it can forward again).
            self.start_iteration(ctx, me);
        }
    }

    fn wants_tick(&self) -> bool {
        // Undecided members drive the round clock even when the radio is
        // silent (e.g. the last undecided node waiting out its own probe
        // phase to self-elect).
        self.member && self.decided.is_none()
    }
}

fn member_mask(topo: &Topology, group: &[NodeId]) -> Vec<bool> {
    let mut m = vec![false; topo.len()];
    for &g in group {
        m[g] = true;
    }
    m
}

/// Runs the distributed landmark election on one boundary group; returns
/// the elected landmark IDs (ascending) and the message count.
///
/// # Errors
///
/// [`ConvergenceFailure`] if the election does not converge within
/// `4 · n · k` rounds — cannot happen on well-formed inputs, but pipeline
/// callers degrade gracefully instead of panicking.
pub fn run_landmark_protocol(
    topo: &Topology,
    group: &[NodeId],
    k: u32,
) -> Result<(Vec<NodeId>, u64), ConvergenceFailure> {
    run_landmark_protocol_traced(topo, group, k, &mut Trace::disabled())
}

/// [`run_landmark_protocol`] with structured tracing: the election runs
/// inside a `"landmark"` span. With [`Trace::disabled`] this *is*
/// `run_landmark_protocol`.
///
/// # Errors
///
/// [`ConvergenceFailure`] as for [`run_landmark_protocol`].
pub fn run_landmark_protocol_traced(
    topo: &Topology,
    group: &[NodeId],
    k: u32,
    trace: &mut Trace,
) -> Result<(Vec<NodeId>, u64), ConvergenceFailure> {
    let member = member_mask(topo, group);
    let mut sim = Simulator::new(topo, |id| LandmarkElection::new(member[id], k));
    let max_rounds = 4 * (topo.len() + 1) * k as usize;
    trace.open("landmark");
    let stats = sim.run_traced(max_rounds, trace);
    trace.close();
    let stats = require_quiescent(stats, "landmark")?;
    let landmarks = (0..topo.len()).filter(|&i| sim.node(i).decision() == Some(true)).collect();
    Ok((landmarks, stats.messages))
}

/// Runs the landmark election on an unreliable radio. The election's
/// probe dedup and `wants_tick` clock make it safe under duplication and
/// delay; under loss it still terminates (the smallest undecided member
/// always self-elects), but the elected set may drift from the greedy
/// reference — the `robustness_sweep` binary measures that drift.
///
/// # Errors
///
/// [`ConvergenceFailure`] if some member is still undecided at the round
/// budget (e.g. it was crashed for the entire run).
pub fn run_landmark_protocol_with_faults(
    topo: &Topology,
    group: &[NodeId],
    k: u32,
    plan: &FaultPlan,
) -> Result<(Vec<NodeId>, u64), ConvergenceFailure> {
    let member = member_mask(topo, group);
    let mut sim = Simulator::new(topo, |id| LandmarkElection::new(member[id], k));
    let max_rounds = 4 * (topo.len() + 1) * k as usize + plan.round_slack();
    let stats = require_quiescent(sim.run_with_faults(max_rounds, plan), "landmark")?;
    let landmarks = (0..topo.len()).filter(|&i| sim.node(i).decision() == Some(true)).collect();
    Ok((landmarks, stats.messages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use crate::detector::BoundaryDetector;
    use crate::grouping::group_boundaries;
    use crate::iff::apply_iff;
    use crate::landmarks::elect_landmarks;
    use ballfit_netgen::builder::NetworkBuilder;
    use ballfit_netgen::scenario::Scenario;
    use ballfit_wsn::flood::{fragment_sizes, FragmentFlood};

    fn model() -> NetworkModel {
        NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(200)
            .interior_nodes(300)
            .target_degree(14.0)
            .seed(77)
            .build()
            .unwrap()
    }

    #[test]
    fn ubf_protocol_matches_centralized_detector() {
        let model = model();
        let cfg = DetectorConfig::paper(10, 3);
        let detector = BoundaryDetector::new(cfg);
        let central = detector.detect(&model);
        let (distributed, messages) =
            run_ubf_protocol(&model, &cfg.ubf, &cfg.coordinates).expect("perfect radio quiesces");
        assert_eq!(distributed, central.candidates, "UBF protocol diverged");
        // One broadcast per node: 2·|E| point-to-point messages.
        assert_eq!(messages, 2 * model.topology().edge_count() as u64);
    }

    #[test]
    fn iff_protocol_matches_centralized() {
        let model = model();
        let cfg = DetectorConfig::default();
        let central = BoundaryDetector::new(cfg).detect(&model);
        let candidates = central.candidates.clone();
        let mut sim =
            Simulator::new(model.topology(), |id| FragmentFlood::new(candidates[id], cfg.iff.ttl));
        let stats = sim.run(cfg.iff.ttl as usize + 2);
        assert!(stats.quiescent);
        let sizes = fragment_sizes(model.topology(), cfg.iff.ttl, |n| candidates[n]);
        for i in 0..model.len() {
            assert_eq!(sim.node(i).fragment_size(), sizes[i], "node {i}");
        }
        let via_protocol: Vec<bool> = (0..model.len())
            .map(|i| candidates[i] && sim.node(i).fragment_size() >= cfg.iff.theta)
            .collect();
        assert_eq!(via_protocol, apply_iff(model.topology(), &candidates, &cfg.iff));
    }

    #[test]
    fn grouping_protocol_matches_components() {
        let model = model();
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        let (labels, _messages) = run_grouping_protocol(model.topology(), &detection.boundary)
            .expect("perfect radio quiesces");
        let groups = group_boundaries(model.topology(), &detection.boundary);
        for group in &groups {
            let expected = group[0]; // min ID of the component
            for &n in group {
                assert_eq!(labels[n], Some(expected), "node {n}");
            }
        }
        for i in 0..model.len() {
            if !detection.boundary[i] {
                assert_eq!(labels[i], None);
            }
        }
    }

    #[test]
    fn landmark_protocol_matches_greedy_on_rings() {
        for n in [8usize, 12, 20, 31] {
            let topo =
                Topology::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>());
            let group: Vec<usize> = (0..n).collect();
            for k in [1u32, 2, 3, 4] {
                let central = elect_landmarks(&topo, &group, k);
                let (distributed, _) =
                    run_landmark_protocol(&topo, &group, k).expect("election converges");
                assert_eq!(distributed, central, "ring n={n} k={k}");
            }
        }
    }

    #[test]
    fn landmark_protocol_matches_greedy_on_random_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..8 {
            let n = 40;
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen_bool(0.08) {
                        edges.push((a, b));
                    }
                }
            }
            let topo = Topology::from_edges(n, &edges);
            let group: Vec<usize> = (0..n).filter(|_| rng.gen_bool(0.7)).collect();
            if group.is_empty() {
                continue;
            }
            for k in [2u32, 3] {
                let central = elect_landmarks(&topo, &group, k);
                let (distributed, _) =
                    run_landmark_protocol(&topo, &group, k).expect("election converges");
                assert_eq!(distributed, central, "trial={trial} k={k}");
            }
        }
    }

    #[test]
    fn landmark_protocol_on_detected_boundary() {
        let model = model();
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        let group = &detection.groups[0];
        let central = elect_landmarks(model.topology(), group, 3);
        let (distributed, messages) =
            run_landmark_protocol(model.topology(), group, 3).expect("election converges");
        assert_eq!(distributed, central);
        assert!(messages > 0);
    }

    #[test]
    fn hardened_ubf_with_zero_faults_matches_plain_exactly() {
        let model = model();
        let cfg = DetectorConfig::paper(10, 3);
        let (plain, plain_msgs) =
            run_ubf_protocol(&model, &cfg.ubf, &cfg.coordinates).expect("plain quiesces");
        let plan = FaultPlan::none();
        let (hardened, hardened_msgs) =
            run_hardened_ubf(&model, &cfg.ubf, &cfg.coordinates, Backoff::default(), &plan)
                .expect("hardened quiesces");
        assert_eq!(hardened, plain, "fault-free hardened UBF diverged from plain");
        // Tables (2·|E|) + one ack per table (2·|E|), no retransmissions.
        assert_eq!(hardened_msgs, 2 * plain_msgs);
    }

    #[test]
    fn hardened_grouping_with_zero_faults_matches_plain() {
        let model = model();
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        let (plain, _) =
            run_grouping_protocol(model.topology(), &detection.boundary).expect("plain quiesces");
        let (hardened, _) = run_hardened_grouping(
            model.topology(),
            &detection.boundary,
            Backoff::default(),
            &FaultPlan::none(),
        )
        .expect("hardened quiesces");
        assert_eq!(hardened, plain, "fault-free hardened grouping diverged from plain");
    }

    #[test]
    fn fault_free_hardened_grouping_finishes_in_plain_round_count() {
        let model = model();
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        let mut plain_trace = Trace::enabled();
        let (plain, _) =
            run_grouping_protocol_traced(model.topology(), &detection.boundary, &mut plain_trace)
                .expect("plain quiesces");
        let mut hard_trace = Trace::enabled();
        let (hardened, _) = run_hardened_grouping_traced(
            model.topology(),
            &detection.boundary,
            Backoff::default(),
            &FaultPlan::none(),
            &mut hard_trace,
        )
        .expect("hardened quiesces");
        assert_eq!(hardened, plain);
        let rounds = |trace: &Trace| {
            trace
                .records()
                .iter()
                .find_map(|r| match r.event {
                    TraceEvent::Convergence { rounds, .. } => Some(rounds),
                    _ => None,
                })
                .expect("engine records a convergence event")
        };
        assert_eq!(
            rounds(&hard_trace),
            rounds(&plain_trace),
            "quiescence-aware hardening must not pay a horizon on a perfect radio"
        );
        assert!(
            !hard_trace.records().iter().any(|r| matches!(r.event, TraceEvent::Retransmits { .. })),
            "a perfect radio must never fire a repair probe"
        );
    }

    #[test]
    fn hardened_grouping_survives_a_lossy_radio_on_a_ring() {
        let n = 24;
        let topo = Topology::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>());
        let boundary = vec![true; n];
        let plan = FaultPlan::lossy(9, 0.3).with_duplication(0.1).with_max_delay(1);
        let (labels, _) = run_hardened_grouping(&topo, &boundary, Backoff::default(), &plan)
            .expect("hardened grouping quiesces");
        assert_eq!(labels, vec![Some(0); n], "all ring members must learn label 0");
    }

    #[test]
    fn traced_ubf_runner_is_inert_and_summarizes_to_run_totals() {
        let model = model();
        let cfg = DetectorConfig::paper(10, 3);
        let (plain_flags, plain_messages) =
            run_ubf_protocol(&model, &cfg.ubf, &cfg.coordinates).expect("perfect radio quiesces");
        let mut trace = Trace::enabled();
        let (flags, messages) =
            run_ubf_protocol_traced(&model, &cfg.ubf, &cfg.coordinates, &mut trace)
                .expect("perfect radio quiesces");
        assert_eq!(flags, plain_flags, "tracing must not change the decision");
        assert_eq!(messages, plain_messages);
        let summary = ballfit_obs::summary::summarize(trace.records());
        let row = summary.get("ubf").expect("one ubf row");
        assert_eq!(row.messages, messages, "summary must roll rounds up to the run total");
        assert_eq!(row.nodes, model.len() as u64);
        assert!(row.bytes > row.messages, "tables are multi-byte payloads");
    }

    #[test]
    fn hardened_ubf_on_perfect_radio_reports_no_retransmissions() {
        let model = model();
        let cfg = DetectorConfig::paper(10, 3);
        let mut trace = Trace::enabled();
        let (_, _) = run_hardened_ubf_traced(
            &model,
            &cfg.ubf,
            &cfg.coordinates,
            Backoff::default(),
            &FaultPlan::none(),
            &mut trace,
        )
        .expect("hardened quiesces");
        assert!(
            !trace.records().iter().any(|r| matches!(r.event, TraceEvent::Retransmits { .. })),
            "a perfect radio must never spend retry budget"
        );
    }

    #[test]
    fn hardened_grouping_trace_attributes_repairs_to_members() {
        let n = 24;
        let topo = Topology::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>());
        let boundary = vec![true; n];
        let plan = FaultPlan::lossy(9, 0.3);
        let mut trace = Trace::enabled();
        let (labels, _) =
            run_hardened_grouping_traced(&topo, &boundary, Backoff::default(), &plan, &mut trace)
                .expect("hardened grouping quiesces");
        assert_eq!(labels, vec![Some(0); n]);
        // Repairs are evidence-triggered: only nodes that actually missed
        // a confirmation spend budget, each reported exactly once.
        let mut seen = BTreeSet::new();
        for rec in trace.records() {
            if let TraceEvent::Retransmits { node, resends } = rec.event {
                assert!(resends > 0, "zero-count nodes must be omitted");
                assert!(seen.insert(node), "node {node} reported twice");
            }
        }
        let summary = ballfit_obs::summary::summarize(trace.records());
        let row = summary.get("hardened-grouping").expect("row present");
        assert!(row.dropped > 0, "the lossy plan must have dropped messages");
        assert!(row.retransmits > 0, "a 30% lossy ring must trigger repair probes");
        assert_eq!(
            row.retransmits,
            trace
                .records()
                .iter()
                .filter_map(|r| match r.event {
                    TraceEvent::Retransmits { resends, .. } => Some(resends),
                    _ => None,
                })
                .sum::<u64>(),
            "summary must roll per-node repair counts up to the run total"
        );
    }

    #[test]
    fn landmark_protocol_tolerates_duplication_and_delay() {
        // Duplication and delay never change the election's fixed point
        // on a ring (probe dedup absorbs copies); loss can, which is what
        // the robustness sweep quantifies.
        let n = 16;
        let topo = Topology::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>());
        let group: Vec<usize> = (0..n).collect();
        let central = elect_landmarks(&topo, &group, 2);
        let plan = FaultPlan::none().with_seed(3).with_duplication(0.5);
        let (distributed, _) = run_landmark_protocol_with_faults(&topo, &group, 2, &plan)
            .expect("election converges under duplication");
        assert_eq!(distributed, central);
    }
}
