//! Message-passing executions of the pipeline's localized protocols.
//!
//! The centralized functions in this crate ([`crate::detector`],
//! [`crate::iff`], [`crate::grouping`], [`crate::landmarks`]) are
//! *centralized-equivalent* executions of distributed algorithms. This
//! module provides the genuine message-passing versions on the
//! [`ballfit_wsn::sim`] round engine, with full message accounting. The
//! test-suite (and the `protocol_audit` experiment binary) asserts that
//! both executions produce identical outputs — evidence that the paper's
//! "localized, one-hop information only" claim holds for this
//! implementation.
//!
//! Protocols provided:
//!
//! * [`UbfProtocol`] — one round of neighbor-table exchange, then local
//!   MDS + Unit Ball Fitting per node (Algorithm 1).
//! * [`ballfit_wsn::flood::FragmentFlood`] — IFF's scoped flooding
//!   (already hosted in the substrate crate).
//! * [`GroupingProtocol`] — min-ID label flooding over the boundary
//!   subgraph (boundary grouping, Sec. II-B).
//! * [`LandmarkElection`] — iterated local-minimum MIS election in the
//!   (k−1)-power of the boundary subgraph, converging to the same
//!   lexicographically-first landmark set as the greedy reference.

use std::collections::{BTreeMap, BTreeSet};

use ballfit_mds::local::{embed_local, LocalDistances};
use ballfit_netgen::model::NetworkModel;
use ballfit_wsn::sim::{Ctx, Protocol, Simulator};
use ballfit_wsn::{NodeId, Topology};

use crate::config::{CoordinateSource, UbfConfig};
use crate::ubf::ubf_test;

/// Per-node state of the distributed UBF phase.
///
/// Round 0: every node broadcasts its measured-distance table (one entry
/// per radio neighbor). Round 1: tables arrive; each node now knows the
/// measured distance for every mutually-adjacent pair within its closed
/// neighborhood and runs step (I) local embedding + steps (II–III) ball
/// tests locally. No further communication — UBF is a 1-round protocol.
#[derive(Debug, Clone)]
pub struct UbfProtocol {
    id: NodeId,
    own_table: Vec<(NodeId, f64)>,
    received: BTreeMap<NodeId, Vec<(NodeId, f64)>>,
}

impl UbfProtocol {
    /// Builds the per-node state: `own_table` holds the node's measured
    /// distances to each radio neighbor.
    pub fn new(id: NodeId, own_table: Vec<(NodeId, f64)>) -> Self {
        UbfProtocol { id, own_table, received: BTreeMap::new() }
    }

    /// Convenience: constructs all per-node states for a model under a
    /// coordinate source (which fixes the measurement oracle).
    pub fn for_model(model: &NetworkModel, source: &CoordinateSource) -> Vec<UbfProtocol> {
        let topo = model.topology();
        (0..model.len())
            .map(|i| {
                let table = topo
                    .neighbors(i)
                    .iter()
                    .map(|&j| {
                        let d = match source {
                            CoordinateSource::GroundTruth => model.true_distance(i, j),
                            CoordinateSource::LocalMds { error, noise_seed, .. } => model
                                .oracle(*error, *noise_seed)
                                .measure(i, j, model.true_distance(i, j)),
                        };
                        (j, d)
                    })
                    .collect();
                UbfProtocol::new(i, table)
            })
            .collect()
    }

    /// After the run: decide boundary membership from the collected
    /// tables, exactly as the centralized detector does.
    ///
    /// For [`CoordinateSource::GroundTruth`] the centralized path uses true
    /// positions directly; the protocol only ever sees distances, so it
    /// embeds them — the frames are isometric and the outcome identical.
    pub fn decide(&self, radio_range: f64, cfg: &UbfConfig, source: &CoordinateSource) -> bool {
        // Closed neighborhood in ascending ID order (self + neighbors).
        let mut members: Vec<NodeId> = self.own_table.iter().map(|&(j, _)| j).collect();
        members.push(self.id);
        members.sort_unstable();
        if members.len() < 2 {
            return cfg.degenerate_is_boundary;
        }
        let index: BTreeMap<NodeId, usize> =
            members.iter().enumerate().map(|(a, &m)| (m, a)).collect();
        let mut table = LocalDistances::new(members.len());
        let mut add = |a: NodeId, b: NodeId, d: f64| {
            table.set(index[&a], index[&b], d);
        };
        for &(j, d) in &self.own_table {
            add(self.id, j, d);
        }
        for (&j, jt) in &self.received {
            for &(k, d) in jt {
                if k != self.id && index.contains_key(&k) {
                    add(j, k, d);
                }
            }
        }
        let Ok(frame) = embed_local(&table, source.frame_config()) else {
            return cfg.degenerate_is_boundary;
        };
        let self_index = index[&self.id];
        ubf_test(&frame.coords, self_index, radio_range, cfg).is_boundary
    }
}

impl Protocol for UbfProtocol {
    type Msg = Vec<(NodeId, f64)>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        ctx.broadcast(self.own_table.clone());
    }

    fn on_message(&mut self, from: NodeId, msg: &Self::Msg, _ctx: &mut Ctx<'_, Self::Msg>) {
        self.received.insert(from, msg.clone());
    }
}

/// Runs the distributed UBF phase end to end, returning the per-node
/// boundary-candidate flags and the message count.
pub fn run_ubf_protocol(
    model: &NetworkModel,
    cfg: &UbfConfig,
    source: &CoordinateSource,
) -> (Vec<bool>, u64) {
    let states = UbfProtocol::for_model(model, source);
    let mut sim = Simulator::new(model.topology(), |id| states[id].clone());
    let stats = sim.run(4);
    debug_assert!(stats.quiescent);
    let flags =
        (0..model.len()).map(|i| sim.node(i).decide(model.radio_range(), cfg, source)).collect();
    (flags, stats.messages)
}

/// Min-ID label flooding over the boundary subgraph: after quiescence,
/// every boundary node's label is the smallest node ID of its boundary
/// component — the distributed form of [`crate::grouping`].
#[derive(Debug, Clone)]
pub struct GroupingProtocol {
    member: bool,
    label: Option<NodeId>,
}

impl GroupingProtocol {
    /// Creates per-node state; `member` marks boundary nodes.
    pub fn new(id: NodeId, member: bool) -> Self {
        GroupingProtocol { member, label: member.then_some(id) }
    }

    /// The component label after the run (`None` for non-members).
    pub fn label(&self) -> Option<NodeId> {
        self.label
    }
}

impl Protocol for GroupingProtocol {
    type Msg = NodeId;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if let Some(l) = self.label {
            ctx.broadcast(l);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {
        if !self.member {
            return;
        }
        // Members are labeled in `new`; a (impossible) missing label just
        // adopts the incoming one — round handlers must not panic.
        if self.label.is_none_or(|current| *msg < current) {
            self.label = Some(*msg);
            ctx.broadcast(*msg);
        }
    }
}

/// Runs boundary grouping distributively; returns per-node component
/// labels (min member ID per component) and the message count.
pub fn run_grouping_protocol(topo: &Topology, boundary: &[bool]) -> (Vec<Option<NodeId>>, u64) {
    let mut sim = Simulator::new(topo, |id| GroupingProtocol::new(id, boundary[id]));
    let stats = sim.run(topo.len() + 2);
    debug_assert!(stats.quiescent);
    let labels = (0..topo.len()).map(|i| sim.node(i).label()).collect();
    (labels, stats.messages)
}

/// Messages of the landmark election.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandmarkMsg {
    /// "I am undecided this iteration": flooded k−1 hops.
    Probe {
        /// Originating undecided node.
        origin: NodeId,
        /// Remaining forwarding budget.
        ttl: u32,
    },
    /// "I became a landmark": suppresses nodes within k−1 hops.
    Suppress {
        /// The new landmark.
        origin: NodeId,
        /// Remaining forwarding budget.
        ttl: u32,
    },
}

/// Iterated local-minimum landmark election (distributed form of
/// [`crate::landmarks::elect_landmarks`]).
///
/// Each iteration spans `2·(k−1)` rounds: undecided members flood probes
/// for k−1 rounds; a member whose ID is smaller than every probe received
/// becomes a landmark and floods suppression for the next k−1 rounds,
/// deciding its (k−1)-ball to non-landmark. Iterations repeat until all
/// members are decided; the fixed point is the lexicographically-first
/// maximal independent set of the (k−1)-power graph — identical to the
/// greedy centralized election.
#[derive(Debug, Clone)]
pub struct LandmarkElection {
    member: bool,
    k: u32,
    decided: Option<bool>,
    probes_seen: BTreeSet<NodeId>,
    suppress_seen: BTreeSet<NodeId>,
}

impl LandmarkElection {
    /// Creates per-node state; `member` marks this group's boundary nodes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(member: bool, k: u32) -> Self {
        assert!(k >= 1, "landmark spacing k must be at least 1");
        LandmarkElection {
            member,
            k,
            decided: None,
            probes_seen: BTreeSet::new(),
            suppress_seen: BTreeSet::new(),
        }
    }

    /// `Some(true)` if elected landmark, `Some(false)` if suppressed,
    /// `None` if not a member (or the run was truncated).
    pub fn decision(&self) -> Option<bool> {
        if self.member {
            self.decided
        } else {
            None
        }
    }

    fn reach(&self) -> u32 {
        self.k - 1
    }

    fn iteration_len(&self) -> usize {
        2 * self.reach().max(1) as usize
    }

    fn start_iteration(&mut self, ctx: &mut Ctx<'_, LandmarkMsg>, me: NodeId) {
        // Probe dedup is per-iteration for *all* members: decided nodes
        // keep forwarding later iterations' probes.
        self.probes_seen.clear();
        if self.member && self.decided.is_none() && self.reach() > 0 {
            ctx.broadcast(LandmarkMsg::Probe { origin: me, ttl: self.reach() - 1 });
        }
    }
}

impl Protocol for LandmarkElection {
    type Msg = LandmarkMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let me = ctx.node();
        if self.member && self.reach() == 0 {
            // k = 1: everyone is a landmark immediately.
            self.decided = Some(true);
            return;
        }
        self.start_iteration(ctx, me);
    }

    fn on_message(&mut self, _from: NodeId, msg: &Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
        if !self.member {
            return; // probes travel the boundary subgraph only
        }
        match *msg {
            LandmarkMsg::Probe { origin, ttl } => {
                if origin != ctx.node() && self.probes_seen.insert(origin) && ttl > 0 {
                    ctx.broadcast(LandmarkMsg::Probe { origin, ttl: ttl - 1 });
                }
            }
            LandmarkMsg::Suppress { origin, ttl } => {
                if self.suppress_seen.insert(origin) {
                    if self.decided.is_none() {
                        self.decided = Some(false);
                    }
                    if ttl > 0 {
                        ctx.broadcast(LandmarkMsg::Suppress { origin, ttl: ttl - 1 });
                    }
                }
            }
        }
    }

    fn on_round_end(&mut self, round: usize, ctx: &mut Ctx<'_, Self::Msg>) {
        if !self.member || self.reach() == 0 {
            return;
        }
        let me = ctx.node();
        let len = self.iteration_len();
        let phase = (round + 1) % len;
        let half = self.reach().max(1) as usize;
        if phase == half {
            // Probe phase complete: local minima become landmarks.
            if self.decided.is_none() && self.probes_seen.iter().all(|&origin| origin > me) {
                self.decided = Some(true);
                ctx.broadcast(LandmarkMsg::Suppress { origin: me, ttl: self.reach() - 1 });
            }
        } else if phase == 0 {
            // Suppress phase complete: next iteration begins (every member
            // resets its probe dedup so it can forward again).
            self.start_iteration(ctx, me);
        }
    }

    fn wants_tick(&self) -> bool {
        // Undecided members drive the round clock even when the radio is
        // silent (e.g. the last undecided node waiting out its own probe
        // phase to self-elect).
        self.member && self.decided.is_none()
    }
}

/// Runs the distributed landmark election on one boundary group; returns
/// the elected landmark IDs (ascending) and the message count.
///
/// # Panics
///
/// Panics if the election fails to converge within `4 · n · k` rounds
/// (cannot happen on well-formed inputs; the bound is a safety net).
pub fn run_landmark_protocol(topo: &Topology, group: &[NodeId], k: u32) -> (Vec<NodeId>, u64) {
    let member: Vec<bool> = {
        let mut m = vec![false; topo.len()];
        for &g in group {
            m[g] = true;
        }
        m
    };
    let mut sim = Simulator::new(topo, |id| LandmarkElection::new(member[id], k));
    let max_rounds = 4 * (topo.len() + 1) * k as usize;
    let stats = sim.run(max_rounds);
    assert!(stats.quiescent, "landmark election failed to converge");
    let landmarks = (0..topo.len()).filter(|&i| sim.node(i).decision() == Some(true)).collect();
    (landmarks, stats.messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use crate::detector::BoundaryDetector;
    use crate::grouping::group_boundaries;
    use crate::iff::apply_iff;
    use crate::landmarks::elect_landmarks;
    use ballfit_netgen::builder::NetworkBuilder;
    use ballfit_netgen::scenario::Scenario;
    use ballfit_wsn::flood::{fragment_sizes, FragmentFlood};

    fn model() -> NetworkModel {
        NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(200)
            .interior_nodes(300)
            .target_degree(14.0)
            .seed(77)
            .build()
            .unwrap()
    }

    #[test]
    fn ubf_protocol_matches_centralized_detector() {
        let model = model();
        let cfg = DetectorConfig::paper(10, 3);
        let detector = BoundaryDetector::new(cfg);
        let central = detector.detect(&model);
        let (distributed, messages) = run_ubf_protocol(&model, &cfg.ubf, &cfg.coordinates);
        assert_eq!(distributed, central.candidates, "UBF protocol diverged");
        // One broadcast per node: 2·|E| point-to-point messages.
        assert_eq!(messages, 2 * model.topology().edge_count() as u64);
    }

    #[test]
    fn iff_protocol_matches_centralized() {
        let model = model();
        let cfg = DetectorConfig::default();
        let central = BoundaryDetector::new(cfg).detect(&model);
        let candidates = central.candidates.clone();
        let mut sim =
            Simulator::new(model.topology(), |id| FragmentFlood::new(candidates[id], cfg.iff.ttl));
        let stats = sim.run(cfg.iff.ttl as usize + 2);
        assert!(stats.quiescent);
        let sizes = fragment_sizes(model.topology(), cfg.iff.ttl, |n| candidates[n]);
        for i in 0..model.len() {
            assert_eq!(sim.node(i).fragment_size(), sizes[i], "node {i}");
        }
        let via_protocol: Vec<bool> = (0..model.len())
            .map(|i| candidates[i] && sim.node(i).fragment_size() >= cfg.iff.theta)
            .collect();
        assert_eq!(via_protocol, apply_iff(model.topology(), &candidates, &cfg.iff));
    }

    #[test]
    fn grouping_protocol_matches_components() {
        let model = model();
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        let (labels, _messages) = run_grouping_protocol(model.topology(), &detection.boundary);
        let groups = group_boundaries(model.topology(), &detection.boundary);
        for group in &groups {
            let expected = group[0]; // min ID of the component
            for &n in group {
                assert_eq!(labels[n], Some(expected), "node {n}");
            }
        }
        for i in 0..model.len() {
            if !detection.boundary[i] {
                assert_eq!(labels[i], None);
            }
        }
    }

    #[test]
    fn landmark_protocol_matches_greedy_on_rings() {
        for n in [8usize, 12, 20, 31] {
            let topo =
                Topology::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>());
            let group: Vec<usize> = (0..n).collect();
            for k in [1u32, 2, 3, 4] {
                let central = elect_landmarks(&topo, &group, k);
                let (distributed, _) = run_landmark_protocol(&topo, &group, k);
                assert_eq!(distributed, central, "ring n={n} k={k}");
            }
        }
    }

    #[test]
    fn landmark_protocol_matches_greedy_on_random_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..8 {
            let n = 40;
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen_bool(0.08) {
                        edges.push((a, b));
                    }
                }
            }
            let topo = Topology::from_edges(n, &edges);
            let group: Vec<usize> = (0..n).filter(|_| rng.gen_bool(0.7)).collect();
            if group.is_empty() {
                continue;
            }
            for k in [2u32, 3] {
                let central = elect_landmarks(&topo, &group, k);
                let (distributed, _) = run_landmark_protocol(&topo, &group, k);
                assert_eq!(distributed, central, "trial={trial} k={k}");
            }
        }
    }

    #[test]
    fn landmark_protocol_on_detected_boundary() {
        let model = model();
        let detection = BoundaryDetector::new(DetectorConfig::default()).detect(&model);
        let group = &detection.groups[0];
        let central = elect_landmarks(model.topology(), group, 3);
        let (distributed, messages) = run_landmark_protocol(model.topology(), group, 3);
        assert_eq!(distributed, central);
        assert!(messages > 0);
    }
}
