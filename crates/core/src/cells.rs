//! Voronoi-cell association of boundary nodes to landmarks (Sec. III,
//! step I, second half).
//!
//! "A non-landmark boundary node is associated with the closest landmark.
//! If it has the same distance (in hop counts) to multiple landmarks, it
//! chooses the one with the smallest ID as a tiebreaker. This step creates
//! a set of approximate Voronoi cells on each boundary."

use ballfit_wsn::bfs::multi_source_hops;
use ballfit_wsn::{NodeId, Topology};

/// Per-node cell assignment on one boundary group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellAssignment {
    /// `owner[n] = Some(landmark)` for group members, `None` otherwise.
    pub owner: Vec<Option<NodeId>>,
    /// `hops[n] = Some(d)` hop distance to the owning landmark.
    pub hops: Vec<Option<u32>>,
}

impl CellAssignment {
    /// The owning landmark of `node`, if assigned.
    pub fn owner_of(&self, node: NodeId) -> Option<NodeId> {
        self.owner[node]
    }

    /// Members of the cell of `landmark`, sorted.
    pub fn cell_members(&self, landmark: NodeId) -> Vec<NodeId> {
        (0..self.owner.len()).filter(|&n| self.owner[n] == Some(landmark)).collect()
    }
}

/// Assigns every node of `group` to its closest landmark (hop distance on
/// the group subgraph, ties to the smallest landmark ID).
///
/// # Panics
///
/// Panics if `landmarks` is empty or not a subset of `group`.
pub fn assign_cells(topo: &Topology, group: &[NodeId], landmarks: &[NodeId]) -> CellAssignment {
    assert!(!landmarks.is_empty(), "cannot assign cells without landmarks");
    assert!(
        landmarks.iter().all(|l| group.binary_search(l).is_ok()),
        "landmarks must be group members"
    );
    let member = |n: NodeId| group.binary_search(&n).is_ok();
    let labeled = multi_source_hops(topo, landmarks, member);
    let mut owner = vec![None; topo.len()];
    let mut hops = vec![None; topo.len()];
    for &n in group {
        if let Some((d, lm)) = labeled[n] {
            owner[n] = Some(lm);
            hops[n] = Some(d);
        }
    }
    CellAssignment { owner, hops }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Topology {
        Topology::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn ring_cells_partition_the_group() {
        let topo = ring(12);
        let group: Vec<usize> = (0..12).collect();
        let landmarks = vec![0, 3, 6, 9];
        let cells = assign_cells(&topo, &group, &landmarks);
        // Every member owned; owners are landmarks.
        for &n in &group {
            let o = cells.owner_of(n).expect("member must be owned");
            assert!(landmarks.contains(&o));
        }
        // Landmarks own themselves at distance 0.
        for &lm in &landmarks {
            assert_eq!(cells.owner_of(lm), Some(lm));
            assert_eq!(cells.hops[lm], Some(0));
        }
        // Node 1 is 1 hop from 0 and 2 hops from 3 → owner 0.
        assert_eq!(cells.owner_of(1), Some(0));
        // Node 2 is 2 hops from 0 and 1 hop from 3 → owner 3.
        assert_eq!(cells.owner_of(2), Some(3));
    }

    #[test]
    fn hop_ties_go_to_smaller_landmark_id() {
        // Node 2 equidistant (2 hops) from landmarks 0 and 4 on a 8-ring?
        // Use a path 0-1-2-3-4 with landmarks {0, 4}: node 2 ties.
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let group: Vec<usize> = (0..5).collect();
        let cells = assign_cells(&topo, &group, &[0, 4]);
        assert_eq!(cells.owner_of(2), Some(0), "tie must break to smaller ID");
    }

    #[test]
    fn cells_respect_group_restriction() {
        // Path 0-1-2; group excludes 1, so node 2 is unreachable from
        // landmark 0 within the group and stays unowned.
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let group = vec![0, 2];
        let cells = assign_cells(&topo, &group, &[0]);
        assert_eq!(cells.owner_of(0), Some(0));
        assert_eq!(cells.owner_of(2), None);
        assert_eq!(cells.owner_of(1), None);
    }

    #[test]
    fn cell_members_listing() {
        let topo = ring(6);
        let group: Vec<usize> = (0..6).collect();
        let cells = assign_cells(&topo, &group, &[0, 3]);
        let c0 = cells.cell_members(0);
        let c3 = cells.cell_members(3);
        assert!(c0.contains(&0));
        assert!(c3.contains(&3));
        assert_eq!(c0.len() + c3.len(), 6);
    }

    #[test]
    #[should_panic(expected = "without landmarks")]
    fn empty_landmarks_panics() {
        let topo = ring(4);
        let _ = assign_cells(&topo, &[0, 1, 2, 3], &[]);
    }

    #[test]
    #[should_panic(expected = "group members")]
    fn foreign_landmark_panics() {
        let topo = ring(4);
        let _ = assign_cells(&topo, &[0, 1], &[3]);
    }
}
