//! Step II: Combinatorial Delaunay Graph (CDG).
//!
//! "Each non-landmark boundary node checks if it has a neighboring
//! boundary node that is associated with a different landmark. If it has,
//! a message is sent to both landmarks to indicate that they are
//! neighboring landmarks. If we simply connect all neighboring landmarks,
//! we arrive at a Combinatorial Delaunay Graph — the dual of the Voronoi
//! cells. Such a CDG is not planar in general." (Sec. III, step II)

use std::collections::BTreeSet;

use ballfit_wsn::{NodeId, Topology};

use crate::cells::CellAssignment;

/// An undirected landmark-pair edge, stored `(lo, hi)`.
pub type LandmarkEdge = (NodeId, NodeId);

/// Builds the CDG edge set: landmark pairs whose Voronoi cells are
/// adjacent (some group member of one cell has a radio neighbor in the
/// other cell, both within `group`). Edges are sorted.
pub fn build_cdg(topo: &Topology, group: &[NodeId], cells: &CellAssignment) -> Vec<LandmarkEdge> {
    let mut edges: BTreeSet<LandmarkEdge> = BTreeSet::new();
    for &u in group {
        let Some(ou) = cells.owner_of(u) else { continue };
        for &v in topo.neighbors(u) {
            let v = v as NodeId;
            if group.binary_search(&v).is_err() {
                continue;
            }
            let Some(ov) = cells.owner_of(v) else { continue };
            if ou != ov {
                edges.insert(if ou < ov { (ou, ov) } else { (ov, ou) });
            }
        }
    }
    edges.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::assign_cells;

    fn ring(n: usize) -> Topology {
        Topology::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn ring_cdg_is_the_cycle_of_cells() {
        let topo = ring(12);
        let group: Vec<usize> = (0..12).collect();
        let landmarks = vec![0, 3, 6, 9];
        let cells = assign_cells(&topo, &group, &landmarks);
        let cdg = build_cdg(&topo, &group, &cells);
        // Cells wrap the ring: 0–3, 3–6, 6–9, 9–0 are adjacent.
        assert_eq!(cdg, vec![(0, 3), (0, 9), (3, 6), (6, 9)]);
    }

    #[test]
    fn two_landmark_path() {
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let group: Vec<usize> = (0..5).collect();
        let cells = assign_cells(&topo, &group, &[0, 4]);
        assert_eq!(build_cdg(&topo, &group, &cells), vec![(0, 4)]);
    }

    #[test]
    fn single_cell_has_no_edges() {
        let topo = ring(5);
        let group: Vec<usize> = (0..5).collect();
        let cells = assign_cells(&topo, &group, &[2]);
        assert!(build_cdg(&topo, &group, &cells).is_empty());
    }

    #[test]
    fn adjacency_through_non_group_nodes_is_ignored() {
        // Two cells whose only contact goes through an interior
        // (non-group) node: not CDG-adjacent.
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let group = vec![0, 1, 3, 4]; // node 2 is interior
        let cells = assign_cells(&topo, &group, &[0, 4]);
        assert!(build_cdg(&topo, &group, &cells).is_empty());
    }
}
