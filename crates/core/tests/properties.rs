//! Property-based tests for the boundary-detection pipeline invariants.

use ballfit::config::{DetectorConfig, IffConfig, UbfConfig};
use ballfit::detector::BoundaryDetector;
use ballfit::edgeflip::{flip_to_manifold, triangles_of};
use ballfit::grouping::group_boundaries;
use ballfit::iff::apply_iff;
use ballfit::incremental::IncrementalDetector;
use ballfit::landmarks::{check_landmark_invariants, elect_landmarks};
use ballfit::ubf::ubf_test;
use ballfit::view::NetView;
use ballfit_geom::Vec3;
use ballfit_wsn::churn::{DynamicTopology, TopologyEvent};
use ballfit_wsn::Topology;
use proptest::prelude::*;

fn vec3_in(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

/// Random sparse graph as an edge list over n nodes.
fn graph(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..(3 * n))
        .prop_map(|pairs| pairs.into_iter().filter(|&(a, b)| a != b).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// UBF is invariant under translation of the local frame.
    #[test]
    fn ubf_translation_invariance(
        pts in proptest::collection::vec(vec3_in(0.9), 3..12),
        shift in vec3_in(50.0),
    ) {
        let cfg = UbfConfig::default();
        let moved: Vec<Vec3> = pts.iter().map(|&p| p + shift).collect();
        let a = ubf_test(&pts, 0, 1.0, &cfg);
        let b = ubf_test(&moved, 0, 1.0, &cfg);
        prop_assert_eq!(a.is_boundary, b.is_boundary);
    }

    /// UBF is invariant under reflection (local frames have arbitrary
    /// handedness — MDS can only recover shape up to reflection).
    #[test]
    fn ubf_reflection_invariance(
        pts in proptest::collection::vec(vec3_in(0.9), 3..12),
    ) {
        let cfg = UbfConfig::default();
        let mirrored: Vec<Vec3> = pts.iter().map(|&p| Vec3::new(-p.x, p.y, p.z)).collect();
        let a = ubf_test(&pts, 0, 1.0, &cfg);
        let b = ubf_test(&mirrored, 0, 1.0, &cfg);
        prop_assert_eq!(a.is_boundary, b.is_boundary);
    }

    /// UBF is scale-invariant: scaling the frame and the radio range
    /// together cannot change the verdict.
    #[test]
    fn ubf_scale_invariance(
        pts in proptest::collection::vec(vec3_in(0.9), 3..12),
        scale in 0.2f64..5.0,
    ) {
        let cfg = UbfConfig::default();
        let scaled: Vec<Vec3> = pts.iter().map(|&p| p * scale).collect();
        let a = ubf_test(&pts, 0, 1.0, &cfg);
        let b = ubf_test(&scaled, 0, scale, &cfg);
        prop_assert_eq!(a.is_boundary, b.is_boundary);
    }

    /// IFF never promotes, is idempotent at TTL-stable inputs, and is
    /// monotone in θ.
    #[test]
    fn iff_laws(
        edges in graph(25),
        flags in proptest::collection::vec(any::<bool>(), 25),
        theta in 1usize..8,
        ttl in 0u32..4,
    ) {
        let topo = Topology::from_edges(25, &edges);
        let cfg = IffConfig { theta, ttl };
        let out = apply_iff(&topo, &flags, &cfg);
        for i in 0..25 {
            prop_assert!(!out[i] || flags[i], "IFF promoted node {}", i);
        }
        // Monotone: larger θ keeps a subset.
        let stricter = apply_iff(&topo, &flags, &IffConfig { theta: theta + 1, ttl });
        for i in 0..25 {
            prop_assert!(!stricter[i] || out[i]);
        }
    }

    /// Grouping partitions exactly the boundary set, with connected,
    /// disjoint groups.
    #[test]
    fn grouping_partitions(
        edges in graph(30),
        flags in proptest::collection::vec(any::<bool>(), 30),
    ) {
        let topo = Topology::from_edges(30, &edges);
        let groups = group_boundaries(&topo, &flags);
        let mut seen = vec![false; 30];
        for g in &groups {
            for &m in g {
                prop_assert!(flags[m], "non-boundary node grouped");
                prop_assert!(!seen[m], "node in two groups");
                seen[m] = true;
            }
        }
        for i in 0..30 {
            prop_assert_eq!(flags[i], seen[i], "boundary node left ungrouped");
        }
        // Sizes are non-increasing.
        for w in groups.windows(2) {
            prop_assert!(w[0].len() >= w[1].len());
        }
    }

    /// Landmark election always satisfies the k-spacing + coverage
    /// invariants on arbitrary graphs.
    #[test]
    fn landmark_invariants_hold(
        edges in graph(30),
        members in proptest::collection::vec(any::<bool>(), 30),
        k in 1u32..5,
    ) {
        let topo = Topology::from_edges(30, &edges);
        let group: Vec<usize> = (0..30).filter(|&i| members[i]).collect();
        let landmarks = elect_landmarks(&topo, &group, k);
        prop_assert!(check_landmark_invariants(&topo, &group, &landmarks, k).is_ok());
        // Landmarks are sorted and within the group.
        prop_assert!(landmarks.windows(2).all(|w| w[0] < w[1]));
    }

    /// The incremental detector equals the from-scratch detector after
    /// every event of an arbitrary interleaved join/leave/move sequence on
    /// a random geometric point cloud.
    #[test]
    fn incremental_detector_equals_scratch_under_churn(
        init in proptest::collection::vec(vec3_in(2.5), 6..24),
        ops in proptest::collection::vec(
            (0u8..3, any::<proptest::sample::Index>(), vec3_in(2.5)),
            1..12,
        ),
    ) {
        let config = DetectorConfig::default();
        let detector = BoundaryDetector::new(config);
        let mut dt = DynamicTopology::new(&init, 1.6);
        let mut inc = IncrementalDetector::new(config, &dt);
        for (kind, pick, p) in ops {
            let live = dt.live_nodes();
            let ev = match kind {
                0 => TopologyEvent::Join { position: p },
                _ if live.is_empty() => continue,
                1 => TopologyEvent::Leave { node: live[pick.index(live.len())] },
                _ => TopologyEvent::Move { node: live[pick.index(live.len())], to: p },
            };
            let delta = dt.apply(&ev);
            inc.apply(&dt, &delta);
            let view = NetView::new(dt.topology(), dt.positions(), dt.radio_range());
            let full = detector.detect_view(&view);
            prop_assert_eq!(inc.candidates(), &full.candidates[..]);
            prop_assert_eq!(inc.boundary(), &full.boundary[..]);
            prop_assert_eq!(inc.groups(), &full.groups[..]);
        }
    }

    /// Flip-pass invariants on arbitrary graphs: every initially over-full
    /// edge that was flipped is gone from the result and never re-added;
    /// flips stay within budget; the outcome is well-formed (sorted,
    /// deduplicated, no self-loops).
    #[test]
    fn flip_pass_invariants(edges in graph(18)) {
        let norm: Vec<(usize, usize)> = {
            let mut e: Vec<(usize, usize)> = edges
                .iter()
                .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
                .collect();
            e.sort_unstable();
            e.dedup();
            e
        };
        let budget = 10 * norm.len().max(1);
        let out = flip_to_manifold(&norm, budget, |a, b| (a as f64 - b as f64).abs());
        prop_assert!(out.flips.len() <= budget);
        for flip in &out.flips {
            prop_assert!(
                out.edges.binary_search(&flip.removed).is_err(),
                "removed edge {:?} reappeared", flip.removed
            );
            prop_assert!(flip.apexes.len() >= 3);
            for added in &flip.added {
                prop_assert!(added.0 < added.1);
            }
        }
        // Result edges are sorted, unique, loop-free.
        prop_assert!(out.edges.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(out.edges.iter().all(|&(a, b)| a < b));
        // Convergence means no raw 3-clique edge has 3+ apexes.
        if out.converged {
            let tris = triangles_of(&out.edges);
            for &(a, b) in &out.edges {
                let count = tris.iter().filter(|t| t.contains(&a) && t.contains(&b)).count();
                prop_assert!(count <= 2, "edge ({},{}) has {} faces despite convergence", a, b, count);
            }
        }
    }
}
