//! Property-based tests for the network substrate.

use ballfit_geom::Vec3;
use ballfit_wsn::bfs::{hop_distances, multi_source_hops, nodes_within, shortest_path};
use ballfit_wsn::churn::{DynamicTopology, TopologyEvent};
use ballfit_wsn::components::components_of;
use ballfit_wsn::flood::{fragment_sizes, FragmentFlood};
use ballfit_wsn::sim::Simulator;
use ballfit_wsn::Topology;
use proptest::prelude::*;

fn graph(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..(3 * n))
        .prop_map(|pairs| pairs.into_iter().filter(|&(a, b)| a != b).collect())
}

fn vec3_in(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hop distances satisfy the BFS triangle property along edges.
    #[test]
    fn hop_distance_edge_consistency(edges in graph(25), src in 0usize..25) {
        let topo = Topology::from_edges(25, &edges);
        let d = hop_distances(&topo, src, |_| true);
        prop_assert_eq!(d[src], Some(0));
        for a in 0..25 {
            if let Some(da) = d[a] {
                for &b in topo.neighbors(a) {
                    let db = d[b as usize].expect("neighbor of reachable node is reachable");
                    prop_assert!(db <= da + 1 && da <= db + 1);
                }
            }
        }
    }

    /// Shortest paths are consistent with hop distances, and every path
    /// node (except endpoints) satisfies the predicate.
    #[test]
    fn shortest_path_optimality(
        edges in graph(20),
        src in 0usize..20,
        dst in 0usize..20,
        banned in proptest::collection::vec(any::<bool>(), 20),
    ) {
        let topo = Topology::from_edges(20, &edges);
        let allowed = |n: usize| !banned[n];
        let path = shortest_path(&topo, src, dst, allowed);
        let dist = {
            let mut d = hop_distances(&topo, src, |n| n == dst || allowed(n));
            if src == dst { d[src] = Some(0); }
            d[dst]
        };
        match (path, dist) {
            (Some(p), Some(d)) => {
                prop_assert_eq!(p.len() as u32, d + 1, "path length vs distance");
                prop_assert_eq!(p[0], src);
                prop_assert_eq!(*p.last().unwrap(), dst);
                for w in p.windows(2) {
                    prop_assert!(topo.are_neighbors(w[0], w[1]));
                }
                if p.len() >= 2 {
                    for &n in &p[1..p.len() - 1] {
                        prop_assert!(allowed(n), "path visits banned node {}", n);
                    }
                }
            }
            (None, None) => {}
            (p, d) => prop_assert!(false, "path {:?} vs dist {:?} disagree", p, d),
        }
    }

    /// Multi-source labels agree with per-source BFS minima.
    #[test]
    fn multi_source_is_min_of_singles(
        edges in graph(18),
        sources in proptest::collection::btree_set(0usize..18, 1..5),
    ) {
        let topo = Topology::from_edges(18, &edges);
        let srcs: Vec<usize> = sources.into_iter().collect();
        let combined = multi_source_hops(&topo, &srcs, |_| true);
        let singles: Vec<Vec<Option<u32>>> =
            srcs.iter().map(|&s| hop_distances(&topo, s, |_| true)).collect();
        for n in 0..18 {
            let best: Option<(u32, usize)> = srcs
                .iter()
                .enumerate()
                .filter_map(|(si, &s)| singles[si][n].map(|d| (d, s)))
                .min();
            prop_assert_eq!(combined[n], best, "node {}", n);
        }
    }

    /// `nodes_within` at max TTL equals the reachable set minus source.
    #[test]
    fn nodes_within_limits(edges in graph(20), src in 0usize..20, ttl in 0u32..5) {
        let topo = Topology::from_edges(20, &edges);
        let within = nodes_within(&topo, src, ttl, |_| true);
        let d = hop_distances(&topo, src, |_| true);
        for n in 0..20 {
            let expected = n != src && matches!(d[n], Some(x) if x <= ttl);
            prop_assert_eq!(within.binary_search(&n).is_ok(), expected, "node {}", n);
        }
    }

    /// Components partition the member set and are pairwise non-adjacent.
    #[test]
    fn components_partition(
        edges in graph(22),
        members in proptest::collection::vec(any::<bool>(), 22),
    ) {
        let topo = Topology::from_edges(22, &edges);
        let comps = components_of(&topo, |n| members[n]);
        let mut label = vec![None; 22];
        for (ci, comp) in comps.iter().enumerate() {
            for &m in comp {
                prop_assert!(members[m]);
                prop_assert!(label[m].is_none());
                label[m] = Some(ci);
            }
        }
        for (a, b) in topo
            .neighbors(0)
            .iter()
            .map(|&b| (0usize, b as usize))
            .chain(edges.iter().copied())
        {
            if members[a] && members[b] {
                prop_assert_eq!(label[a], label[b], "adjacent members split");
            }
        }
    }

    /// Incremental adjacency maintenance is byte-identical to a
    /// from-scratch rebuild after arbitrary interleaved join/leave/move
    /// sequences (the churn subsystem's core invariant).
    #[test]
    fn dynamic_topology_matches_scratch_rebuild(
        init in proptest::collection::vec(vec3_in(3.0), 2..10),
        ops in proptest::collection::vec(
            (0u8..3, any::<proptest::sample::Index>(), vec3_in(3.0)),
            0..30,
        ),
        range in 1.0f64..3.0,
    ) {
        let mut dt = DynamicTopology::new(&init, range);
        for (kind, pick, p) in ops {
            let live = dt.live_nodes();
            let ev = match kind {
                0 => TopologyEvent::Join { position: p },
                _ if live.is_empty() => continue,
                1 => TopologyEvent::Leave { node: live[pick.index(live.len())] },
                _ => TopologyEvent::Move { node: live[pick.index(live.len())], to: p },
            };
            dt.apply(&ev);
            prop_assert_eq!(dt.topology(), &dt.rebuild_reference());
        }
    }

    /// The flooding protocol equals centralized fragment sizes on random
    /// graphs and memberships.
    #[test]
    fn flood_protocol_equivalence(
        edges in graph(16),
        members in proptest::collection::vec(any::<bool>(), 16),
        ttl in 0u32..4,
    ) {
        let topo = Topology::from_edges(16, &edges);
        let mut sim = Simulator::new(&topo, |id| FragmentFlood::new(members[id], ttl));
        let stats = sim.run(ttl as usize + 2);
        prop_assert!(stats.quiescent);
        let central = fragment_sizes(&topo, ttl, |n| members[n]);
        for i in 0..16 {
            prop_assert_eq!(sim.node(i).fragment_size(), central[i], "node {}", i);
        }
    }
}
