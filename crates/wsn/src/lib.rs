//! # ballfit-wsn
//!
//! Wireless-network substrate for the `ballfit` reproduction of *"Localized
//! Algorithm for Precise Boundary Detection in 3D Wireless Networks"*
//! (ICDCS 2010).
//!
//! The paper's algorithms are *distributed and localized*: every node acts
//! on information from its one-hop neighborhood, exchanged over the radio.
//! This crate provides the two execution substrates used throughout the
//! reproduction:
//!
//! * [`Topology`] — an immutable connectivity graph (built from node
//!   positions and a radio range, or from explicit adjacency) with the graph
//!   machinery the pipeline needs: BFS hop distances, subset-restricted
//!   deterministic shortest paths, connected components, degree statistics.
//! * [`sim`] — a synchronous round-based message-passing simulator. A
//!   [`sim::Protocol`] describes per-node behaviour; the engine delivers
//!   messages between radio neighbors round by round and accounts every
//!   message sent, which lets the test-suite verify both the *outputs* and
//!   the *locality/message-complexity claims* of the paper (e.g. IFF's
//!   `O(1)` scoped flooding).
//! * [`faults`] — a deterministic unreliable-radio model
//!   ([`faults::FaultPlan`]: per-link loss, duplication, bounded delay,
//!   scheduled crashes) applied by [`sim::Simulator::run_with_faults`];
//!   the perfect radio is the zero-fault special case.
//! * [`churn`] — a deterministic dynamic-network model
//!   ([`churn::ChurnPlan`]: seeded per-epoch join/leave/drift schedules)
//!   plus [`churn::DynamicTopology`], which maintains connectivity under
//!   events via incremental adjacency updates pinned byte-identical to a
//!   from-scratch rebuild; the static network is the zero-churn special
//!   case.
//!
//! Fast centralized-equivalent executors for the protocols live next to the
//! algorithms in the `ballfit` core crate; integration tests assert that the
//! two executions agree.
//!
//! # Example
//!
//! ```
//! use ballfit_geom::Vec3;
//! use ballfit_wsn::Topology;
//!
//! // Three nodes on a line, radio range 1: 0–1–2 is a path.
//! let positions = vec![
//!     Vec3::ZERO,
//!     Vec3::new(0.8, 0.0, 0.0),
//!     Vec3::new(1.6, 0.0, 0.0),
//! ];
//! let topo = Topology::from_positions(&positions, 1.0);
//! assert_eq!(topo.neighbors(1), &[0, 2]);
//! assert_eq!(topo.hop_distances(0)[2], Some(2));
//! assert!(topo.is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod churn;
pub mod components;
pub mod faults;
pub mod flood;
pub mod sim;
pub mod topology;

pub use topology::{DegreeStats, NodeId, Topology};
