//! Connected components, optionally restricted to a node subset.
//!
//! The paper groups boundary nodes into per-boundary sets by observing that
//! nodes on the same boundary are connected through boundary nodes only
//! (Sec. II-B); that is exactly a connected-components computation on the
//! boundary-induced subgraph.

use std::collections::VecDeque;

use crate::topology::{NodeId, Topology};

/// Connected components of the subgraph induced by the nodes satisfying
/// `member`. Each component is a sorted vector; components are ordered by
/// their smallest node ID.
pub fn components_of<F: Fn(NodeId) -> bool>(topo: &Topology, member: F) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; topo.len()];
    let mut components = Vec::new();
    for start in 0..topo.len() {
        if seen[start] || !member(start) {
            continue;
        }
        seen[start] = true;
        let mut queue = VecDeque::from([start]);
        let mut comp = vec![];
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for &v in topo.neighbors(u) {
                let v = v as NodeId;
                if !seen[v] && member(v) {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

/// Per-node component labels for the subgraph induced by `member`:
/// `labels[i] = Some(c)` where `c` is the index of the component containing
/// `i` in [`components_of`] order, `None` for non-members.
pub fn component_labels<F: Fn(NodeId) -> bool>(topo: &Topology, member: F) -> Vec<Option<usize>> {
    let comps = components_of(topo, member);
    let mut labels = vec![None; topo.len()];
    for (ci, comp) in comps.iter().enumerate() {
        for &n in comp {
            labels[n] = Some(ci);
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_graph_components() {
        let t = Topology::from_edges(5, &[(0, 1), (2, 3)]);
        let comps = components_of(&t, |_| true);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn restricted_components_split_through_excluded_nodes() {
        // 0-1-2 chain; excluding 1 splits {0} and {2}.
        let t = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let comps = components_of(&t, |n| n != 1);
        assert_eq!(comps, vec![vec![0], vec![2]]);
    }

    #[test]
    fn labels_match_components() {
        let t = Topology::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let labels = component_labels(&t, |n| n != 2);
        assert_eq!(labels[0], Some(0));
        assert_eq!(labels[1], Some(0));
        assert_eq!(labels[2], None);
        assert_eq!(labels[3], Some(1));
        assert_eq!(labels[4], Some(1));
        assert_eq!(labels[5], Some(2));
    }

    #[test]
    fn empty_membership() {
        let t = Topology::from_edges(3, &[(0, 1)]);
        assert!(components_of(&t, |_| false).is_empty());
        assert_eq!(component_labels(&t, |_| false), vec![None, None, None]);
    }
}
