//! Breadth-first search machinery: hop distances, subset-restricted
//! deterministic shortest paths, depth-limited reachability.
//!
//! The surface-construction steps of the paper repeatedly route packets
//! "through the shortest path based on the identified boundary nodes only";
//! all such paths here are computed by BFS *restricted to a node predicate*
//! with a deterministic minimum-ID parent rule so that distributed and
//! centralized executions pick identical paths.

use std::collections::VecDeque;

use crate::topology::{NodeId, Topology};

/// Hop distances from `source` to every node, visiting only nodes that
/// satisfy `allowed` (the source is always visited). `None` marks nodes
/// that are unreachable or excluded.
pub fn hop_distances<F: Fn(NodeId) -> bool>(
    topo: &Topology,
    source: NodeId,
    allowed: F,
) -> Vec<Option<u32>> {
    let mut dist = vec![None; topo.len()];
    let mut queue = VecDeque::new();
    dist[source] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        for &v in topo.neighbors(u) {
            let v = v as NodeId;
            if dist[v].is_none() && allowed(v) {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Multi-source hop distances: for every node, the distance to the nearest
/// source and the ID of that source, ties broken toward the smaller source
/// ID (the paper's landmark-association tiebreak). Only nodes satisfying
/// `allowed` are traversed; sources are always included.
///
/// Returns `(distance, owner)` per node, `None` if unreachable.
pub fn multi_source_hops<F: Fn(NodeId) -> bool>(
    topo: &Topology,
    sources: &[NodeId],
    allowed: F,
) -> Vec<Option<(u32, NodeId)>> {
    let mut best: Vec<Option<(u32, NodeId)>> = vec![None; topo.len()];
    let mut sorted: Vec<NodeId> = sources.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut queue = VecDeque::new();
    for &s in &sorted {
        if best[s].is_none() {
            best[s] = Some((0, s));
            queue.push_back(s);
        }
    }
    // BFS layer by layer; because sources are seeded in ascending ID order
    // and neighbor lists are sorted, the first label a node receives is the
    // (min distance, min owner-ID) pair.
    while let Some(u) = queue.pop_front() {
        let (du, owner) = best[u].expect("queued nodes are labeled");
        for &v in topo.neighbors(u) {
            let v = v as NodeId;
            if best[v].is_none() && allowed(v) {
                best[v] = Some((du + 1, owner));
                queue.push_back(v);
            }
        }
    }
    best
}

/// Deterministic shortest path from `from` to `to`, traversing only nodes
/// that satisfy `allowed` (endpoints are always allowed). Among equal-length
/// paths the minimum-ID parent is chosen at every step, making the result
/// unique and identical across executions.
///
/// Returns the node sequence including both endpoints, or `None` if `to` is
/// unreachable.
pub fn shortest_path<F: Fn(NodeId) -> bool>(
    topo: &Topology,
    from: NodeId,
    to: NodeId,
    allowed: F,
) -> Option<Vec<NodeId>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; topo.len()];
    let mut dist: Vec<Option<u32>> = vec![None; topo.len()];
    dist[from] = Some(0);
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        if u == to {
            break;
        }
        let du = dist[u].expect("queued nodes have distances");
        // Sorted neighbor order ⇒ the first parent that discovers a node is
        // the min-ID parent among the previous BFS layer.
        for &v in topo.neighbors(u) {
            let v = v as NodeId;
            if dist[v].is_none() && (v == to || allowed(v)) {
                dist[v] = Some(du + 1);
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    dist[to]?;
    let mut path = vec![to];
    let mut cur = to;
    while let Some(p) = parent[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    debug_assert_eq!(path[0], from);
    Some(path)
}

/// All nodes within `max_hops` of `source` (excluding `source` itself),
/// traversing only nodes satisfying `allowed`. Result is sorted.
pub fn nodes_within<F: Fn(NodeId) -> bool>(
    topo: &Topology,
    source: NodeId,
    max_hops: u32,
    allowed: F,
) -> Vec<NodeId> {
    let mut dist = vec![None; topo.len()];
    dist[source] = Some(0u32);
    let mut queue = VecDeque::from([source]);
    let mut out = Vec::new();
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        if du == max_hops {
            continue;
        }
        for &v in topo.neighbors(u) {
            let v = v as NodeId;
            if dist[v].is_none() && allowed(v) {
                dist[v] = Some(du + 1);
                out.push(v);
                queue.push_back(v);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2-3 path plus a 0-4-3 shortcut through higher-ID nodes.
    fn diamond() -> Topology {
        Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)])
    }

    #[test]
    fn hop_distance_basics() {
        let t = diamond();
        let d = hop_distances(&t, 0, |_| true);
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[3], Some(2)); // via 4
        assert_eq!(d[2], Some(2));
    }

    #[test]
    fn restriction_blocks_paths() {
        let t = diamond();
        // Disallow node 4: distance to 3 becomes 3 via the chain.
        let d = hop_distances(&t, 0, |n| n != 4);
        assert_eq!(d[3], Some(3));
        assert_eq!(d[4], None);
        // Disallow 1 and 4: node 3 unreachable.
        let d = hop_distances(&t, 0, |n| n != 1 && n != 4);
        assert_eq!(d[3], None);
    }

    #[test]
    fn shortest_path_deterministic_min_id() {
        // Two equal-length paths 0-1-3 and 0-2-3: must take min-ID parent 1.
        let t = Topology::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let p = shortest_path(&t, 0, 3, |_| true).unwrap();
        assert_eq!(p, vec![0, 1, 3]);
        // And symmetric query likewise prefers the smaller intermediate.
        let q = shortest_path(&t, 3, 0, |_| true).unwrap();
        assert_eq!(q, vec![3, 1, 0]);
    }

    #[test]
    fn shortest_path_respects_restriction() {
        let t = Topology::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let p = shortest_path(&t, 0, 3, |n| n != 1).unwrap();
        assert_eq!(p, vec![0, 2, 3]);
        assert!(shortest_path(&t, 0, 3, |n| n != 1 && n != 2).is_none());
    }

    #[test]
    fn shortest_path_trivial_cases() {
        let t = diamond();
        assert_eq!(shortest_path(&t, 2, 2, |_| false).unwrap(), vec![2]);
        let p = shortest_path(&t, 0, 1, |_| false).unwrap();
        assert_eq!(p, vec![0, 1]); // endpoints always allowed
    }

    #[test]
    fn multi_source_ownership_tiebreak() {
        // Node 2 is equidistant from sources 0 and 4 → owner must be 0.
        let t = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let owners = multi_source_hops(&t, &[4, 0], |_| true);
        assert_eq!(owners[0], Some((0, 0)));
        assert_eq!(owners[4], Some((0, 4)));
        assert_eq!(owners[1], Some((1, 0)));
        assert_eq!(owners[3], Some((1, 4)));
        assert_eq!(owners[2], Some((2, 0)), "tie must go to the smaller source ID");
    }

    #[test]
    fn multi_source_respects_allowed() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let owners = multi_source_hops(&t, &[0], |n| n != 2);
        assert_eq!(owners[1], Some((1, 0)));
        assert_eq!(owners[2], None);
        assert_eq!(owners[3], None);
    }

    #[test]
    fn nodes_within_depth() {
        let t = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(nodes_within(&t, 0, 1, |_| true), vec![1]);
        assert_eq!(nodes_within(&t, 0, 2, |_| true), vec![1, 2]);
        assert_eq!(nodes_within(&t, 0, 10, |_| true), vec![1, 2, 3, 4]);
        assert_eq!(nodes_within(&t, 0, 0, |_| true), Vec::<usize>::new());
        // Restriction cuts the chain.
        assert_eq!(nodes_within(&t, 0, 10, |n| n != 2), vec![1]);
    }
}
