//! Deterministic network churn: seeded event schedules and an
//! incrementally-maintained topology.
//!
//! The paper detects boundaries of a *static* network, but its motivating
//! deployments (underwater sensing, space networks) are churn-heavy: nodes
//! die, are redeployed, and drift. This module supplies the substrate for
//! following such a network without a full `O(n·ρ)` rebuild per change:
//!
//! * [`ChurnPlan`] — a seeded, deterministic description of *how much*
//!   churn happens per epoch (join/leave/drift rates, drift bound). Its
//!   [`ChurnPlan::schedule`] expands the plan into a concrete list of
//!   [`ChurnEvent`]s under the same determinism discipline as
//!   [`crate::faults::FaultPlan`]: every random decision comes from a
//!   single [`crate::faults::Xoshiro256PlusPlus`] stream consumed in a
//!   documented, fixed order — same plan + same node count ⇒ bit-identical
//!   schedule.
//! * [`TopologyEvent`] — a *resolved* event ready to apply: joins carry a
//!   concrete position (sampled by the caller, which knows the deployment
//!   shape; see the `ballfit-netgen` churn hooks), moves carry the target
//!   position.
//! * [`DynamicTopology`] — positions + liveness + a [`Topology`] kept
//!   exactly in sync with the live node set via incremental adjacency
//!   updates against the spatial hash grid
//!   ([`ballfit_geom::grid::SpatialGrid`]). Applying an event costs
//!   `O(ρ log n)` instead of rebuilding the whole graph, and the result is
//!   pinned byte-identical to a from-scratch
//!   [`Topology::from_positions`] build (see
//!   [`DynamicTopology::rebuild_reference`] and the regression tests).
//!
//! Identity rules: node IDs are *slots* and are never reused. A permanent
//! leave keeps its slot (with its last position) but clears its edges and
//! liveness, so downstream per-node state (boundary flags, fragment
//! counts) stays index-stable across arbitrary event sequences. Joins
//! always take the next fresh slot.
//!
//! Draw-order rules for [`ChurnPlan::schedule`], per epoch:
//!
//! 1. **Leaves** — `round(leave_rate · live)` victims chosen by partial
//!    Fisher–Yates over the ascending-sorted live list; events are emitted
//!    in draw order.
//! 2. **Joins** — `round(join_rate · live)` fresh slots (`live` counted at
//!    epoch start); no random draws.
//! 3. **Moves** — `round(move_rate · live)` victims (again `live` at epoch
//!    start, capped by the post-leave/join population) by partial
//!    Fisher–Yates over the updated live list; each victim then draws a
//!    drift offset: a rejection-sampled unit direction scaled by a uniform
//!    magnitude in `[0, max_drift)`.

use ballfit_geom::grid::SpatialGrid;
use ballfit_geom::Vec3;

use crate::faults::Xoshiro256PlusPlus;
use crate::topology::{NodeId, Topology};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A seeded, deterministic churn description: per-epoch join/leave/drift
/// rates (fractions of the live population) and the drift bound.
///
/// Expand with [`ChurnPlan::schedule`]; the zero-rate plan
/// ([`ChurnPlan::none`]) produces an empty schedule.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ChurnPlan {
    /// Seed of the churn decision stream.
    pub seed: u64,
    /// Number of epochs the schedule spans.
    pub epochs: usize,
    /// Fraction of the live population that joins per epoch, in `[0, 1]`.
    pub join_rate: f64,
    /// Fraction of the live population that leaves per epoch, in `[0, 1]`.
    pub leave_rate: f64,
    /// Fraction of the live population that drifts per epoch, in `[0, 1]`.
    pub move_rate: f64,
    /// Upper bound on a single drift-move distance (absolute units).
    pub max_drift: f64,
}

impl Default for ChurnPlan {
    fn default() -> Self {
        ChurnPlan::none()
    }
}

impl ChurnPlan {
    /// The static network: no epochs, no events.
    pub fn none() -> Self {
        ChurnPlan {
            seed: 0,
            epochs: 0,
            join_rate: 0.0,
            leave_rate: 0.0,
            move_rate: 0.0,
            max_drift: 0.0,
        }
    }

    /// Builder: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder: sets the per-epoch join rate.
    pub fn with_join_rate(mut self, rate: f64) -> Self {
        self.join_rate = rate;
        self
    }

    /// Builder: sets the per-epoch leave rate.
    pub fn with_leave_rate(mut self, rate: f64) -> Self {
        self.leave_rate = rate;
        self
    }

    /// Builder: sets the per-epoch drift-move rate.
    pub fn with_move_rate(mut self, rate: f64) -> Self {
        self.move_rate = rate;
        self
    }

    /// Builder: sets the drift-distance bound.
    pub fn with_max_drift(mut self, max_drift: f64) -> Self {
        self.max_drift = max_drift;
        self
    }

    /// `true` when the plan can produce no events.
    pub fn is_none(&self) -> bool {
        self.epochs == 0
            || (self.join_rate <= 0.0 && self.leave_rate <= 0.0 && self.move_rate <= 0.0)
    }

    /// Panics (at harness entry, never inside per-node code) if a rate is
    /// NaN or outside `[0, 1]`, or the drift bound is negative or
    /// non-finite.
    pub fn validate(&self) {
        for (name, rate) in [
            ("join_rate", self.join_rate),
            ("leave_rate", self.leave_rate),
            ("move_rate", self.move_rate),
        ] {
            assert!(rate >= 0.0 && rate <= 1.0, "ChurnPlan::{name} must be in [0, 1], got {rate}");
        }
        assert!(
            self.max_drift.is_finite() && self.max_drift >= 0.0,
            "ChurnPlan::max_drift must be finite and non-negative, got {}",
            self.max_drift
        );
    }

    /// Expands the plan into a concrete event schedule for a network that
    /// starts with nodes `0..initial_nodes` live. Deterministic in
    /// `(plan, initial_nodes)`; see the module docs for the draw-order
    /// rules.
    pub fn schedule(&self, initial_nodes: usize) -> Vec<ChurnEvent> {
        self.validate();
        let mut live: Vec<NodeId> = (0..initial_nodes).collect();
        let mut next_id = initial_nodes;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(self.seed);
        let mut out = Vec::new();
        for epoch in 0..self.epochs {
            let at_start = live.len();
            let count = |rate: f64| ((rate * at_start as f64).round() as usize).min(at_start);

            // 1. Leaves: partial Fisher–Yates over the sorted live list.
            let leaves = count(self.leave_rate);
            for k in 0..leaves {
                let j = k + rng.gen_inclusive((live.len() - 1 - k) as u64) as usize;
                live.swap(k, j);
            }
            for node in live.drain(..leaves).collect::<Vec<_>>() {
                out.push(ChurnEvent { epoch, action: ChurnAction::Leave { node } });
            }
            live.sort_unstable();

            // 2. Joins: fresh slots, no draws.
            for _ in 0..count(self.join_rate) {
                out.push(ChurnEvent { epoch, action: ChurnAction::Join { node: next_id } });
                live.push(next_id); // fresh IDs are the largest: stays sorted
                next_id += 1;
            }

            // 3. Drift moves over the post-leave/join population.
            let moves = count(self.move_rate).min(live.len());
            for k in 0..moves {
                let j = k + rng.gen_inclusive((live.len() - 1 - k) as u64) as usize;
                live.swap(k, j);
                let offset = drift_offset(&mut rng, self.max_drift);
                out.push(ChurnEvent { epoch, action: ChurnAction::Move { node: live[k], offset } });
            }
            live.sort_unstable();
        }
        out
    }
}

/// A uniformly-random offset of magnitude `[0, max_drift)`: a unit
/// direction rejection-sampled from the cube (the retry loop is part of
/// the documented draw order) scaled by a uniform magnitude draw.
fn drift_offset(rng: &mut Xoshiro256PlusPlus, max_drift: f64) -> Vec3 {
    if max_drift <= 0.0 {
        return Vec3::ZERO;
    }
    loop {
        let v = Vec3::new(
            2.0 * rng.next_f64() - 1.0,
            2.0 * rng.next_f64() - 1.0,
            2.0 * rng.next_f64() - 1.0,
        );
        let n2 = v.norm_squared();
        if n2 > 1e-12 && n2 <= 1.0 {
            return v * (rng.next_f64() * max_drift / n2.sqrt());
        }
    }
}

/// One scheduled churn event (abstract: join positions and move targets
/// are resolved by the caller, which knows the deployment shape).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ChurnEvent {
    /// Epoch (0-based) the event belongs to.
    pub epoch: usize,
    /// What happens.
    pub action: ChurnAction,
}

/// The abstract action of a [`ChurnEvent`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ChurnAction {
    /// A new node joins, taking slot `node` (always the next fresh slot).
    /// The caller samples its position.
    Join {
        /// The slot the join will occupy.
        node: NodeId,
    },
    /// `node` leaves permanently.
    Leave {
        /// The departing node.
        node: NodeId,
    },
    /// `node` drifts by `offset` (`|offset| < max_drift`); the caller may
    /// clamp the target to stay inside the deployment volume.
    Move {
        /// The drifting node.
        node: NodeId,
        /// The drift vector.
        offset: Vec3,
    },
}

/// A concrete topology change, ready for [`DynamicTopology::apply`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum TopologyEvent {
    /// A node joins at `position`, taking the next fresh slot.
    Join {
        /// Where the node appears.
        position: Vec3,
    },
    /// `node` leaves permanently (slot retained, edges cleared).
    Leave {
        /// The departing node.
        node: NodeId,
    },
    /// `node` moves to `to`.
    Move {
        /// The moving node.
        node: NodeId,
        /// Its new position.
        to: Vec3,
    },
}

/// The adjacency delta one applied event produced. Every changed edge is
/// incident to [`TopologyDelta::node`] (joins only add, leaves only
/// remove, moves may do both) — the property incremental detection's
/// dirty-halo argument rests on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyDelta {
    /// The node the event acted on.
    pub node: NodeId,
    /// Neighbors gained (sorted).
    pub added: Vec<NodeId>,
    /// Neighbors lost (sorted).
    pub removed: Vec<NodeId>,
}

impl TopologyDelta {
    /// `true` if no edge changed (the node itself may still have moved or
    /// changed liveness).
    pub fn is_edgeless(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// All nodes incident to a change — the event node plus every gained
    /// or lost neighbor — sorted and deduplicated. These are the seeds of
    /// the incremental detector's dirty halo.
    pub fn touched(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(1 + self.added.len() + self.removed.len());
        out.push(self.node);
        out.extend_from_slice(&self.added);
        out.extend_from_slice(&self.removed);
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A serializable point-in-time image of a [`DynamicTopology`]: slot
/// positions, liveness flags and the radio range. The spatial grid and
/// the adjacency are deliberately *not* stored — both are deterministic
/// functions of `(positions, alive, range)` and are reconstructed by
/// [`DynamicTopology::restore`], so a snapshot is small and a restore is
/// pinned byte-identical to the maintained state it was taken from.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TopologySnapshot {
    /// All slot positions (dead slots keep their last position).
    pub positions: Vec<Vec3>,
    /// Per-slot liveness.
    pub alive: Vec<bool>,
    /// The radio range.
    pub range: f64,
}

impl TopologySnapshot {
    /// Panics if the snapshot is internally inconsistent: mismatched
    /// lengths, a non-finite position, or a non-positive radio range.
    pub fn validate(&self) {
        assert_eq!(
            self.positions.len(),
            self.alive.len(),
            "snapshot positions/alive length mismatch"
        );
        assert!(
            self.range.is_finite() && self.range > 0.0,
            "snapshot radio range must be positive"
        );
        for (i, p) in self.positions.iter().enumerate() {
            assert!(p.is_finite(), "snapshot slot {i} has non-finite position {p}");
        }
    }
}

/// A unit-disk topology maintained incrementally under churn.
///
/// Node IDs are stable slots; dead slots stay (isolated, position frozen)
/// so per-node state elsewhere never re-indexes. The maintained
/// [`Topology`] is kept byte-identical to a from-scratch build over the
/// live nodes — the regression invariant checked by
/// [`DynamicTopology::rebuild_reference`].
///
/// # Example
///
/// ```
/// use ballfit_geom::Vec3;
/// use ballfit_wsn::churn::{DynamicTopology, TopologyEvent};
///
/// let mut dt = DynamicTopology::new(
///     &[Vec3::ZERO, Vec3::new(0.8, 0.0, 0.0)],
///     1.0,
/// );
/// let delta = dt.apply(&TopologyEvent::Join { position: Vec3::new(1.6, 0.0, 0.0) });
/// assert_eq!(delta.node, 2);
/// assert_eq!(delta.added, vec![1]);
/// assert_eq!(dt.topology(), &dt.rebuild_reference());
/// ```
#[derive(Debug, Clone)]
pub struct DynamicTopology {
    positions: Vec<Vec3>,
    alive: Vec<bool>,
    range: f64,
    grid: SpatialGrid,
    topo: Topology,
}

impl DynamicTopology {
    /// Starts from a static network: all of `positions` live, unit-disk
    /// edges at radio `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not strictly positive and finite.
    pub fn new(positions: &[Vec3], range: f64) -> Self {
        assert!(range.is_finite() && range > 0.0, "radio range must be positive");
        let topo = Topology::from_positions(positions, range);
        let grid = SpatialGrid::build(positions, range);
        DynamicTopology {
            positions: positions.to_vec(),
            alive: vec![true; positions.len()],
            range,
            grid,
            topo,
        }
    }

    /// Total slot count (live + dead).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if no slot exists.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// `true` if slot `node` is live.
    pub fn is_live(&self, node: NodeId) -> bool {
        self.alive[node]
    }

    /// Sorted IDs of the live nodes.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        (0..self.len()).filter(|&i| self.alive[i]).collect()
    }

    /// All slot positions (dead slots keep their last position).
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// The radio range.
    pub fn radio_range(&self) -> f64 {
        self.range
    }

    /// The maintained connectivity graph over all slots (dead slots are
    /// isolated).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Applies one event, updating adjacency incrementally: only the
    /// grid cells around the affected node are consulted (`O(ρ log n)`),
    /// never the whole point set.
    ///
    /// # Panics
    ///
    /// Panics on a leave/move of a dead or out-of-range slot, or a join
    /// at a non-finite position.
    pub fn apply(&mut self, event: &TopologyEvent) -> TopologyDelta {
        match *event {
            TopologyEvent::Join { position } => {
                assert!(position.is_finite(), "join at non-finite position {position}");
                let node = self.positions.len();
                self.positions.push(position);
                self.alive.push(true);
                let slot = self.topo.push_isolated();
                debug_assert_eq!(slot, node);
                // The grid holds live nodes only and not yet `node`, so
                // the query yields exactly the new neighbor set.
                let mut added = self.grid.points_within(&self.positions, position, self.range);
                added.sort_unstable();
                for &nb in &added {
                    self.topo.insert_edge(node, nb);
                }
                self.grid.insert(node, position);
                TopologyDelta { node, added, removed: Vec::new() }
            }
            TopologyEvent::Leave { node } => {
                assert!(self.alive[node], "leave of dead node {node}");
                self.alive[node] = false;
                self.grid.remove(node, self.positions[node]);
                let removed: Vec<NodeId> =
                    self.topo.neighbors(node).iter().map(|&v| v as NodeId).collect();
                for &nb in &removed {
                    self.topo.remove_edge(node, nb);
                }
                TopologyDelta { node, added: Vec::new(), removed }
            }
            TopologyEvent::Move { node, to } => {
                assert!(self.alive[node], "move of dead node {node}");
                assert!(to.is_finite(), "move to non-finite position {to}");
                let old: Vec<NodeId> =
                    self.topo.neighbors(node).iter().map(|&v| v as NodeId).collect();
                self.grid.remove(node, self.positions[node]);
                self.positions[node] = to;
                let mut new: Vec<NodeId> = self.grid.points_within(&self.positions, to, self.range);
                new.sort_unstable();
                self.grid.insert(node, to);
                let added: Vec<NodeId> =
                    new.iter().copied().filter(|n| old.binary_search(n).is_err()).collect();
                let removed: Vec<NodeId> =
                    old.iter().copied().filter(|n| new.binary_search(n).is_err()).collect();
                for &nb in &removed {
                    self.topo.remove_edge(node, nb);
                }
                for &nb in &added {
                    self.topo.insert_edge(node, nb);
                }
                TopologyDelta { node, added, removed }
            }
        }
    }

    /// The from-scratch reference the incremental maintenance is pinned
    /// against: [`Topology::from_positions`] over the live nodes, mapped
    /// back onto the full slot space (dead slots isolated). `O(n·ρ)` —
    /// exactly the cost [`DynamicTopology::apply`] avoids.
    pub fn rebuild_reference(&self) -> Topology {
        let live = self.live_nodes();
        let live_pos: Vec<Vec3> = live.iter().map(|&i| self.positions[i]).collect();
        let compact = Topology::from_positions(&live_pos, self.range);
        let mut edges = Vec::with_capacity(compact.edge_count());
        for (ci, &slot) in live.iter().enumerate() {
            for &cj in compact.neighbors(ci) {
                let cj = cj as usize;
                if cj > ci {
                    edges.push((slot, live[cj]));
                }
            }
        }
        Topology::from_edges(self.positions.len(), &edges)
    }

    /// Captures the checkpointable state: positions, liveness, range.
    /// Pair with [`DynamicTopology::restore`] for crash recovery — the
    /// derived structures (grid, adjacency) are rebuilt on restore.
    pub fn snapshot(&self) -> TopologySnapshot {
        TopologySnapshot {
            positions: self.positions.clone(),
            alive: self.alive.clone(),
            range: self.range,
        }
    }

    /// Reconstructs a dynamic topology from a snapshot. The maintained
    /// adjacency is rebuilt with [`DynamicTopology::rebuild_reference`]
    /// semantics, so `restore(dt.snapshot())` is byte-identical to `dt`
    /// (the maintained topology is pinned equal to its from-scratch
    /// reference), and replaying the same events afterwards produces the
    /// same deltas.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot fails [`TopologySnapshot::validate`].
    pub fn restore(snapshot: &TopologySnapshot) -> Self {
        snapshot.validate();
        // The grid holds live slots only: build over every slot, then
        // evict the dead ones (cell layout depends only on the range).
        let mut grid = SpatialGrid::build(&snapshot.positions, snapshot.range);
        for (i, &alive) in snapshot.alive.iter().enumerate() {
            if !alive {
                grid.remove(i, snapshot.positions[i]);
            }
        }
        let mut restored = DynamicTopology {
            positions: snapshot.positions.clone(),
            alive: snapshot.alive.clone(),
            range: snapshot.range,
            grid,
            topo: Topology::from_edges(snapshot.positions.len(), &[]),
        };
        restored.topo = restored.rebuild_reference();
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ChurnPlan {
        ChurnPlan::none()
            .with_seed(7)
            .with_epochs(5)
            .with_join_rate(0.1)
            .with_leave_rate(0.1)
            .with_move_rate(0.2)
            .with_max_drift(0.5)
    }

    /// Deterministic point cloud without external RNG deps.
    fn cloud(n: usize, seed: u64, span: f64) -> Vec<Vec3> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    (2.0 * rng.next_f64() - 1.0) * span,
                    (2.0 * rng.next_f64() - 1.0) * span,
                    (2.0 * rng.next_f64() - 1.0) * span,
                )
            })
            .collect()
    }

    #[test]
    fn none_plan_is_empty() {
        assert!(ChurnPlan::none().is_none());
        assert!(ChurnPlan::none().schedule(50).is_empty());
        assert!(plan().with_epochs(0).is_none());
        assert!(!plan().is_none());
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bad_rate_is_rejected() {
        plan().with_leave_rate(1.5).validate();
    }

    #[test]
    #[should_panic(expected = "max_drift")]
    fn nan_drift_is_rejected() {
        plan().with_max_drift(f64::NAN).validate();
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = plan().schedule(100);
        let b = plan().schedule(100);
        let c = plan().with_seed(8).schedule(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn schedule_respects_rates_and_id_rules() {
        let events = plan().schedule(100);
        let mut live: Vec<NodeId> = (0..100).collect();
        let mut next_id = 100;
        let mut epoch = 0;
        let mut moved_this_epoch: Vec<NodeId> = Vec::new();
        for ev in &events {
            assert!(ev.epoch >= epoch, "epochs must be non-decreasing");
            if ev.epoch > epoch {
                epoch = ev.epoch;
                moved_this_epoch.clear();
            }
            match ev.action {
                ChurnAction::Join { node } => {
                    assert_eq!(node, next_id, "joins take fresh slots in order");
                    next_id += 1;
                    live.push(node);
                }
                ChurnAction::Leave { node } => {
                    let at = live.iter().position(|&n| n == node).expect("leave of a live node");
                    live.remove(at);
                }
                ChurnAction::Move { node, offset } => {
                    assert!(live.contains(&node), "move of a live node");
                    assert!(!moved_this_epoch.contains(&node), "one move per node per epoch");
                    moved_this_epoch.push(node);
                    assert!(offset.norm() < 0.5 + 1e-12, "drift exceeds bound: {}", offset.norm());
                }
            }
        }
        assert!(epoch < 5);
        // 10% leave + 10% join per epoch keeps the population near 100.
        assert!((90..=110).contains(&live.len()), "population drifted to {}", live.len());
    }

    #[test]
    fn drift_offsets_cover_directions() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut neg = [0usize; 3];
        for _ in 0..200 {
            let v = drift_offset(&mut rng, 1.0);
            assert!(v.norm() < 1.0);
            for (k, c) in [v.x, v.y, v.z].into_iter().enumerate() {
                if c < 0.0 {
                    neg[k] += 1;
                }
            }
        }
        for (k, &n) in neg.iter().enumerate() {
            assert!((40..=160).contains(&n), "axis {k} biased: {n}/200 negative");
        }
        assert_eq!(drift_offset(&mut rng, 0.0), Vec3::ZERO);
    }

    #[test]
    fn join_only_sequences_match_from_positions_directly() {
        let pts = cloud(60, 1, 2.0);
        let mut dt = DynamicTopology::new(&pts[..40], 1.0);
        for &p in &pts[40..] {
            dt.apply(&TopologyEvent::Join { position: p });
        }
        assert_eq!(dt.topology(), &Topology::from_positions(&pts, 1.0));
        assert_eq!(dt.live_count(), 60);
    }

    #[test]
    fn interleaved_events_stay_byte_identical_to_scratch() {
        let pts = cloud(80, 2, 2.5);
        let mut dt = DynamicTopology::new(&pts, 1.0);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);
        for step in 0..120 {
            let live = dt.live_nodes();
            let event = match rng.gen_inclusive(2) {
                0 => TopologyEvent::Join {
                    position: Vec3::new(
                        (2.0 * rng.next_f64() - 1.0) * 2.5,
                        (2.0 * rng.next_f64() - 1.0) * 2.5,
                        (2.0 * rng.next_f64() - 1.0) * 2.5,
                    ),
                },
                1 => TopologyEvent::Leave {
                    node: live[rng.gen_inclusive((live.len() - 1) as u64) as usize],
                },
                _ => TopologyEvent::Move {
                    node: live[rng.gen_inclusive((live.len() - 1) as u64) as usize],
                    to: Vec3::new(
                        (2.0 * rng.next_f64() - 1.0) * 2.5,
                        (2.0 * rng.next_f64() - 1.0) * 2.5,
                        (2.0 * rng.next_f64() - 1.0) * 2.5,
                    ),
                },
            };
            let delta = dt.apply(&event);
            assert_eq!(dt.topology(), &dt.rebuild_reference(), "diverged at step {step}");
            // Delta sanity: every changed edge is incident to the node.
            for &nb in &delta.added {
                assert!(dt.topology().are_neighbors(delta.node, nb));
            }
            for &nb in &delta.removed {
                assert!(!dt.topology().are_neighbors(delta.node, nb));
            }
        }
        assert!(dt.live_count() < dt.len());
    }

    #[test]
    fn leave_isolates_and_slot_is_not_reused() {
        let pts = vec![Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0)];
        let mut dt = DynamicTopology::new(&pts, 0.6);
        let delta = dt.apply(&TopologyEvent::Leave { node: 1 });
        assert_eq!(delta.removed, vec![0, 2]);
        assert_eq!(delta.touched(), vec![0, 1, 2]);
        assert!(delta.added.is_empty());
        assert!(!dt.is_live(1));
        assert_eq!(dt.topology().degree(1), 0);
        assert_eq!(dt.live_nodes(), vec![0, 2]);
        // A later join lands next to the dead slot but never re-links it.
        let delta = dt.apply(&TopologyEvent::Join { position: Vec3::new(0.5, 0.1, 0.0) });
        assert_eq!(delta.node, 3);
        assert_eq!(delta.added, vec![0, 2]);
        assert_eq!(dt.topology(), &dt.rebuild_reference());
    }

    #[test]
    fn move_updates_both_sides_of_the_delta() {
        let pts = vec![Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0), Vec3::new(2.0, 0.0, 0.0)];
        let mut dt = DynamicTopology::new(&pts, 0.6);
        let delta = dt.apply(&TopologyEvent::Move { node: 1, to: Vec3::new(1.8, 0.0, 0.0) });
        assert_eq!(delta.added, vec![2]);
        assert_eq!(delta.removed, vec![0]);
        assert!(!delta.is_edgeless());
        assert_eq!(dt.topology(), &dt.rebuild_reference());
        // A no-op move produces an empty delta.
        let delta = dt.apply(&TopologyEvent::Move { node: 1, to: Vec3::new(1.8, 0.0, 0.0) });
        assert!(delta.is_edgeless());
    }

    #[test]
    fn snapshot_restore_is_byte_identical_and_replayable() {
        let pts = cloud(60, 4, 2.0);
        let mut dt = DynamicTopology::new(&pts, 1.0);
        dt.apply(&TopologyEvent::Leave { node: 3 });
        dt.apply(&TopologyEvent::Join { position: Vec3::new(0.2, 0.1, 0.0) });
        dt.apply(&TopologyEvent::Move { node: 7, to: Vec3::new(1.1, -0.4, 0.3) });

        let snap = dt.snapshot();
        snap.validate();
        let mut restored = DynamicTopology::restore(&snap);
        assert_eq!(restored.positions(), dt.positions());
        assert_eq!(restored.live_nodes(), dt.live_nodes());
        assert_eq!(restored.radio_range(), dt.radio_range());
        assert_eq!(restored.topology(), dt.topology(), "restored adjacency diverged");

        // Replaying the same events on both sides stays byte-identical:
        // the restored grid holds exactly the live slots, so neighbor
        // queries agree.
        let tail = [
            TopologyEvent::Leave { node: 11 },
            TopologyEvent::Join { position: Vec3::new(-0.6, 0.3, 0.9) },
            TopologyEvent::Move { node: 20, to: Vec3::new(0.4, 0.4, -1.2) },
        ];
        for ev in &tail {
            let a = dt.apply(ev);
            let b = restored.apply(ev);
            assert_eq!(a, b, "replay delta diverged");
            assert_eq!(restored.topology(), dt.topology());
        }
        assert_eq!(restored.topology(), &restored.rebuild_reference());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn inconsistent_snapshot_is_rejected() {
        let snap =
            TopologySnapshot { positions: vec![Vec3::ZERO], alive: vec![true, false], range: 1.0 };
        DynamicTopology::restore(&snap);
    }

    #[test]
    #[should_panic(expected = "leave of dead node")]
    fn double_leave_panics() {
        let mut dt = DynamicTopology::new(&[Vec3::ZERO, Vec3::X], 2.0);
        dt.apply(&TopologyEvent::Leave { node: 0 });
        dt.apply(&TopologyEvent::Leave { node: 0 });
    }
}
