//! TTL-scoped flooding over a node subset.
//!
//! This is the communication primitive behind the paper's Isolated Fragment
//! Filtering (Sec. II-B): every boundary candidate initiates a flood with
//! TTL `T` that only other candidates forward; counting distinct received
//! origins tells each candidate the size of its boundary fragment.
//!
//! Two executions are provided:
//! * [`FragmentFlood`] — a genuine localized protocol for the round engine
//!   of [`crate::sim`], with full message accounting;
//! * [`fragment_sizes`] — the centralized equivalent (depth-limited BFS per
//!   member), used by large experiment sweeps.
//!
//! Integration tests in the `ballfit` crate assert the two agree.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::sim::{Ctx, Protocol};
use crate::topology::{NodeId, Topology};

/// Centralized-equivalent of the scoped flood: for every node `i` with
/// `member(i)`, the number of *distinct members within `ttl` hops in the
/// member-induced subgraph, counting `i` itself* — i.e. the fragment size
/// as observable by `i`. Non-members get 0.
pub fn fragment_sizes<F: Fn(NodeId) -> bool>(topo: &Topology, ttl: u32, member: F) -> Vec<usize> {
    let mut sizes = vec![0usize; topo.len()];
    // Scratch BFS state shared across sources, marked per-flood with a
    // generation stamp instead of being cleared: a fresh O(n) visited
    // array per member made this quadratic in the member count, and the
    // TTL-scoped flood itself only ever touches a few dozen nodes.
    let mut stamp = vec![0u32; topo.len()];
    let mut dist = vec![0u32; topo.len()];
    let mut queue = VecDeque::new();
    let mut round = 0u32;
    for i in 0..topo.len() {
        if !member(i) {
            continue;
        }
        if round == u32::MAX {
            stamp.iter_mut().for_each(|s| *s = 0);
            round = 0;
        }
        round += 1;
        stamp[i] = round;
        dist[i] = 0;
        queue.clear();
        queue.push_back(i);
        // The source counts itself.
        let mut count = 1usize;
        while let Some(u) = queue.pop_front() {
            let du = dist[u];
            if du == ttl {
                continue;
            }
            for &v in topo.neighbors(u) {
                let v = v as NodeId;
                if stamp[v] != round && member(v) {
                    stamp[v] = round;
                    dist[v] = du + 1;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        sizes[i] = count;
    }
    sizes
}

/// Message of the fragment flood: `(origin, remaining_ttl)`.
pub type FloodMsg = (NodeId, u32);

/// Localized scoped-flooding protocol (one instance per node).
///
/// Members originate a token with the configured TTL; every member forwards
/// each *new* origin it sees with a decremented TTL. After quiescence,
/// [`FragmentFlood::fragment_size`] returns the number of distinct origins
/// seen (including the node's own), matching [`fragment_sizes`].
#[derive(Debug, Clone)]
pub struct FragmentFlood {
    member: bool,
    ttl: u32,
    seen: BTreeSet<NodeId>,
}

impl FragmentFlood {
    /// Creates the per-node state. `member` marks boundary candidates;
    /// `ttl` is the paper's `T`.
    pub fn new(member: bool, ttl: u32) -> Self {
        FragmentFlood { member, ttl, seen: BTreeSet::new() }
    }

    /// Distinct origins seen, counting the node itself; 0 for non-members.
    pub fn fragment_size(&self) -> usize {
        if self.member {
            self.seen.len()
        } else {
            0
        }
    }
}

impl Protocol for FragmentFlood {
    type Msg = FloodMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if !self.member {
            return;
        }
        let me = ctx.node();
        self.seen.insert(me);
        if self.ttl > 0 {
            ctx.broadcast((me, self.ttl - 1));
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: &Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
        if !self.member {
            return; // non-boundary nodes do not forward (paper, Sec. II-B)
        }
        let (origin, ttl) = *msg;
        if self.seen.insert(origin) && ttl > 0 {
            ctx.broadcast((origin, ttl - 1));
        }
    }
}

/// Loss-tolerant variant of [`FragmentFlood`] for unreliable radios
/// ([`crate::faults::FaultPlan`]), hardened two ways:
///
/// * **Re-broadcast** — every forward is repeated `repeats − 1` more
///   times on an exponentially spaced schedule (gaps of 1, 2, 4, …
///   rounds, capped at [`REPEAT_GAP_CAP`]), so a token crosses a link
///   unless all `repeats` copies are dropped — and a burst of correlated
///   loss cannot eat the whole budget in consecutive rounds.
/// * **Max-TTL tracking** — the node remembers the *best* (largest)
///   remaining TTL seen per origin and re-forwards when a better copy
///   arrives. On a lossy radio the first arrival may come via a longer
///   path with a smaller TTL; a plain `seen`-set would lock that in and
///   silently shrink the origin's reach. Tracking the max makes the
///   protocol monotone — it converges to exactly the shortest-path TTL
///   semantics of [`fragment_sizes`], like min-label flooding does for
///   grouping.
///
/// Duplicated deliveries are idempotent (max of a max). With
/// `repeats = 1` on a perfect radio the message schedule is identical to
/// [`FragmentFlood`]: synchronous flooding always delivers the best TTL
/// first, so no re-forward ever triggers.
#[derive(Debug, Clone)]
pub struct HardenedFragmentFlood {
    member: bool,
    ttl: u32,
    repeats: u32,
    /// Best remaining TTL seen per origin (own origin: the full TTL).
    best: BTreeMap<NodeId, u32>,
    /// Forwards still owed re-broadcasts, with their backoff state.
    pending: Vec<PendingRepeat>,
    /// Forwards triggered by a *better* copy of an already-seen origin —
    /// the work the max-TTL hardening does on top of the plain flood.
    reforwards: u64,
}

/// Ceiling for the doubling gap between repeat broadcasts, in rounds.
pub const REPEAT_GAP_CAP: u32 = 8;

/// One forward still owed re-broadcasts: the token, how many repeats are
/// left, and the exponential-backoff cursor (`cooldown` quiet round-ends
/// before the next fire; `gap` doubles after each fire up to
/// [`REPEAT_GAP_CAP`]).
#[derive(Debug, Clone)]
struct PendingRepeat {
    origin: NodeId,
    fwd_ttl: u32,
    left: u32,
    cooldown: u32,
    gap: u32,
}

impl HardenedFragmentFlood {
    /// Creates the per-node state; `repeats ≥ 1` is the number of times
    /// each forward is transmitted (1 = no hardening).
    pub fn new(member: bool, ttl: u32, repeats: u32) -> Self {
        HardenedFragmentFlood {
            member,
            ttl,
            repeats: repeats.max(1),
            best: BTreeMap::new(),
            pending: Vec::new(),
            reforwards: 0,
        }
    }

    /// Distinct origins seen, counting the node itself; 0 for non-members.
    pub fn fragment_size(&self) -> usize {
        if self.member {
            self.best.len()
        } else {
            0
        }
    }

    /// Forwards this node performed because a better copy of an
    /// already-seen origin arrived (0 on a perfect radio). Harvested by
    /// traced runners as [`ballfit_obs::TraceEvent::Reforwards`].
    pub fn reforwards(&self) -> u64 {
        self.reforwards
    }

    fn forward(&mut self, origin: NodeId, fwd_ttl: u32, ctx: &mut Ctx<'_, FloodMsg>) {
        ctx.broadcast((origin, fwd_ttl));
        if self.repeats > 1 {
            // First repeat on the very next round (cooldown 0), then the
            // gap doubles: 1, 2, 4, … rounds between copies.
            self.pending.push(PendingRepeat {
                origin,
                fwd_ttl,
                left: self.repeats - 1,
                cooldown: 0,
                gap: 1,
            });
        }
    }
}

impl Protocol for HardenedFragmentFlood {
    type Msg = FloodMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if !self.member {
            return;
        }
        let me = ctx.node();
        self.best.insert(me, self.ttl);
        if self.ttl > 0 {
            self.forward(me, self.ttl - 1, ctx);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: &Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
        if !self.member {
            return;
        }
        let (origin, ttl) = *msg;
        let known = self.best.contains_key(&origin);
        let improved = self.best.get(&origin).is_none_or(|&t| ttl > t);
        if improved {
            self.best.insert(origin, ttl);
            if ttl > 0 {
                if known {
                    self.reforwards += 1;
                }
                self.forward(origin, ttl - 1, ctx);
            }
        }
    }

    fn on_round_end(&mut self, _round: usize, ctx: &mut Ctx<'_, Self::Msg>) {
        let mut due = std::mem::take(&mut self.pending);
        for mut rep in due.drain(..) {
            if rep.cooldown > 0 {
                rep.cooldown -= 1;
                self.pending.push(rep);
                continue;
            }
            ctx.broadcast((rep.origin, rep.fwd_ttl));
            rep.left -= 1;
            if rep.left > 0 {
                rep.gap = (rep.gap * 2).min(REPEAT_GAP_CAP);
                rep.cooldown = rep.gap - 1;
                self.pending.push(rep);
            }
        }
    }

    fn wants_tick(&self) -> bool {
        !self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::sim::Simulator;

    fn run_flood(topo: &Topology, members: &[bool], ttl: u32) -> (Vec<usize>, u64) {
        let mut sim = Simulator::new(topo, |id| FragmentFlood::new(members[id], ttl));
        let stats = sim.run(ttl as usize + 2);
        assert!(stats.quiescent, "flood must terminate within TTL rounds");
        let sizes = (0..topo.len()).map(|i| sim.node(i).fragment_size()).collect();
        (sizes, stats.messages)
    }

    #[test]
    fn protocol_matches_centralized_on_chain() {
        // members: 0,1,2,4 — node 3 breaks the chain.
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let members = [true, true, true, false, true];
        for ttl in 0..4 {
            let (proto, _) = run_flood(&topo, &members, ttl);
            let central = fragment_sizes(&topo, ttl, |n| members[n]);
            assert_eq!(proto, central, "ttl={ttl}");
        }
        // Sanity: with ttl≥2 the {0,1,2} fragment is fully visible.
        let central = fragment_sizes(&topo, 2, |n| members[n]);
        assert_eq!(central, vec![3, 3, 3, 0, 1]);
    }

    #[test]
    fn ttl_zero_sees_only_self() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let (sizes, messages) = run_flood(&topo, &[true, true, true], 0);
        assert_eq!(sizes, vec![1, 1, 1]);
        assert_eq!(messages, 0);
    }

    #[test]
    fn non_members_do_not_forward_or_count() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let (sizes, _) = run_flood(&topo, &[true, false, true], 5);
        assert_eq!(sizes, vec![1, 0, 1]);
    }

    #[test]
    fn message_count_is_bounded_by_fragment_and_degree() {
        // Complete-ish member subgraph: each of m members forwards each of m
        // origins at most once → messages ≤ m² · max_degree.
        let topo = Topology::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let members = [true, true, true, true];
        let (sizes, messages) = run_flood(&topo, &members, 3);
        assert_eq!(sizes, vec![4, 4, 4, 4]);
        assert!(messages <= 16 * 3, "messages = {messages}");
    }

    #[test]
    fn hardened_with_one_repeat_matches_plain_flood_exactly() {
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let members = [true, true, true, false, true];
        for ttl in 0..4 {
            let (plain, plain_msgs) = run_flood(&topo, &members, ttl);
            let mut sim =
                Simulator::new(&topo, |id| HardenedFragmentFlood::new(members[id], ttl, 1));
            let stats = sim.run(ttl as usize + 2);
            assert!(stats.quiescent);
            let sizes: Vec<usize> = (0..topo.len()).map(|i| sim.node(i).fragment_size()).collect();
            assert_eq!(sizes, plain, "ttl={ttl}");
            assert_eq!(stats.messages, plain_msgs, "repeats=1 must not add messages");
            for i in 0..topo.len() {
                assert_eq!(sim.node(i).reforwards(), 0, "perfect radio never re-forwards");
            }
        }
    }

    #[test]
    fn hardened_flood_survives_a_lossy_radio() {
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let members = [true, true, true, false, true];
        let ttl = 3;
        let central = fragment_sizes(&topo, ttl, |n| members[n]);
        let plan = FaultPlan::lossy(42, 0.25).with_duplication(0.1).with_max_delay(1);

        // The plain flood loses origins under this radio…
        let mut plain = Simulator::new(&topo, |id| FragmentFlood::new(members[id], ttl));
        plain.run_with_faults(60, &plan);
        let plain_sizes: Vec<usize> =
            (0..topo.len()).map(|i| plain.node(i).fragment_size()).collect();
        assert_ne!(plain_sizes, central, "loss too mild to demonstrate hardening");

        // …while the hardened flood still matches the centralized answer.
        let mut sim = Simulator::new(&topo, |id| HardenedFragmentFlood::new(members[id], ttl, 5));
        let stats = sim.run_with_faults(120, &plan);
        assert!(stats.quiescent);
        let sizes: Vec<usize> = (0..topo.len()).map(|i| sim.node(i).fragment_size()).collect();
        assert_eq!(sizes, central);
        assert!(stats.faults.dropped > 0, "the radio must actually have dropped something");
    }

    #[test]
    fn centralized_matches_protocol_on_random_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let n = 30;
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen_bool(0.12) {
                        edges.push((a, b));
                    }
                }
            }
            let topo = Topology::from_edges(n, &edges);
            let members: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.6)).collect();
            let ttl = rng.gen_range(0..4);
            let (proto, _) = run_flood(&topo, &members, ttl);
            let central = fragment_sizes(&topo, ttl, |i| members[i]);
            assert_eq!(proto, central);
        }
    }
}
