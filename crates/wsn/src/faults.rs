//! Deterministic fault injection for the round engine.
//!
//! The paper's protocols are specified over an idealized radio: every
//! message is delivered exactly once, one round after it is sent, and no
//! node ever fails. Real deployments — and the related distributed
//! boundary-detection work this reproduction benchmarks against — see
//! lossy links, duplicated and delayed frames, and fail-stop node
//! crashes. A [`FaultPlan`] describes such an unreliable radio; the
//! engine applies it in [`crate::sim::Simulator::run_with_faults`].
//!
//! Determinism is non-negotiable (it is what makes the robustness sweeps
//! reproducible and the equivalence tests meaningful), so every random
//! decision is drawn from a hand-rolled seeded PRNG ([`SplitMix64`]
//! seeding [`Xoshiro256PlusPlus`]) in a fixed order: same plan + same
//! protocol ⇒ bit-identical run. No `thread_rng`, no wall clock — the
//! `ballfit-lint` determinism pass holds for this module like any other.
//!
//! Fault semantics:
//!
//! * **Loss** — each transmission is dropped independently with a
//!   per-link probability: the plan's base [`FaultPlan::loss`] scaled by
//!   a deterministic per-`(from, to)` factor in `[0.5, 1.5)`, so some
//!   links are consistently worse than others (clamped to `[0, 1]`).
//! * **Duplication** — with probability [`FaultPlan::duplication`] a
//!   transmission is delivered twice (the copy is delayed
//!   independently).
//! * **Delay** — each delivery is postponed by a uniform extra
//!   `0..=max_delay` rounds beyond the usual next-round delivery.
//! * **Crashes** — fail-stop with state retention: a down node sends
//!   nothing, receives nothing (in-flight messages addressed to it are
//!   lost), and takes no round callbacks. On recovery it resumes with
//!   its pre-crash state; a node that was down before the run started is
//!   started (`on_start`) at its recovery round instead.
//!
//! [`FaultPlan::none`] injects nothing, and the engine's zero-fault path
//! is regression-tested to be byte-identical to the perfect-delivery
//! engine.

use crate::topology::NodeId;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Sebastiano Vigna's SplitMix64: a tiny, full-period 64-bit generator.
/// Used directly for stateless per-link hashing and to seed
/// [`Xoshiro256PlusPlus`] (its intended role).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed; any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Blackman–Vigna xoshiro256++: the fault stream's workhorse generator
/// (fast, tiny state, excellent statistical quality).
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seeds the four state words from a [`SplitMix64`] stream, the
    /// seeding procedure recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256PlusPlus { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)` from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (`p ≤ 0` never fires,
    /// `p ≥ 1` always fires).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `0..=bound`. Uses a modulo reduction: the bias
    /// is ≤ `bound / 2⁶⁴`, irrelevant for the tiny bounds used here.
    pub fn gen_inclusive(&mut self, bound: u64) -> u64 {
        if bound == u64::MAX {
            self.next_u64()
        } else {
            self.next_u64() % (bound + 1)
        }
    }
}

/// One scheduled fail-stop event: `node` goes down at the start of round
/// `down_at` (0-based; `0` means "before `on_start`") and — if `up_at`
/// is set — comes back at the start of round `up_at` with its state
/// intact. `up_at: None` is a permanent crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Crash {
    /// The failing node.
    pub node: NodeId,
    /// First round (0-based) the node is down.
    pub down_at: usize,
    /// Round the node recovers, or `None` for a permanent crash.
    pub up_at: Option<usize>,
}

/// Counters of injected faults, reported in
/// [`crate::sim::RunStats::faults`]. All zero on the perfect-delivery
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FaultCounts {
    /// Transmissions dropped by link loss.
    pub dropped: u64,
    /// Extra deliveries injected by duplication.
    pub duplicated: u64,
    /// Deliveries postponed beyond the normal next-round latency.
    pub delayed: u64,
    /// Deliveries lost because the receiver was down at delivery time.
    pub crash_lost: u64,
}

/// A deterministic description of an unreliable radio: link loss,
/// duplication, bounded delivery delay, and scheduled node crashes, all
/// driven by `seed`. See the module docs for exact semantics.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FaultPlan {
    /// Seed of the fault decision stream (and of per-link loss factors).
    pub seed: u64,
    /// Base per-transmission drop probability in `[0, 1]`; scaled per
    /// link by a deterministic factor in `[0.5, 1.5)`.
    pub loss: f64,
    /// Per-transmission duplication probability in `[0, 1]`.
    pub duplication: f64,
    /// Maximum extra delivery delay in rounds (uniform `0..=max_delay`).
    pub max_delay: u32,
    /// Scheduled fail-stop crashes/recoveries.
    pub crashes: Vec<Crash>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The perfect radio: nothing is dropped, duplicated, delayed, or
    /// crashed. [`crate::sim::Simulator::run_with_faults`] with this plan
    /// is byte-identical to [`crate::sim::Simulator::run`].
    pub fn none() -> Self {
        FaultPlan { seed: 0, loss: 0.0, duplication: 0.0, max_delay: 0, crashes: Vec::new() }
    }

    /// A plan with only link loss, the most common single knob.
    pub fn lossy(seed: u64, loss: f64) -> Self {
        FaultPlan { seed, loss, ..FaultPlan::none() }
    }

    /// Builder: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the base link-loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Builder: sets the duplication probability.
    pub fn with_duplication(mut self, duplication: f64) -> Self {
        self.duplication = duplication;
        self
    }

    /// Builder: sets the maximum extra delivery delay (rounds).
    pub fn with_max_delay(mut self, max_delay: u32) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Builder: adds explicit crash events.
    pub fn with_crashes(mut self, crashes: impl IntoIterator<Item = Crash>) -> Self {
        self.crashes.extend(crashes);
        self
    }

    /// Builder: crashes a deterministic pseudo-random `fraction` of the
    /// `n` nodes (rounded to the nearest count, chosen by partial
    /// Fisher–Yates from this plan's seed), all going down at `down_at`
    /// and recovering at `up_at` (or never, if `None`).
    pub fn with_random_crashes(
        mut self,
        n: usize,
        fraction: f64,
        down_at: usize,
        up_at: Option<usize>,
    ) -> Self {
        let count = ((fraction * n as f64).round() as usize).min(n);
        let mut pool: Vec<NodeId> = (0..n).collect();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(self.seed ^ 0xC2B2_AE3D_27D4_EB4F);
        for i in 0..count {
            let j = i + rng.gen_inclusive((n - 1 - i) as u64) as usize;
            pool.swap(i, j);
            self.crashes.push(Crash { node: pool[i], down_at, up_at });
        }
        self
    }

    /// `true` when the plan injects nothing at all (the engine's
    /// perfect-delivery special case).
    pub fn is_none(&self) -> bool {
        self.loss <= 0.0
            && self.duplication <= 0.0
            && self.max_delay == 0
            && self.crashes.is_empty()
    }

    /// Panics (at engine entry, not inside any protocol handler) if a
    /// probability is NaN or outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.loss >= 0.0 && self.loss <= 1.0,
            "FaultPlan::loss must be in [0, 1], got {}",
            self.loss
        );
        assert!(
            self.duplication >= 0.0 && self.duplication <= 1.0,
            "FaultPlan::duplication must be in [0, 1], got {}",
            self.duplication
        );
    }

    /// The per-link drop probability for transmissions `from → to`: the
    /// base loss scaled by a deterministic factor in `[0.5, 1.5)`,
    /// clamped to `[0, 1]`. Zero iff the base loss is zero.
    pub fn link_loss(&self, from: NodeId, to: NodeId) -> f64 {
        if self.loss <= 0.0 {
            return 0.0;
        }
        let key = self
            .seed
            .wrapping_add((from as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((to as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        let u = (SplitMix64::new(key).next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (self.loss * (0.5 + u)).clamp(0.0, 1.0)
    }

    /// The fault decision stream consumed by the engine.
    pub fn stream(&self) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(self.seed)
    }

    /// All crash transitions as `(round, node, comes_up)` sorted by
    /// round (downs before ups within a round, then by node).
    pub fn schedule(&self) -> Vec<(usize, NodeId, bool)> {
        let mut events: Vec<(usize, NodeId, bool)> = Vec::new();
        for c in &self.crashes {
            events.push((c.down_at, c.node, false));
            if let Some(up) = c.up_at {
                events.push((up, c.node, true));
            }
        }
        events.sort_by_key(|&(round, node, up)| (round, up, node));
        events
    }

    /// The last round at which a crash transition occurs, if any. Runners
    /// add this to their round budgets so quiescence can account for
    /// every scheduled event.
    pub fn last_event_round(&self) -> Option<usize> {
        self.crashes.iter().map(|c| c.up_at.map_or(c.down_at, |u| u.max(c.down_at))).max()
    }

    /// Extra rounds a runner should grant beyond its fault-free budget:
    /// all scheduled events plus headroom for delayed deliveries and
    /// retransmission cycles.
    pub fn round_slack(&self) -> usize {
        self.last_event_round().map_or(0, |r| r + 1) + 4 * self.max_delay as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256PlusPlus::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256PlusPlus::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xoshiro256PlusPlus::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        // SplitMix64 likewise.
        let mut s1 = SplitMix64::new(7);
        let mut s2 = SplitMix64::new(7);
        assert_eq!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn uniform_draws_stay_in_range() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f), "f64 draw out of range: {f}");
            assert!(r.gen_inclusive(5) <= 5);
        }
        assert!(!r.gen_bool(0.0), "p=0 must never fire");
        assert!(r.gen_bool(1.0), "p=1 must always fire");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "p=0.3 over 10k draws: {hits}");
    }

    #[test]
    fn none_plan_is_none_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        plan.validate();
        assert_eq!(plan.schedule(), vec![]);
        assert_eq!(plan.last_event_round(), None);
        assert_eq!(plan.round_slack(), 0);
        assert!(plan.link_loss(0, 1) <= 0.0);
        assert!(!FaultPlan::lossy(1, 0.1).is_none());
        assert!(!FaultPlan::none().with_max_delay(2).is_none());
        assert!(!FaultPlan::none().with_duplication(0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "loss must be in [0, 1]")]
    fn out_of_range_loss_is_rejected() {
        FaultPlan::lossy(0, 1.5).validate();
    }

    #[test]
    #[should_panic(expected = "duplication must be in [0, 1]")]
    fn nan_duplication_is_rejected() {
        FaultPlan::none().with_duplication(f64::NAN).validate();
    }

    #[test]
    fn link_loss_is_per_link_deterministic_and_bounded() {
        let plan = FaultPlan::lossy(5, 0.2);
        let l01 = plan.link_loss(0, 1);
        let l10 = plan.link_loss(1, 0);
        assert_eq!(l01.to_bits(), plan.link_loss(0, 1).to_bits(), "per-link loss must be stable");
        for from in 0..20 {
            for to in 0..20 {
                let l = plan.link_loss(from, to);
                assert!((0.2 * 0.5..0.2 * 1.5).contains(&l), "link loss out of band: {l}");
            }
        }
        // Directionality: the two directions of a link are independent
        // draws (equal only by coincidence).
        let distinct = (0..50)
            .filter(|&i| {
                let a = plan.link_loss(i, i + 1);
                let b = plan.link_loss(i + 1, i);
                (a - b).abs() > 1e-12
            })
            .count();
        assert!(distinct > 40, "per-link factors look constant");
        let _ = (l01, l10);
    }

    #[test]
    fn schedule_is_sorted_with_downs_before_ups() {
        let plan = FaultPlan::none().with_crashes([
            Crash { node: 3, down_at: 2, up_at: Some(5) },
            Crash { node: 1, down_at: 5, up_at: None },
            Crash { node: 2, down_at: 0, up_at: Some(2) },
        ]);
        assert_eq!(
            plan.schedule(),
            vec![(0, 2, false), (2, 3, false), (2, 2, true), (5, 1, false), (5, 3, true)]
        );
        assert_eq!(plan.last_event_round(), Some(5));
        assert!(plan.round_slack() >= 6);
    }

    #[test]
    fn random_crashes_are_distinct_and_deterministic() {
        let plan = FaultPlan::none().with_seed(11).with_random_crashes(100, 0.1, 1, Some(4));
        assert_eq!(plan.crashes.len(), 10);
        let mut nodes: Vec<NodeId> = plan.crashes.iter().map(|c| c.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 10, "crashed nodes must be distinct");
        let again = FaultPlan::none().with_seed(11).with_random_crashes(100, 0.1, 1, Some(4));
        assert_eq!(plan, again);
        let other = FaultPlan::none().with_seed(12).with_random_crashes(100, 0.1, 1, Some(4));
        assert_ne!(plan.crashes, other.crashes);
        // Fraction 1.0 crashes everyone; 0.0 crashes no one.
        assert_eq!(FaultPlan::none().with_random_crashes(5, 1.0, 0, None).crashes.len(), 5);
        assert!(FaultPlan::none().with_random_crashes(5, 0.0, 0, None).crashes.is_empty());
    }
}
