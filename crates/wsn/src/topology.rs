//! Network connectivity graphs in flat CSR storage.
//!
//! Neighbor lists live in one contiguous `u32` arena indexed by per-node
//! `(start, len, cap)` offset arrays — compressed sparse row with mutation
//! headroom. Static constructions ([`Topology::from_positions`],
//! [`Topology::from_edges`]) are *tight*: `cap == len` everywhere, nodes
//! laid out in index order, so the whole graph is two flat vectors and a
//! detector sweep walks the arena sequentially. The churn layer mutates a
//! topology in place through the crate-private edge mutators, which keep
//! each node's list sorted inside its arena region and relocate a full
//! region to the arena tail (doubling its capacity, tombstoning the old
//! slots) when it outgrows it; once tombstones exceed half the arena, a
//! compaction pass rebuilds the tight canonical layout. Equality is
//! *semantic* — per-node neighbor slices plus the edge count — so a
//! slack-bearing maintained topology still compares equal to a tight
//! from-scratch rebuild, and [`Topology::canonical_csr`] exposes the
//! tight form for byte-level pins.

use ballfit_geom::grid::SpatialGrid;
use ballfit_geom::Vec3;

/// Index type for network nodes.
pub type NodeId = usize;

/// An undirected connectivity graph over `n` nodes in flat CSR storage.
///
/// Neighbor lists are sorted, deduplicated and symmetric by construction;
/// [`Topology::neighbors`] returns them as `&[u32]` slices of the arena.
#[derive(Clone)]
pub struct Topology {
    /// Arena offset of each node's neighbor region.
    start: Vec<u32>,
    /// Live neighbor count of each node.
    len: Vec<u32>,
    /// Slot capacity of each node's region (`cap >= len`; `== len` in
    /// tight layouts).
    cap: Vec<u32>,
    /// The flat neighbor arena.
    arena: Vec<u32>,
    /// Number of undirected edges.
    edge_count: usize,
    /// Arena slots abandoned by region relocations; compaction trigger.
    dead: u32,
}

/// Summary statistics over nodal degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

impl Topology {
    /// Builds a topology from node positions and a radio transmission
    /// `range` (unit-disk graph in 3D: nodes within `range` are neighbors).
    /// The adjacency is built directly in CSR form — two counting passes
    /// over the spatial grid, no per-node allocation.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not strictly positive and finite.
    pub fn from_positions(positions: &[Vec3], range: f64) -> Self {
        assert!(range.is_finite() && range > 0.0, "radio range must be positive");
        if positions.is_empty() {
            return Topology::empty();
        }
        let grid = SpatialGrid::build(positions, range);
        let (offsets, arena) = grid.adjacency_csr(positions, range);
        let edge_count = arena.len() / 2;
        let len: Vec<u32> = offsets.windows(2).map(|w| w[1] - w[0]).collect();
        let mut start = offsets;
        start.pop();
        Topology { cap: len.clone(), start, len, arena, edge_count, dead: 0 }
    }

    /// Builds a topology from explicit undirected edges over `n` nodes.
    /// Duplicate edges and both orientations are tolerated; self-loops are
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= n` or is a self-loop, or if
    /// `n` exceeds the `u32` index space.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        assert!(n <= u32::MAX as usize, "node count exceeds u32 index space");
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a}, {b}) out of range for {n} nodes");
            assert!(a != b, "self-loop at node {a}");
            adjacency[a].push(b as u32);
            adjacency[b].push(a as u32);
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }
        Self::from_lists(&adjacency)
    }

    /// Flattens per-node neighbor lists into the tight canonical layout.
    fn from_lists(lists: &[Vec<u32>]) -> Self {
        let total: usize = lists.iter().map(Vec::len).sum();
        assert!(total <= u32::MAX as usize, "adjacency arena exceeds u32 index space");
        let mut start = Vec::with_capacity(lists.len());
        let mut len = Vec::with_capacity(lists.len());
        let mut arena = Vec::with_capacity(total);
        for list in lists {
            start.push(arena.len() as u32);
            len.push(list.len() as u32);
            arena.extend_from_slice(list);
        }
        let edge_count = total / 2;
        Topology { cap: len.clone(), start, len, arena, edge_count, dead: 0 }
    }

    fn empty() -> Self {
        Topology {
            start: Vec::new(),
            len: Vec::new(),
            cap: Vec::new(),
            arena: Vec::new(),
            edge_count: 0,
            dead: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len.len()
    }

    /// `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len.is_empty()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sorted neighbor list of `node`, as a contiguous slice of the flat
    /// arena.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[u32] {
        let s = self.start[node] as usize;
        &self.arena[s..s + self.len[node] as usize]
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.len[node] as usize
    }

    /// Returns `true` if `a` and `b` are radio neighbors.
    #[inline]
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&(b as u32)).is_ok()
    }

    /// The closed neighborhood of `node`: itself plus its neighbors,
    /// sorted. This is the paper's `N(i)`.
    pub fn closed_neighborhood(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.degree(node) + 1);
        let mut inserted_self = false;
        for &nb in self.neighbors(node) {
            let nb = nb as NodeId;
            if !inserted_self && nb > node {
                out.push(node);
                inserted_self = true;
            }
            out.push(nb);
        }
        if !inserted_self {
            out.push(node);
        }
        out
    }

    /// The closed `k`-hop neighborhood of `node`: all nodes within `k`
    /// hops including `node` itself, sorted. `k = 1` equals
    /// [`Topology::closed_neighborhood`].
    pub fn closed_k_hop_neighborhood(&self, node: NodeId, k: u32) -> Vec<NodeId> {
        if k == 1 {
            // The dominant case (default witness scope): the answer is the
            // node's CSR slice plus itself. The BFS below allocates an
            // O(n) distance array per call, which turns any per-node sweep
            // quadratic — at ladder scale that memset dominated detection.
            return self.closed_neighborhood(node);
        }
        let mut members = crate::bfs::nodes_within(self, node, k, |_| true);
        let insert_at = members.binary_search(&node).err().expect("self not in result");
        members.insert(insert_at, node);
        members
    }

    /// Degree statistics over all nodes.
    ///
    /// # Panics
    ///
    /// Panics on an empty topology.
    pub fn degree_stats(&self) -> DegreeStats {
        assert!(!self.is_empty(), "degree stats of an empty topology");
        let min = self.len.iter().copied().min().unwrap() as usize;
        let max = self.len.iter().copied().max().unwrap() as usize;
        let mean = self.len.iter().map(|&d| d as u64).sum::<u64>() as f64 / self.len() as f64;
        DegreeStats { min, max, mean }
    }

    /// Hop distances from `source` via BFS; `None` for unreachable nodes.
    pub fn hop_distances(&self, source: NodeId) -> Vec<Option<u32>> {
        crate::bfs::hop_distances(self, source, |_| true)
    }

    /// `true` if every node is reachable from node 0 (or the graph is empty).
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.hop_distances(0).iter().all(Option::is_some)
    }

    /// Nodes with no neighbors.
    pub fn isolated_nodes(&self) -> Vec<NodeId> {
        (0..self.len()).filter(|&i| self.degree(i) == 0).collect()
    }

    /// The tight canonical CSR form: `(offsets, arena)` with
    /// `offsets.len() == n + 1` and node `i`'s neighbors at
    /// `arena[offsets[i]..offsets[i + 1]]`. Static constructions are
    /// already in this layout; a churn-maintained topology may carry
    /// slack and tombstones, which this strips. Two topologies are
    /// [`PartialEq`]-equal exactly when their canonical forms are
    /// byte-identical.
    pub fn canonical_csr(&self) -> (Vec<u32>, Vec<u32>) {
        let mut offsets = Vec::with_capacity(self.len() + 1);
        let mut arena = Vec::with_capacity(2 * self.edge_count);
        offsets.push(0);
        for i in 0..self.len() {
            arena.extend_from_slice(self.neighbors(i));
            offsets.push(arena.len() as u32);
        }
        (offsets, arena)
    }

    /// Arena slots currently allocated (live + slack + tombstoned) — the
    /// storage actually held, as opposed to the `2 * edge_count` a tight
    /// layout needs. Static builds have no overhead.
    pub fn arena_slots(&self) -> usize {
        self.arena.len()
    }

    // ---- incremental mutation (crate-private: only `churn` uses these) ----
    //
    // `Topology` stays immutable to the outside world; the churn layer
    // maintains one incrementally while preserving the construction
    // invariants (sorted, deduplicated, symmetric neighbor lists and an
    // exact edge count), so `PartialEq` against a from-scratch build stays
    // meaningful. Mutation works inside each node's `[start, start + cap)`
    // arena region: removals shift the region's tail left (leaving slack
    // below `cap`), insertions shift right into slack, and a full region
    // relocates to the arena tail with doubled capacity. Relocation
    // abandons the old slots; when those tombstones exceed half the arena,
    // `compact` rebuilds the tight canonical layout.

    /// Appends a node with no edges, returning its ID.
    pub(crate) fn push_isolated(&mut self) -> NodeId {
        assert!(self.len() < u32::MAX as usize, "node count exceeds u32 index space");
        self.start.push(self.arena.len() as u32);
        self.len.push(0);
        self.cap.push(0);
        self.len.len() - 1
    }

    /// Inserts `value` into `node`'s sorted region, relocating the region
    /// to the arena tail if it is at capacity. `msg` is the panic message
    /// when the value is already present.
    fn half_insert(&mut self, node: NodeId, value: u32, msg: &str) {
        let pos = self.neighbors(node).binary_search(&value).err().expect(msg);
        let (s, l) = (self.start[node] as usize, self.len[node] as usize);
        if (l as u32) < self.cap[node] {
            self.arena.copy_within(s + pos..s + l, s + pos + 1);
            self.arena[s + pos] = value;
        } else {
            // Region full: move it to the arena tail with doubled capacity
            // and tombstone the old slots. Unused slots are filled with a
            // sentinel so arena contents stay a deterministic function of
            // the operation history.
            let new_cap = (2 * l).max(4);
            assert!(
                self.arena.len() + new_cap <= u32::MAX as usize,
                "adjacency arena exceeds u32 index space"
            );
            let new_start = self.arena.len() as u32;
            self.arena.reserve(new_cap);
            for k in 0..pos {
                let v = self.arena[s + k];
                self.arena.push(v);
            }
            self.arena.push(value);
            for k in pos..l {
                let v = self.arena[s + k];
                self.arena.push(v);
            }
            self.arena.resize(new_start as usize + new_cap, u32::MAX);
            self.dead += self.cap[node];
            self.start[node] = new_start;
            self.cap[node] = new_cap as u32;
        }
        self.len[node] += 1;
    }

    /// Removes `value` from `node`'s sorted region, shifting the tail left
    /// (the freed slot becomes slack under `cap`). `msg` is the panic
    /// message when the value is absent.
    fn half_remove(&mut self, node: NodeId, value: u32, msg: &str) {
        let pos = self.neighbors(node).binary_search(&value).expect(msg);
        let (s, l) = (self.start[node] as usize, self.len[node] as usize);
        self.arena.copy_within(s + pos + 1..s + l, s + pos);
        self.len[node] -= 1;
    }

    /// Rebuilds the tight canonical layout, dropping all tombstones and
    /// slack.
    fn compact(&mut self) {
        let (offsets, arena) = self.canonical_csr();
        self.arena = arena;
        let mut start = offsets;
        start.pop();
        for i in 0..self.len.len() {
            self.cap[i] = self.len[i];
        }
        self.start = start;
        self.dead = 0;
    }

    /// Compacts once relocation tombstones exceed half the arena — an
    /// amortized-O(1) policy (relocations pay for the slots they abandon)
    /// whose trigger depends only on the operation history, keeping
    /// maintained layouts deterministic.
    fn maybe_compact(&mut self) {
        if self.dead as usize * 2 > self.arena.len() {
            self.compact();
        }
    }

    /// Inserts the undirected edge `(a, b)`, keeping both neighbor lists
    /// sorted. Panics on self-loops, out-of-range nodes, or an edge that
    /// is already present.
    pub(crate) fn insert_edge(&mut self, a: NodeId, b: NodeId) {
        assert!(a != b, "self-loop at node {a}");
        self.half_insert(a, b as u32, "edge already present");
        self.half_insert(b, a as u32, "reverse edge already present");
        self.edge_count += 1;
        self.maybe_compact();
    }

    /// Removes the undirected edge `(a, b)`. Panics if absent.
    pub(crate) fn remove_edge(&mut self, a: NodeId, b: NodeId) {
        self.half_remove(a, b as u32, "edge present");
        self.half_remove(b, a as u32, "reverse edge present");
        self.edge_count -= 1;
    }
}

/// Semantic equality: node count, edge count and per-node neighbor
/// slices — independent of arena layout, so a slack-bearing maintained
/// topology equals a tight from-scratch rebuild of the same graph.
impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self.edge_count == other.edge_count
            && (0..self.len()).all(|i| self.neighbors(i) == other.neighbors(i))
    }
}

impl Eq for Topology {}

/// Debug output shows the logical adjacency, not the arena layout.
impl std::fmt::Debug for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let adjacency: Vec<&[u32]> = (0..self.len()).map(|i| self.neighbors(i)).collect();
        f.debug_struct("Topology")
            .field("adjacency", &adjacency)
            .field("edge_count", &self.edge_count)
            .finish()
    }
}

// The serialized shape is the historical `{ adjacency, edge_count }`
// per-node-list form, independent of the CSR internals: checkpoints and
// persisted models written before the flat-storage refactor deserialize
// unchanged, and re-serialization is byte-identical to what the old
// derived implementation produced.
#[cfg(feature = "serde")]
mod serde_impl {
    use super::{NodeId, Topology};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    #[derive(Serialize, Deserialize)]
    struct TopologyWire {
        adjacency: Vec<Vec<NodeId>>,
        edge_count: usize,
    }

    impl Serialize for Topology {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let adjacency = (0..self.len())
                .map(|i| self.neighbors(i).iter().map(|&v| v as NodeId).collect())
                .collect();
            TopologyWire { adjacency, edge_count: self.edge_count() }.serialize(serializer)
        }
    }

    impl<'de> Deserialize<'de> for Topology {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let wire = TopologyWire::deserialize(deserializer)?;
            let lists: Vec<Vec<u32>> = wire
                .adjacency
                .iter()
                .map(|list| list.iter().map(|&v| v as u32).collect())
                .collect();
            let mut topo = Topology::from_lists(&lists);
            // Preserve the persisted count bit-for-bit, as the derived
            // implementation did.
            topo.edge_count = wire.edge_count;
            Ok(topo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Topology {
        Topology::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn from_positions_unit_disk() {
        let pts = vec![
            Vec3::ZERO,
            Vec3::new(0.9, 0.0, 0.0),
            Vec3::new(1.8, 0.0, 0.0),
            Vec3::new(10.0, 0.0, 0.0),
        ];
        let t = Topology::from_positions(&pts, 1.0);
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.neighbors(3), &[] as &[u32]);
        assert_eq!(t.edge_count(), 2);
        assert_eq!(t.isolated_nodes(), vec![3]);
        assert!(!t.is_connected());
    }

    #[test]
    fn from_edges_dedup_and_symmetry() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.edge_count(), 2);
        assert!(t.are_neighbors(0, 1));
        assert!(t.are_neighbors(1, 0));
        assert!(!t.are_neighbors(0, 2));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = Topology::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = Topology::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn closed_neighborhood_sorted_with_self() {
        let t = Topology::from_edges(4, &[(2, 0), (2, 3), (2, 1)]);
        assert_eq!(t.closed_neighborhood(2), vec![0, 1, 2, 3]);
        assert_eq!(t.closed_neighborhood(0), vec![0, 2]);
        let iso = Topology::from_edges(1, &[]);
        assert_eq!(iso.closed_neighborhood(0), vec![0]);
    }

    #[test]
    fn k_hop_neighborhoods() {
        let t = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(t.closed_k_hop_neighborhood(0, 1), t.closed_neighborhood(0));
        assert_eq!(t.closed_k_hop_neighborhood(0, 2), vec![0, 1, 2]);
        assert_eq!(t.closed_k_hop_neighborhood(2, 2), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.closed_k_hop_neighborhood(0, 0), vec![0]);
    }

    #[test]
    fn degree_stats() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let s = t.degree_stats();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert!((s.mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn connectivity_and_hops() {
        let t = line3();
        assert!(t.is_connected());
        let d = t.hop_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn empty_topology() {
        let t = Topology::from_positions(&[], 1.0);
        assert!(t.is_empty());
        assert!(t.is_connected());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn static_builds_are_tight_canonical_csr() {
        let pts = vec![
            Vec3::ZERO,
            Vec3::new(0.5, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.7, 0.0),
        ];
        let t = Topology::from_positions(&pts, 0.9);
        let (offsets, arena) = t.canonical_csr();
        assert_eq!(t.arena_slots(), arena.len());
        assert_eq!(offsets.len(), t.len() + 1);
        assert_eq!(arena.len(), 2 * t.edge_count());
        for i in 0..t.len() {
            assert_eq!(
                t.neighbors(i),
                &arena[offsets[i] as usize..offsets[i + 1] as usize],
                "node {i}"
            );
        }
    }

    #[test]
    fn incremental_mutators_preserve_invariants() {
        let mut t = line3();
        let n = t.push_isolated();
        assert_eq!(n, 3);
        t.insert_edge(3, 0);
        t.insert_edge(3, 2);
        t.remove_edge(0, 1);
        assert_eq!(t, Topology::from_edges(4, &[(1, 2), (0, 3), (2, 3)]));
        assert_eq!(t.edge_count(), 3);
    }

    /// A long mutation run that forces many region relocations and at
    /// least one compaction: the maintained topology must stay equal to a
    /// tight from-scratch build, and its canonical CSR byte-identical.
    #[test]
    fn relocation_and_compaction_keep_csr_canonicalizable() {
        let n = 12;
        let mut t = Topology::from_edges(n, &[]);
        let mut present: Vec<(usize, usize)> = Vec::new();
        // Grow a dense graph (every insert into a fresh node relocates
        // its region repeatedly), then strip alternating edges, then
        // re-add them — exercising slack reuse and the tombstone path.
        for a in 0..n {
            for b in (a + 1)..n {
                if (a + b) % 3 != 0 {
                    t.insert_edge(a, b);
                    present.push((a, b));
                }
            }
        }
        let removed: Vec<(usize, usize)> =
            present.iter().copied().filter(|&(a, b)| (a * 7 + b) % 2 == 0).collect();
        for &(a, b) in &removed {
            t.remove_edge(a, b);
        }
        for &(a, b) in &removed {
            t.insert_edge(a, b);
        }
        let reference = Topology::from_edges(n, &present);
        assert_eq!(t, reference);
        assert_eq!(t.canonical_csr(), reference.canonical_csr());
        // The compaction policy bounds tombstones to half the arena.
        assert!(t.dead as usize * 2 <= t.arena.len().max(1));
    }

    #[test]
    fn equality_is_layout_independent() {
        // Build the same graph twice: tight, and with slack from churn.
        let tight = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut churned = Topology::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3), (1, 3)]);
        churned.remove_edge(0, 2);
        churned.remove_edge(1, 3);
        assert_eq!(churned, tight);
        assert_eq!(churned.canonical_csr(), tight.canonical_csr());
        assert_ne!(churned, Topology::from_edges(4, &[(0, 1), (1, 2)]));
        assert_ne!(churned, Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3)]));
    }

    #[test]
    #[should_panic(expected = "edge already present")]
    fn duplicate_insert_edge_panics() {
        let mut t = line3();
        t.insert_edge(0, 1);
    }

    #[test]
    #[should_panic(expected = "edge present")]
    fn missing_remove_edge_panics() {
        let mut t = line3();
        t.remove_edge(0, 2);
    }
}
