//! Immutable network connectivity graphs.

use ballfit_geom::grid::SpatialGrid;
use ballfit_geom::Vec3;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Index type for network nodes.
pub type NodeId = usize;

/// An immutable undirected connectivity graph over `n` nodes.
///
/// Neighbor lists are sorted, deduplicated and symmetric by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Topology {
    adjacency: Vec<Vec<NodeId>>,
    edge_count: usize,
}

/// Summary statistics over nodal degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

impl Topology {
    /// Builds a topology from node positions and a radio transmission
    /// `range` (unit-disk graph in 3D: nodes within `range` are neighbors).
    ///
    /// # Panics
    ///
    /// Panics if `range` is not strictly positive and finite.
    pub fn from_positions(positions: &[Vec3], range: f64) -> Self {
        assert!(range.is_finite() && range > 0.0, "radio range must be positive");
        if positions.is_empty() {
            return Topology { adjacency: Vec::new(), edge_count: 0 };
        }
        let grid = SpatialGrid::build(positions, range);
        let adjacency = grid.adjacency(positions, range);
        let edge_count = adjacency.iter().map(Vec::len).sum::<usize>() / 2;
        Topology { adjacency, edge_count }
    }

    /// Builds a topology from explicit undirected edges over `n` nodes.
    /// Duplicate edges and both orientations are tolerated; self-loops are
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= n` or is a self-loop.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a}, {b}) out of range for {n} nodes");
            assert!(a != b, "self-loop at node {a}");
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }
        let edge_count = adjacency.iter().map(Vec::len).sum::<usize>() / 2;
        Topology { adjacency, edge_count }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sorted neighbor list of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node]
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node].len()
    }

    /// Returns `true` if `a` and `b` are radio neighbors.
    #[inline]
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency[a].binary_search(&b).is_ok()
    }

    /// The closed neighborhood of `node`: itself plus its neighbors,
    /// sorted. This is the paper's `N(i)`.
    pub fn closed_neighborhood(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.degree(node) + 1);
        let mut inserted_self = false;
        for &nb in &self.adjacency[node] {
            if !inserted_self && nb > node {
                out.push(node);
                inserted_self = true;
            }
            out.push(nb);
        }
        if !inserted_self {
            out.push(node);
        }
        out
    }

    /// The closed `k`-hop neighborhood of `node`: all nodes within `k`
    /// hops including `node` itself, sorted. `k = 1` equals
    /// [`Topology::closed_neighborhood`].
    pub fn closed_k_hop_neighborhood(&self, node: NodeId, k: u32) -> Vec<NodeId> {
        let mut members = crate::bfs::nodes_within(self, node, k, |_| true);
        let insert_at = members.binary_search(&node).err().expect("self not in result");
        members.insert(insert_at, node);
        members
    }

    /// Degree statistics over all nodes.
    ///
    /// # Panics
    ///
    /// Panics on an empty topology.
    pub fn degree_stats(&self) -> DegreeStats {
        assert!(!self.is_empty(), "degree stats of an empty topology");
        let degrees = self.adjacency.iter().map(Vec::len);
        let min = degrees.clone().min().unwrap();
        let max = degrees.clone().max().unwrap();
        let mean = degrees.sum::<usize>() as f64 / self.len() as f64;
        DegreeStats { min, max, mean }
    }

    /// Hop distances from `source` via BFS; `None` for unreachable nodes.
    pub fn hop_distances(&self, source: NodeId) -> Vec<Option<u32>> {
        crate::bfs::hop_distances(self, source, |_| true)
    }

    /// `true` if every node is reachable from node 0 (or the graph is empty).
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.hop_distances(0).iter().all(Option::is_some)
    }

    /// Nodes with no neighbors.
    pub fn isolated_nodes(&self) -> Vec<NodeId> {
        (0..self.len()).filter(|&i| self.degree(i) == 0).collect()
    }

    // ---- incremental mutation (crate-private: only `churn` uses these) ----
    //
    // `Topology` stays immutable to the outside world; the churn layer
    // maintains one incrementally while preserving the construction
    // invariants (sorted, deduplicated, symmetric neighbor lists and an
    // exact edge count), so `PartialEq` against a from-scratch build stays
    // meaningful.

    /// Appends a node with no edges, returning its ID.
    pub(crate) fn push_isolated(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        self.adjacency.len() - 1
    }

    /// Inserts the undirected edge `(a, b)`, keeping both neighbor lists
    /// sorted. Panics on self-loops, out-of-range nodes, or an edge that
    /// is already present.
    pub(crate) fn insert_edge(&mut self, a: NodeId, b: NodeId) {
        assert!(a != b, "self-loop at node {a}");
        let ia = self.adjacency[a].binary_search(&b).err().expect("edge already present");
        self.adjacency[a].insert(ia, b);
        let ib = self.adjacency[b].binary_search(&a).err().expect("reverse edge already present");
        self.adjacency[b].insert(ib, a);
        self.edge_count += 1;
    }

    /// Removes the undirected edge `(a, b)`. Panics if absent.
    pub(crate) fn remove_edge(&mut self, a: NodeId, b: NodeId) {
        let ia = self.adjacency[a].binary_search(&b).expect("edge present");
        self.adjacency[a].remove(ia);
        let ib = self.adjacency[b].binary_search(&a).expect("reverse edge present");
        self.adjacency[b].remove(ib);
        self.edge_count -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Topology {
        Topology::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn from_positions_unit_disk() {
        let pts = vec![
            Vec3::ZERO,
            Vec3::new(0.9, 0.0, 0.0),
            Vec3::new(1.8, 0.0, 0.0),
            Vec3::new(10.0, 0.0, 0.0),
        ];
        let t = Topology::from_positions(&pts, 1.0);
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.neighbors(3), &[] as &[usize]);
        assert_eq!(t.edge_count(), 2);
        assert_eq!(t.isolated_nodes(), vec![3]);
        assert!(!t.is_connected());
    }

    #[test]
    fn from_edges_dedup_and_symmetry() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.edge_count(), 2);
        assert!(t.are_neighbors(0, 1));
        assert!(t.are_neighbors(1, 0));
        assert!(!t.are_neighbors(0, 2));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = Topology::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = Topology::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn closed_neighborhood_sorted_with_self() {
        let t = Topology::from_edges(4, &[(2, 0), (2, 3), (2, 1)]);
        assert_eq!(t.closed_neighborhood(2), vec![0, 1, 2, 3]);
        assert_eq!(t.closed_neighborhood(0), vec![0, 2]);
        let iso = Topology::from_edges(1, &[]);
        assert_eq!(iso.closed_neighborhood(0), vec![0]);
    }

    #[test]
    fn k_hop_neighborhoods() {
        let t = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(t.closed_k_hop_neighborhood(0, 1), t.closed_neighborhood(0));
        assert_eq!(t.closed_k_hop_neighborhood(0, 2), vec![0, 1, 2]);
        assert_eq!(t.closed_k_hop_neighborhood(2, 2), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.closed_k_hop_neighborhood(0, 0), vec![0]);
    }

    #[test]
    fn degree_stats() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let s = t.degree_stats();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert!((s.mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn connectivity_and_hops() {
        let t = line3();
        assert!(t.is_connected());
        let d = t.hop_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn empty_topology() {
        let t = Topology::from_positions(&[], 1.0);
        assert!(t.is_empty());
        assert!(t.is_connected());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn incremental_mutators_preserve_invariants() {
        let mut t = line3();
        let n = t.push_isolated();
        assert_eq!(n, 3);
        t.insert_edge(3, 0);
        t.insert_edge(3, 2);
        t.remove_edge(0, 1);
        assert_eq!(t, Topology::from_edges(4, &[(1, 2), (0, 3), (2, 3)]));
        assert_eq!(t.edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "edge already present")]
    fn duplicate_insert_edge_panics() {
        let mut t = line3();
        t.insert_edge(0, 1);
    }

    #[test]
    #[should_panic(expected = "edge present")]
    fn missing_remove_edge_panics() {
        let mut t = line3();
        t.remove_edge(0, 2);
    }
}
