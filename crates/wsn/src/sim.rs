//! Synchronous round-based message-passing simulator.
//!
//! The paper's algorithms are stated as localized protocols: nodes exchange
//! messages with radio neighbors and act on local state. This engine
//! executes such protocols faithfully:
//!
//! * Every node runs an instance of a [`Protocol`] (its per-node state).
//! * Time advances in synchronous rounds; a message sent in round `r` is
//!   delivered at the start of round `r + 1`.
//! * Only radio neighbors can exchange messages — sending to a non-neighbor
//!   is rejected, which *enforces* the paper's locality claim in tests.
//! * Every message is counted, so message-complexity claims (IFF's `O(1)`
//!   scoped flooding, CDM's path probes) are measurable.
//!
//! Delivery order within a round is deterministic (sorted by destination,
//! then source, then send order), so protocol runs are reproducible.
//!
//! Every run can additionally emit a deterministic structured trace
//! ([`Simulator::run_traced`] / [`Simulator::run_with_faults_traced`]):
//! a `"round"` span per executed round with per-round message/byte and
//! fault-attribution accounting, recorded in logical time only. The
//! plain entry points are the [`Trace::disabled`] special case, so the
//! traced and untraced engines are literally the same code.

pub use ballfit_obs::MsgBytes;
use ballfit_obs::{Trace, TraceEvent};

use crate::faults::{FaultCounts, FaultPlan, Xoshiro256PlusPlus};
use crate::topology::{NodeId, Topology};

/// Per-node protocol behaviour. One instance exists per node; the engine
/// invokes the callbacks with a [`Ctx`] through which messages are sent.
pub trait Protocol {
    /// Message type exchanged between neighbors. The [`MsgBytes`] bound
    /// gives every transmission a deterministic wire size, so byte
    /// overhead is accounted alongside message counts.
    type Msg: Clone + MsgBytes;

    /// Called once for every node before round 0.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called once per delivered message.
    fn on_message(&mut self, from: NodeId, msg: &Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called at the end of each round (after all deliveries), e.g. to
    /// aggregate or to trigger the next phase. Default: no-op.
    fn on_round_end(&mut self, _round: usize, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Whether this node still needs rounds to advance even with no
    /// messages in flight (phase-synchronous protocols count rounds as a
    /// clock). The engine only declares quiescence when no messages are
    /// pending *and* no node wants a tick. Default: `false`.
    fn wants_tick(&self) -> bool {
        false
    }
}

/// Send-side context handed to protocol callbacks.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    node: NodeId,
    neighbors: &'a [u32],
    outbox: &'a mut Vec<(NodeId, NodeId, M)>,
    sent: &'a mut u64,
    bytes: &'a mut u64,
}

impl<M: Clone + MsgBytes> Ctx<'_, M> {
    /// The node this context belongs to.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's radio neighbors (sorted), a contiguous slice of the
    /// topology's flat CSR arena.
    #[inline]
    pub fn neighbors(&self) -> &[u32] {
        self.neighbors
    }

    /// Sends `msg` to neighbor `to` (delivered next round).
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a radio neighbor — localized protocols must
    /// not talk past one hop.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.binary_search(&(to as u32)).is_ok(),
            "node {} attempted to send to non-neighbor {} — protocol is not localized",
            self.node,
            to
        );
        *self.sent += 1;
        *self.bytes += msg.msg_bytes();
        self.outbox.push((self.node, to, msg));
    }

    /// Broadcasts `msg` to every neighbor (counted as one message per
    /// neighbor, the radio-agnostic upper bound). The last neighbor takes
    /// `msg` by move, so a degree-d broadcast clones d−1 times.
    pub fn broadcast(&mut self, msg: M) {
        let Some((&last, rest)) = self.neighbors.split_last() else {
            return;
        };
        let size = msg.msg_bytes();
        for &to in rest {
            *self.sent += 1;
            *self.bytes += size;
            self.outbox.push((self.node, to as NodeId, msg.clone()));
        }
        *self.sent += 1;
        *self.bytes += size;
        self.outbox.push((self.node, last as NodeId, msg));
    }
}

/// Statistics from a protocol run.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunStats {
    /// Number of rounds executed (message-delivery rounds).
    pub rounds: usize,
    /// Total messages sent across all nodes and rounds.
    pub messages: u64,
    /// Total payload bytes sent ([`MsgBytes`] wire sizes).
    pub bytes: u64,
    /// `true` if the run stopped because no messages were in flight.
    pub quiescent: bool,
    /// Injected-fault counters; all zero on the perfect-delivery path.
    pub faults: FaultCounts,
    /// Messages sent per round: index 0 is the start phase (`on_start`
    /// sends), index `r ≥ 1` the sends of executed round `r`. Length is
    /// always `rounds + 1`. A node revived at round `r` contributes its
    /// late `on_start` sends to bucket `r`.
    pub per_round_messages: Vec<u64>,
    /// Payload bytes sent per round; same bucket layout as
    /// [`RunStats::per_round_messages`].
    pub per_round_bytes: Vec<u64>,
}

/// Adds `delta` to `buckets[index]`, growing the vector with zeros on
/// demand.
fn bucket_add(buckets: &mut Vec<u64>, index: usize, delta: u64) {
    if buckets.len() <= index {
        buckets.resize(index + 1, 0);
    }
    buckets[index] += delta;
}

/// Normalizes the per-round vectors to `rounds + 1` buckets, emits the
/// end-of-run [`TraceEvent::Convergence`] record and assembles the
/// stats. Shared tail of both engines.
#[allow(clippy::too_many_arguments)]
fn finish_run(
    trace: &mut Trace,
    rounds: usize,
    messages: u64,
    bytes: u64,
    quiescent: bool,
    faults: FaultCounts,
    mut per_round_messages: Vec<u64>,
    mut per_round_bytes: Vec<u64>,
) -> RunStats {
    per_round_messages.resize(rounds + 1, 0);
    per_round_bytes.resize(rounds + 1, 0);
    trace.event(TraceEvent::Convergence { rounds, messages, bytes, quiescent });
    RunStats { rounds, messages, bytes, quiescent, faults, per_round_messages, per_round_bytes }
}

/// The simulation engine: a topology plus one protocol instance per node.
#[derive(Debug)]
pub struct Simulator<'t, P: Protocol> {
    topo: &'t Topology,
    nodes: Vec<P>,
}

impl<'t, P: Protocol> Simulator<'t, P> {
    /// Creates a simulator, constructing per-node state with `init`.
    pub fn new<F: FnMut(NodeId) -> P>(topo: &'t Topology, mut init: F) -> Self {
        let nodes = (0..topo.len()).map(&mut init).collect();
        Simulator { topo, nodes }
    }

    /// Runs the protocol until quiescence or `max_rounds`, whichever comes
    /// first. Returns run statistics; inspect per-node outcomes via
    /// [`Simulator::node`] / [`Simulator::into_nodes`].
    pub fn run(&mut self, max_rounds: usize) -> RunStats {
        self.run_traced(max_rounds, &mut Trace::disabled())
    }

    /// [`Simulator::run`] with structured tracing: emits the network
    /// size, one `"round"` span per executed round (round 0 is the
    /// start phase) with message/byte/delivery accounting, and an
    /// end-of-run convergence record. With [`Trace::disabled`] this *is*
    /// `run` — the plain entry point delegates here.
    pub fn run_traced(&mut self, max_rounds: usize, trace: &mut Trace) -> RunStats {
        let mut sent: u64 = 0;
        let mut bytes: u64 = 0;
        let mut per_round_messages: Vec<u64> = Vec::new();
        let mut per_round_bytes: Vec<u64> = Vec::new();
        let mut inflight: Vec<(NodeId, NodeId, P::Msg)> = Vec::new();
        trace.event(TraceEvent::NetSize { nodes: self.nodes.len(), edges: self.topo.edge_count() });

        // Start phase ("round 0" of the accounting).
        for id in 0..self.nodes.len() {
            let mut ctx = Ctx {
                node: id,
                neighbors: self.topo.neighbors(id),
                outbox: &mut inflight,
                sent: &mut sent,
                bytes: &mut bytes,
            };
            self.nodes[id].on_start(&mut ctx);
        }
        bucket_add(&mut per_round_messages, 0, sent);
        bucket_add(&mut per_round_bytes, 0, bytes);
        trace.open("round");
        trace.event(TraceEvent::Round {
            round: 0,
            sent,
            bytes,
            delivered: 0,
            dropped: 0,
            duplicated: 0,
            delayed: 0,
            crash_lost: 0,
        });
        trace.close();
        let (mut prev_sent, mut prev_bytes) = (sent, bytes);

        let mut rounds = 0;
        while rounds < max_rounds {
            if inflight.is_empty() && !self.nodes.iter().any(Protocol::wants_tick) {
                return finish_run(
                    trace,
                    rounds,
                    sent,
                    bytes,
                    true,
                    FaultCounts::default(),
                    per_round_messages,
                    per_round_bytes,
                );
            }
            rounds += 1;
            // Deterministic delivery order.
            let mut deliveries = std::mem::take(&mut inflight);
            deliveries.sort_by_key(|&(from, to, _)| (to, from));
            let delivered = deliveries.len() as u64;
            for (from, to, msg) in &deliveries {
                let mut ctx = Ctx {
                    node: *to,
                    neighbors: self.topo.neighbors(*to),
                    outbox: &mut inflight,
                    sent: &mut sent,
                    bytes: &mut bytes,
                };
                self.nodes[*to].on_message(*from, msg, &mut ctx);
            }
            for id in 0..self.nodes.len() {
                let mut ctx = Ctx {
                    node: id,
                    neighbors: self.topo.neighbors(id),
                    outbox: &mut inflight,
                    sent: &mut sent,
                    bytes: &mut bytes,
                };
                self.nodes[id].on_round_end(rounds - 1, &mut ctx);
            }
            bucket_add(&mut per_round_messages, rounds, sent - prev_sent);
            bucket_add(&mut per_round_bytes, rounds, bytes - prev_bytes);
            trace.open("round");
            trace.event(TraceEvent::Round {
                round: rounds,
                sent: sent - prev_sent,
                bytes: bytes - prev_bytes,
                delivered,
                dropped: 0,
                duplicated: 0,
                delayed: 0,
                crash_lost: 0,
            });
            trace.close();
            prev_sent = sent;
            prev_bytes = bytes;
        }
        let quiescent = inflight.is_empty() && !self.nodes.iter().any(Protocol::wants_tick);
        finish_run(
            trace,
            rounds,
            sent,
            bytes,
            quiescent,
            FaultCounts::default(),
            per_round_messages,
            per_round_bytes,
        )
    }

    /// Runs the protocol on an unreliable radio described by `plan`: the
    /// same synchronous rounds as [`Simulator::run`], but every
    /// transmission passes through the fault layer (per-link loss,
    /// duplication, bounded extra delay) and nodes crash and recover on
    /// the plan's schedule. See [`crate::faults`] for the exact
    /// semantics.
    ///
    /// With [`FaultPlan::none`] this is byte-identical to
    /// [`Simulator::run`] (regression-tested), so the perfect radio is
    /// just the zero-fault special case.
    ///
    /// Quiescence additionally requires that no crash event is still
    /// scheduled in the future: a recovery at round `r` can revive work,
    /// so the engine keeps ticking (up to `max_rounds`) until the
    /// schedule is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `plan` carries a NaN or out-of-range probability.
    pub fn run_with_faults(&mut self, max_rounds: usize, plan: &FaultPlan) -> RunStats {
        self.run_with_faults_traced(max_rounds, plan, &mut Trace::disabled())
    }

    /// [`Simulator::run_with_faults`] with structured tracing. Round
    /// records additionally attribute the fault layer's work: drops,
    /// duplications, delays and crash-lost deliveries per round, as
    /// deltas of the run's [`FaultCounts`]. Sends from a node revived
    /// mid-run fold into the next executed round's record.
    ///
    /// # Panics
    ///
    /// Panics if `plan` carries a NaN or out-of-range probability.
    pub fn run_with_faults_traced(
        &mut self,
        max_rounds: usize,
        plan: &FaultPlan,
        trace: &mut Trace,
    ) -> RunStats {
        plan.validate();
        let n = self.nodes.len();
        let mut sent: u64 = 0;
        let mut bytes: u64 = 0;
        let mut per_round_messages: Vec<u64> = Vec::new();
        let mut per_round_bytes: Vec<u64> = Vec::new();
        let mut counts = FaultCounts::default();
        trace.event(TraceEvent::NetSize { nodes: n, edges: self.topo.edge_count() });
        let mut rng = plan.stream();
        let events = plan.schedule();
        let mut next_event = 0usize;
        let mut alive = vec![true; n];
        let mut started = vec![false; n];
        // Pending deliveries: (due_round, sequence, from, to, msg). The
        // sequence number preserves send order among equal (to, from)
        // keys, matching the stable sort of the perfect-delivery engine.
        let mut queue: Vec<(usize, u64, NodeId, NodeId, P::Msg)> = Vec::new();
        let mut seq: u64 = 0;
        let mut outbox: Vec<(NodeId, NodeId, P::Msg)> = Vec::new();

        // Crash events scheduled for round 0 precede `on_start`: a node
        // down from round 0 never starts (until it recovers).
        while next_event < events.len() && events[next_event].0 == 0 {
            let (_, node, up) = events[next_event];
            next_event += 1;
            if node < n {
                alive[node] = up;
            }
        }
        for id in 0..n {
            if !alive[id] {
                continue;
            }
            started[id] = true;
            let mut ctx = Ctx {
                node: id,
                neighbors: self.topo.neighbors(id),
                outbox: &mut outbox,
                sent: &mut sent,
                bytes: &mut bytes,
            };
            self.nodes[id].on_start(&mut ctx);
        }
        flush_outbox(&mut outbox, 0, plan, &mut rng, &mut queue, &mut seq, &mut counts);
        bucket_add(&mut per_round_messages, 0, sent);
        bucket_add(&mut per_round_bytes, 0, bytes);
        trace.open("round");
        trace.event(TraceEvent::Round {
            round: 0,
            sent,
            bytes,
            delivered: 0,
            dropped: counts.dropped,
            duplicated: counts.duplicated,
            delayed: counts.delayed,
            crash_lost: counts.crash_lost,
        });
        trace.close();
        // Bucket cursors (per-round vectors) and trace cursors (Round
        // records) advance independently: revive-time sends land in the
        // bucket of the round *before* the one whose record reports
        // them, so both views stay exact sums of the run totals.
        let (mut prev_sent, mut prev_bytes) = (sent, bytes);
        let (mut ev_sent, mut ev_bytes, mut ev_counts) = (sent, bytes, counts);

        let mut rounds = 0;
        let mut due: Vec<(usize, u64, NodeId, NodeId, P::Msg)> = Vec::new();
        loop {
            // Crash transitions at the start of the round about to run.
            // A node revived before it ever ran starts now; its sends are
            // delivered with this round's deliveries, mirroring how
            // `on_start` sends are delivered in round 0.
            while next_event < events.len() && events[next_event].0 == rounds {
                let (_, node, up) = events[next_event];
                next_event += 1;
                if node >= n {
                    continue;
                }
                alive[node] = up;
                if up && !started[node] {
                    started[node] = true;
                    let mut ctx = Ctx {
                        node,
                        neighbors: self.topo.neighbors(node),
                        outbox: &mut outbox,
                        sent: &mut sent,
                        bytes: &mut bytes,
                    };
                    self.nodes[node].on_start(&mut ctx);
                    flush_outbox(
                        &mut outbox,
                        rounds,
                        plan,
                        &mut rng,
                        &mut queue,
                        &mut seq,
                        &mut counts,
                    );
                }
            }
            // Late `on_start` sends belong to the round that just
            // completed (they are due with the upcoming deliveries,
            // exactly like round-0 start sends).
            bucket_add(&mut per_round_messages, rounds, sent - prev_sent);
            bucket_add(&mut per_round_bytes, rounds, bytes - prev_bytes);
            (prev_sent, prev_bytes) = (sent, bytes);
            let wants_tick =
                self.nodes.iter().enumerate().any(|(id, node)| alive[id] && node.wants_tick());
            if queue.is_empty() && next_event >= events.len() && !wants_tick {
                return finish_run(
                    trace,
                    rounds,
                    sent,
                    bytes,
                    true,
                    counts,
                    per_round_messages,
                    per_round_bytes,
                );
            }
            if rounds >= max_rounds {
                return finish_run(
                    trace,
                    rounds,
                    sent,
                    bytes,
                    false,
                    counts,
                    per_round_messages,
                    per_round_bytes,
                );
            }
            rounds += 1;

            // Deliveries due this round, in the engine's deterministic
            // order (destination, source, send sequence).
            due.clear();
            let mut i = 0;
            while i < queue.len() {
                if queue[i].0 < rounds {
                    due.push(queue.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            due.sort_by_key(|&(_, s, from, to, _)| (to, from, s));
            let mut delivered: u64 = 0;
            for (_, _, from, to, msg) in &due {
                if !alive[*to] {
                    counts.crash_lost += 1;
                    continue;
                }
                delivered += 1;
                let mut ctx = Ctx {
                    node: *to,
                    neighbors: self.topo.neighbors(*to),
                    outbox: &mut outbox,
                    sent: &mut sent,
                    bytes: &mut bytes,
                };
                self.nodes[*to].on_message(*from, msg, &mut ctx);
            }
            flush_outbox(&mut outbox, rounds, plan, &mut rng, &mut queue, &mut seq, &mut counts);
            for id in 0..n {
                if !alive[id] {
                    continue;
                }
                let mut ctx = Ctx {
                    node: id,
                    neighbors: self.topo.neighbors(id),
                    outbox: &mut outbox,
                    sent: &mut sent,
                    bytes: &mut bytes,
                };
                self.nodes[id].on_round_end(rounds - 1, &mut ctx);
            }
            flush_outbox(&mut outbox, rounds, plan, &mut rng, &mut queue, &mut seq, &mut counts);
            bucket_add(&mut per_round_messages, rounds, sent - prev_sent);
            bucket_add(&mut per_round_bytes, rounds, bytes - prev_bytes);
            (prev_sent, prev_bytes) = (sent, bytes);
            trace.open("round");
            trace.event(TraceEvent::Round {
                round: rounds,
                sent: sent - ev_sent,
                bytes: bytes - ev_bytes,
                delivered,
                dropped: counts.dropped - ev_counts.dropped,
                duplicated: counts.duplicated - ev_counts.duplicated,
                delayed: counts.delayed - ev_counts.delayed,
                crash_lost: counts.crash_lost - ev_counts.crash_lost,
            });
            trace.close();
            (ev_sent, ev_bytes, ev_counts) = (sent, bytes, counts);
        }
    }

    /// Read access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id]
    }

    /// Consumes the simulator, yielding all per-node states.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

/// Moves this round's sends through the fault layer, in send order (the
/// PRNG is consumed in a fixed order, so runs are reproducible): each
/// transmission is dropped with its link's loss probability, otherwise
/// scheduled at `due_base` plus a uniform `0..=max_delay` extra rounds,
/// and duplicated (with an independently drawn delay) with the plan's
/// duplication probability.
fn flush_outbox<M: Clone>(
    outbox: &mut Vec<(NodeId, NodeId, M)>,
    due_base: usize,
    plan: &FaultPlan,
    rng: &mut Xoshiro256PlusPlus,
    queue: &mut Vec<(usize, u64, NodeId, NodeId, M)>,
    seq: &mut u64,
    counts: &mut FaultCounts,
) {
    for (from, to, msg) in outbox.drain(..) {
        let loss = plan.link_loss(from, to);
        if loss > 0.0 && rng.gen_bool(loss) {
            counts.dropped += 1;
            continue;
        }
        let delay =
            if plan.max_delay > 0 { rng.gen_inclusive(plan.max_delay as u64) as usize } else { 0 };
        if delay > 0 {
            counts.delayed += 1;
        }
        let duplicate = plan.duplication > 0.0 && rng.gen_bool(plan.duplication);
        if duplicate {
            counts.duplicated += 1;
            let extra = if plan.max_delay > 0 {
                rng.gen_inclusive(plan.max_delay as u64) as usize
            } else {
                0
            };
            queue.push((due_base + extra, *seq, from, to, msg.clone()));
            *seq += 1;
        }
        queue.push((due_base + delay, *seq, from, to, msg));
        *seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each node learns the set of its 2-hop neighbors by re-broadcasting
    /// its own neighbor list once — a miniature localized protocol.
    #[derive(Debug, Default)]
    struct TwoHop {
        known: Vec<NodeId>,
    }

    impl Protocol for TwoHop {
        type Msg = Vec<NodeId>;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            // Widen back to NodeId so the message wire size (8 bytes per
            // entry) is unchanged by the u32 CSR storage.
            ctx.broadcast(ctx.neighbors().iter().map(|&v| v as NodeId).collect());
        }

        fn on_message(&mut self, _from: NodeId, msg: &Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
            let me = ctx.node();
            for &n in msg {
                if n != me && !self.known.contains(&n) {
                    self.known.push(n);
                }
            }
        }
    }

    #[test]
    fn two_hop_discovery_on_a_path() {
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut sim = Simulator::new(&topo, |_| TwoHop::default());
        let stats = sim.run(10);
        assert!(stats.quiescent);
        assert_eq!(stats.rounds, 1);
        // 2·|E| messages: each node broadcasts its neighbor list once.
        assert_eq!(stats.messages, 6);
        // Node 0 receives node 1's neighbor list {0, 2} and filters itself.
        let mut known0 = sim.node(0).known.clone();
        known0.sort_unstable();
        assert_eq!(known0, vec![2]);
        // Node 1 receives {1} from node 0 (filtered) and {1, 3} from node 2.
        let mut known1 = sim.node(1).known.clone();
        known1.sort_unstable();
        assert_eq!(known1, vec![3]);
    }

    /// A protocol that relays a token down a chain, one hop per round.
    #[derive(Debug)]
    struct Relay {
        seen: bool,
    }

    impl Protocol for Relay {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.node() == 0 {
                self.seen = true;
                ctx.broadcast(());
            }
        }

        fn on_message(&mut self, _from: NodeId, _msg: &(), ctx: &mut Ctx<'_, Self::Msg>) {
            if !self.seen {
                self.seen = true;
                ctx.broadcast(());
            }
        }
    }

    #[test]
    fn relay_takes_one_round_per_hop() {
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut sim = Simulator::new(&topo, |_| Relay { seen: false });
        let stats = sim.run(100);
        assert!(stats.quiescent);
        // 4 hops then one round where node 4's broadcast dies out: ≥ 5 rounds.
        assert!(stats.rounds >= 4, "rounds = {}", stats.rounds);
        for id in 0..5 {
            assert!(sim.node(id).seen, "node {id} never saw the token");
        }
    }

    #[test]
    fn max_rounds_truncates() {
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut sim = Simulator::new(&topo, |_| Relay { seen: false });
        let stats = sim.run(2);
        assert!(!stats.quiescent);
        assert_eq!(stats.rounds, 2);
        assert!(!sim.node(4).seen);
    }

    /// Sending to a non-neighbor must panic — locality enforcement.
    #[derive(Debug)]
    struct Cheater;

    impl Protocol for Cheater {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.node() == 0 {
                ctx.send(2, ()); // 2 is two hops away
            }
        }
        fn on_message(&mut self, _: NodeId, _: &(), _: &mut Ctx<'_, Self::Msg>) {}
    }

    #[test]
    #[should_panic(expected = "not localized")]
    fn non_neighbor_send_panics() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let mut sim = Simulator::new(&topo, |_| Cheater);
        sim.run(1);
    }

    #[test]
    fn empty_network_is_quiescent() {
        let topo = Topology::from_edges(0, &[]);
        let mut sim = Simulator::new(&topo, |_| Cheater);
        let stats = sim.run(5);
        assert!(stats.quiescent);
        assert_eq!(stats.messages, 0);
    }

    /// A silent protocol that drives the round clock for a fixed number
    /// of rounds via `wants_tick` — the phase-synchronous pattern.
    #[derive(Debug)]
    struct Ticker {
        remaining: usize,
    }

    impl Protocol for Ticker {
        type Msg = ();
        fn on_start(&mut self, _ctx: &mut Ctx<'_, ()>) {}
        fn on_message(&mut self, _: NodeId, _: &(), _: &mut Ctx<'_, ()>) {}
        fn on_round_end(&mut self, _round: usize, _ctx: &mut Ctx<'_, ()>) {
            self.remaining = self.remaining.saturating_sub(1);
        }
        fn wants_tick(&self) -> bool {
            self.remaining > 0
        }
    }

    #[test]
    fn wants_tick_drives_rounds_until_satisfied() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let mut sim = Simulator::new(&topo, |id| Ticker { remaining: if id == 1 { 5 } else { 0 } });
        let stats = sim.run(100);
        // One node wants 5 silent rounds; the engine grants exactly 5.
        assert!(stats.quiescent);
        assert_eq!(stats.rounds, 5);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn wants_tick_truncated_by_max_rounds_is_not_quiescent() {
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let mut sim = Simulator::new(&topo, |_| Ticker { remaining: 10 });
        let stats = sim.run(4);
        assert!(!stats.quiescent, "truncation must not report quiescence");
        assert_eq!(stats.rounds, 4);
        // The faulty engine agrees on the truncation semantics.
        let mut sim = Simulator::new(&topo, |_| Ticker { remaining: 10 });
        let faulty = sim.run_with_faults(4, &FaultPlan::none());
        assert!(!faulty.quiescent);
        assert_eq!(faulty.rounds, 4);
    }

    #[test]
    fn zero_fault_plan_is_byte_identical_to_perfect_engine() {
        let topo = Topology::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        // TwoHop exercises broadcasts + multi-round deliveries; Relay
        // exercises cascading forwards.
        let mut perfect = Simulator::new(&topo, |_| TwoHop::default());
        let mut faulty = Simulator::new(&topo, |_| TwoHop::default());
        let ps = perfect.run(10);
        let fs = faulty.run_with_faults(10, &FaultPlan::none());
        assert_eq!(ps, fs, "zero-fault RunStats must be byte-identical");
        for id in 0..topo.len() {
            assert_eq!(perfect.node(id).known, faulty.node(id).known, "node {id} state diverged");
        }

        let mut perfect = Simulator::new(&topo, |_| Relay { seen: false });
        let mut faulty = Simulator::new(&topo, |_| Relay { seen: false });
        let ps = perfect.run(100);
        let fs = faulty.run_with_faults(100, &FaultPlan::none());
        assert_eq!(ps, fs);
        assert_eq!(fs.faults, crate::faults::FaultCounts::default());
    }

    #[test]
    fn total_loss_stops_the_relay_at_the_source() {
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut sim = Simulator::new(&topo, |_| Relay { seen: false });
        let stats = sim.run_with_faults(50, &FaultPlan::lossy(3, 1.0));
        assert!(stats.quiescent);
        assert!(sim.node(0).seen);
        for id in 1..4 {
            assert!(!sim.node(id).seen, "node {id} saw the token through a fully lossy radio");
        }
        // Every transmission was counted as sent, then dropped.
        assert_eq!(stats.faults.dropped, stats.messages);
    }

    #[test]
    fn duplication_is_idempotent_for_the_relay() {
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut sim = Simulator::new(&topo, |_| Relay { seen: false });
        let plan = FaultPlan::none().with_seed(7).with_duplication(1.0);
        let stats = sim.run_with_faults(50, &plan);
        assert!(stats.quiescent);
        assert!(stats.faults.duplicated > 0);
        for id in 0..5 {
            assert!(sim.node(id).seen, "node {id} missed the token");
        }
    }

    #[test]
    fn bounded_delay_slows_but_does_not_lose_the_relay() {
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut reference = Simulator::new(&topo, |_| Relay { seen: false });
        let base = reference.run(100).rounds;
        let mut sim = Simulator::new(&topo, |_| Relay { seen: false });
        let plan = FaultPlan::none().with_seed(11).with_max_delay(3);
        let stats = sim.run_with_faults(100, &plan);
        assert!(stats.quiescent);
        for id in 0..5 {
            assert!(sim.node(id).seen, "node {id} missed the token");
        }
        // Per-hop extra delay is bounded by max_delay.
        assert!(stats.rounds >= base);
        assert!(stats.rounds <= base + 4 * (base + 1), "delay bound exceeded: {}", stats.rounds);
    }

    #[test]
    fn crashed_node_blocks_the_chain_and_recovery_unblocks_it() {
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        // Node 1 down for the whole run: the token dies at it.
        let dead = FaultPlan::none().with_crashes([Crash { node: 1, down_at: 0, up_at: None }]);
        let mut sim = Simulator::new(&topo, |_| Relay { seen: false });
        let stats = sim.run_with_faults(50, &dead);
        assert!(stats.quiescent);
        assert!(sim.node(0).seen);
        assert!(!sim.node(1).seen && !sim.node(2).seen && !sim.node(3).seen);
        assert!(stats.faults.crash_lost > 0, "the delivery to the dead node must be counted");

        // Node 1 down only before round 2: it never saw round-0
        // deliveries, but once it recovers it runs `on_start` (it never
        // started) — as the relay source it has nothing to send, so the
        // chain stays dark; a *re-transmitting* upstream would heal it.
        // Use node 0 crashing instead: down at 0, up at 3, so it starts
        // late and the token still floods the chain.
        let late = FaultPlan::none().with_crashes([Crash { node: 0, down_at: 0, up_at: Some(3) }]);
        let mut sim = Simulator::new(&topo, |_| Relay { seen: false });
        let stats = sim.run_with_faults(50, &late);
        assert!(stats.quiescent);
        for id in 0..4 {
            assert!(sim.node(id).seen, "node {id} missed the token after recovery");
        }
    }

    #[test]
    fn faulty_runs_are_reproducible_and_seed_sensitive() {
        let n = 12;
        let edges: Vec<(NodeId, NodeId)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let topo = Topology::from_edges(n, &edges);
        let run = |seed: u64| {
            let mut sim = Simulator::new(&topo, |_| TwoHop::default());
            let plan = FaultPlan::lossy(seed, 0.4).with_duplication(0.2).with_max_delay(2);
            let stats = sim.run_with_faults(60, &plan);
            let known: Vec<Vec<NodeId>> = (0..n).map(|i| sim.node(i).known.clone()).collect();
            (stats, known)
        };
        let (s1, k1) = run(5);
        let (s2, k2) = run(5);
        assert_eq!(s1, s2, "same plan must reproduce identical stats");
        assert_eq!(k1, k2, "same plan must reproduce identical node states");
        let (s3, k3) = run(6);
        assert!(s3 != s1 || k3 != k1, "different fault seeds should differ somewhere");
    }

    #[test]
    fn out_of_range_crash_node_is_ignored() {
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let plan = FaultPlan::none().with_crashes([Crash { node: 99, down_at: 1, up_at: None }]);
        let mut sim = Simulator::new(&topo, |_| Relay { seen: false });
        let stats = sim.run_with_faults(10, &plan);
        assert!(stats.quiescent);
        assert!(sim.node(1).seen);
    }

    #[test]
    #[should_panic(expected = "loss must be in [0, 1]")]
    fn invalid_plan_is_rejected_at_engine_entry() {
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let mut sim = Simulator::new(&topo, |_| Relay { seen: false });
        sim.run_with_faults(10, &FaultPlan::lossy(0, -0.5));
    }

    #[test]
    fn per_round_accounting_sums_to_totals() {
        let topo = Topology::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let mut sim = Simulator::new(&topo, |_| TwoHop::default());
        let stats = sim.run(10);
        // Every node broadcasts its 2-entry neighbor list once, in the
        // start phase: bucket 0 carries all 12 messages, round 1 only
        // delivers them.
        assert_eq!(stats.per_round_messages, vec![12, 0]);
        assert_eq!(stats.per_round_messages.len(), stats.rounds + 1);
        // Vec<NodeId> wire size: 8-byte length prefix + 2 × 8 bytes.
        assert_eq!(stats.bytes, 12 * 24);
        assert_eq!(stats.per_round_bytes, vec![288, 0]);
        assert_eq!(stats.per_round_messages.iter().sum::<u64>(), stats.messages);
        assert_eq!(stats.per_round_bytes.iter().sum::<u64>(), stats.bytes);
    }

    #[test]
    fn traced_run_is_inert_and_round_records_sum_to_totals() {
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut plain = Simulator::new(&topo, |_| Relay { seen: false });
        let plain_stats = plain.run(100);

        let mut trace = Trace::enabled();
        let mut traced = Simulator::new(&topo, |_| Relay { seen: false });
        let traced_stats = traced.run_traced(100, &mut trace);
        assert_eq!(plain_stats, traced_stats, "tracing must not perturb the run");

        let mut round_sent = 0;
        let mut round_bytes = 0;
        let mut rounds_seen = 0;
        let mut convergence = None;
        for rec in trace.records() {
            match rec.event {
                TraceEvent::Round { sent, bytes, .. } => {
                    rounds_seen += 1;
                    round_sent += sent;
                    round_bytes += bytes;
                }
                TraceEvent::Convergence { rounds, messages, bytes, quiescent } => {
                    convergence = Some((rounds, messages, bytes, quiescent));
                }
                _ => {}
            }
        }
        // One record per executed round plus the start phase.
        assert_eq!(rounds_seen, traced_stats.rounds + 1);
        assert_eq!(round_sent, traced_stats.messages);
        assert_eq!(round_bytes, traced_stats.bytes);
        assert_eq!(
            convergence,
            Some((traced_stats.rounds, traced_stats.messages, traced_stats.bytes, true))
        );

        // The zero-fault engine produces the byte-identical trace.
        let mut fault_trace = Trace::enabled();
        let mut faulty = Simulator::new(&topo, |_| Relay { seen: false });
        let faulty_stats = faulty.run_with_faults_traced(100, &FaultPlan::none(), &mut fault_trace);
        assert_eq!(traced_stats, faulty_stats);
        assert_eq!(trace.records(), fault_trace.records());
        assert_eq!(trace.to_jsonl(), fault_trace.to_jsonl());
    }

    #[test]
    fn faulty_round_records_attribute_drops_per_round() {
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut trace = Trace::enabled();
        let mut sim = Simulator::new(&topo, |_| Relay { seen: false });
        let stats = sim.run_with_faults_traced(50, &FaultPlan::lossy(3, 1.0), &mut trace);
        let dropped: u64 = trace
            .records()
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::Round { dropped, .. } => Some(dropped),
                _ => None,
            })
            .sum();
        assert_eq!(dropped, stats.faults.dropped);
        assert_eq!(dropped, stats.messages, "fully lossy radio drops every send");
    }

    use crate::faults::{Crash, FaultPlan};
    use ballfit_obs::{Trace, TraceEvent};
}
