//! Synchronous round-based message-passing simulator.
//!
//! The paper's algorithms are stated as localized protocols: nodes exchange
//! messages with radio neighbors and act on local state. This engine
//! executes such protocols faithfully:
//!
//! * Every node runs an instance of a [`Protocol`] (its per-node state).
//! * Time advances in synchronous rounds; a message sent in round `r` is
//!   delivered at the start of round `r + 1`.
//! * Only radio neighbors can exchange messages — sending to a non-neighbor
//!   is rejected, which *enforces* the paper's locality claim in tests.
//! * Every message is counted, so message-complexity claims (IFF's `O(1)`
//!   scoped flooding, CDM's path probes) are measurable.
//!
//! Delivery order within a round is deterministic (sorted by destination,
//! then source, then send order), so protocol runs are reproducible.

use crate::topology::{NodeId, Topology};

/// Per-node protocol behaviour. One instance exists per node; the engine
/// invokes the callbacks with a [`Ctx`] through which messages are sent.
pub trait Protocol {
    /// Message type exchanged between neighbors.
    type Msg: Clone;

    /// Called once for every node before round 0.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called once per delivered message.
    fn on_message(&mut self, from: NodeId, msg: &Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called at the end of each round (after all deliveries), e.g. to
    /// aggregate or to trigger the next phase. Default: no-op.
    fn on_round_end(&mut self, _round: usize, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Whether this node still needs rounds to advance even with no
    /// messages in flight (phase-synchronous protocols count rounds as a
    /// clock). The engine only declares quiescence when no messages are
    /// pending *and* no node wants a tick. Default: `false`.
    fn wants_tick(&self) -> bool {
        false
    }
}

/// Send-side context handed to protocol callbacks.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    node: NodeId,
    neighbors: &'a [NodeId],
    outbox: &'a mut Vec<(NodeId, NodeId, M)>,
    sent: &'a mut u64,
}

impl<M: Clone> Ctx<'_, M> {
    /// The node this context belongs to.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's radio neighbors (sorted).
    #[inline]
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Sends `msg` to neighbor `to` (delivered next round).
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a radio neighbor — localized protocols must
    /// not talk past one hop.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "node {} attempted to send to non-neighbor {} — protocol is not localized",
            self.node,
            to
        );
        *self.sent += 1;
        self.outbox.push((self.node, to, msg));
    }

    /// Broadcasts `msg` to every neighbor (counted as one message per
    /// neighbor, the radio-agnostic upper bound).
    pub fn broadcast(&mut self, msg: M) {
        for i in 0..self.neighbors.len() {
            let to = self.neighbors[i];
            *self.sent += 1;
            self.outbox.push((self.node, to, msg.clone()));
        }
    }
}

/// Statistics from a protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of rounds executed (message-delivery rounds).
    pub rounds: usize,
    /// Total messages sent across all nodes and rounds.
    pub messages: u64,
    /// `true` if the run stopped because no messages were in flight.
    pub quiescent: bool,
}

/// The simulation engine: a topology plus one protocol instance per node.
#[derive(Debug)]
pub struct Simulator<'t, P: Protocol> {
    topo: &'t Topology,
    nodes: Vec<P>,
}

impl<'t, P: Protocol> Simulator<'t, P> {
    /// Creates a simulator, constructing per-node state with `init`.
    pub fn new<F: FnMut(NodeId) -> P>(topo: &'t Topology, mut init: F) -> Self {
        let nodes = (0..topo.len()).map(&mut init).collect();
        Simulator { topo, nodes }
    }

    /// Runs the protocol until quiescence or `max_rounds`, whichever comes
    /// first. Returns run statistics; inspect per-node outcomes via
    /// [`Simulator::node`] / [`Simulator::into_nodes`].
    pub fn run(&mut self, max_rounds: usize) -> RunStats {
        let mut sent: u64 = 0;
        let mut inflight: Vec<(NodeId, NodeId, P::Msg)> = Vec::new();

        // Start phase.
        for id in 0..self.nodes.len() {
            let mut ctx = Ctx {
                node: id,
                neighbors: self.topo.neighbors(id),
                outbox: &mut inflight,
                sent: &mut sent,
            };
            self.nodes[id].on_start(&mut ctx);
        }

        let mut rounds = 0;
        while rounds < max_rounds {
            if inflight.is_empty() && !self.nodes.iter().any(Protocol::wants_tick) {
                return RunStats { rounds, messages: sent, quiescent: true };
            }
            rounds += 1;
            // Deterministic delivery order.
            let mut deliveries = std::mem::take(&mut inflight);
            deliveries.sort_by_key(|&(from, to, _)| (to, from));
            for (from, to, msg) in &deliveries {
                let mut ctx = Ctx {
                    node: *to,
                    neighbors: self.topo.neighbors(*to),
                    outbox: &mut inflight,
                    sent: &mut sent,
                };
                self.nodes[*to].on_message(*from, msg, &mut ctx);
            }
            for id in 0..self.nodes.len() {
                let mut ctx = Ctx {
                    node: id,
                    neighbors: self.topo.neighbors(id),
                    outbox: &mut inflight,
                    sent: &mut sent,
                };
                self.nodes[id].on_round_end(rounds - 1, &mut ctx);
            }
        }
        let quiescent = inflight.is_empty() && !self.nodes.iter().any(Protocol::wants_tick);
        RunStats { rounds, messages: sent, quiescent }
    }

    /// Read access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id]
    }

    /// Consumes the simulator, yielding all per-node states.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each node learns the set of its 2-hop neighbors by re-broadcasting
    /// its own neighbor list once — a miniature localized protocol.
    #[derive(Debug, Default)]
    struct TwoHop {
        known: Vec<NodeId>,
    }

    impl Protocol for TwoHop {
        type Msg = Vec<NodeId>;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            ctx.broadcast(ctx.neighbors().to_vec());
        }

        fn on_message(&mut self, _from: NodeId, msg: &Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
            let me = ctx.node();
            for &n in msg {
                if n != me && !self.known.contains(&n) {
                    self.known.push(n);
                }
            }
        }
    }

    #[test]
    fn two_hop_discovery_on_a_path() {
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut sim = Simulator::new(&topo, |_| TwoHop::default());
        let stats = sim.run(10);
        assert!(stats.quiescent);
        assert_eq!(stats.rounds, 1);
        // 2·|E| messages: each node broadcasts its neighbor list once.
        assert_eq!(stats.messages, 6);
        // Node 0 receives node 1's neighbor list {0, 2} and filters itself.
        let mut known0 = sim.node(0).known.clone();
        known0.sort_unstable();
        assert_eq!(known0, vec![2]);
        // Node 1 receives {1} from node 0 (filtered) and {1, 3} from node 2.
        let mut known1 = sim.node(1).known.clone();
        known1.sort_unstable();
        assert_eq!(known1, vec![3]);
    }

    /// A protocol that relays a token down a chain, one hop per round.
    #[derive(Debug)]
    struct Relay {
        seen: bool,
    }

    impl Protocol for Relay {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.node() == 0 {
                self.seen = true;
                ctx.broadcast(());
            }
        }

        fn on_message(&mut self, _from: NodeId, _msg: &(), ctx: &mut Ctx<'_, Self::Msg>) {
            if !self.seen {
                self.seen = true;
                ctx.broadcast(());
            }
        }
    }

    #[test]
    fn relay_takes_one_round_per_hop() {
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut sim = Simulator::new(&topo, |_| Relay { seen: false });
        let stats = sim.run(100);
        assert!(stats.quiescent);
        // 4 hops then one round where node 4's broadcast dies out: ≥ 5 rounds.
        assert!(stats.rounds >= 4, "rounds = {}", stats.rounds);
        for id in 0..5 {
            assert!(sim.node(id).seen, "node {id} never saw the token");
        }
    }

    #[test]
    fn max_rounds_truncates() {
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut sim = Simulator::new(&topo, |_| Relay { seen: false });
        let stats = sim.run(2);
        assert!(!stats.quiescent);
        assert_eq!(stats.rounds, 2);
        assert!(!sim.node(4).seen);
    }

    /// Sending to a non-neighbor must panic — locality enforcement.
    #[derive(Debug)]
    struct Cheater;

    impl Protocol for Cheater {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.node() == 0 {
                ctx.send(2, ()); // 2 is two hops away
            }
        }
        fn on_message(&mut self, _: NodeId, _: &(), _: &mut Ctx<'_, Self::Msg>) {}
    }

    #[test]
    #[should_panic(expected = "not localized")]
    fn non_neighbor_send_panics() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let mut sim = Simulator::new(&topo, |_| Cheater);
        sim.run(1);
    }

    #[test]
    fn empty_network_is_quiescent() {
        let topo = Topology::from_edges(0, &[]);
        let mut sim = Simulator::new(&topo, |_| Cheater);
        let stats = sim.run(5);
        assert!(stats.quiescent);
        assert_eq!(stats.messages, 0);
    }
}
