//! The workspace is lint-clean, and stays that way: this test runs the
//! analyzer over the real algorithm crates and pins zero findings, then
//! demonstrates on the *actual* `protocols.rs` source that the regressions
//! the ISSUE cares about — a `HashMap` iteration or a global-state
//! accessor call creeping into the protocol layer — would fail this test.

use ballfit_lint::{analyze_source, analyze_workspace, default_workspace_root, LintConfig, Pass};

#[test]
fn workspace_is_invariant_clean() {
    let root = default_workspace_root();
    let diags =
        analyze_workspace(&root, &LintConfig::default()).expect("workspace sources are readable");
    assert!(
        diags.is_empty(),
        "invariant violations in the workspace:\n{}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

/// Reads the real protocol layer source so the regression fixtures below
/// exercise the exact code the invariants protect.
fn protocols_source() -> String {
    let path = default_workspace_root().join("crates/core/src/protocols.rs");
    std::fs::read_to_string(path).expect("protocols.rs exists")
}

#[test]
fn hashmap_iteration_in_protocols_would_fail() {
    let mut poisoned = protocols_source();
    poisoned.push_str(
        r#"
pub fn regression_tally(received: &std::collections::HashMap<NodeId, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in received {
        total += v;
    }
    total
}
"#,
    );
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::Determinism),
        "HashMap iteration in protocols.rs must be caught: {diags:?}"
    );
}

#[test]
fn global_state_accessor_in_handler_would_fail() {
    // Splice a global-state read into an existing `Protocol` handler body:
    // `on_message` of `GroupingProtocol` suddenly consults the whole model.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned =
        src.replace(needle, &format!("{needle}\n        let _cheat = self.model.positions();"));
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::Locality),
        "global accessor inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn unwrap_in_handler_would_fail() {
    let needle =
        "fn on_message(&mut self, from: NodeId, msg: &Self::Msg, _ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "UbfProtocol::on_message signature changed; update fixture");
    let poisoned = src.replace(
        needle,
        &format!("{needle}\n        let _first = self.received.iter().next().unwrap();"),
    );
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::PanicSafety),
        "unwrap inside a Protocol handler must be caught: {diags:?}"
    );
}

#[test]
fn fault_plan_inside_a_handler_would_fail() {
    // A protocol that consults the fault model from inside its handler
    // breaks the radio abstraction: hardening must work through `Ctx`
    // (acks, retransmission), never by peeking at the injected faults.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned = src.replace(
        needle,
        &format!("{needle}\n        let _cheat = FaultPlan::none().link_loss(0, 1);"),
    );
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::FaultScope),
        "FaultPlan inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn fault_plan_outside_the_harness_would_fail() {
    // The same construction is fine in the runner module but banned in,
    // say, the detector: fault injection is harness-only API.
    let src = "pub fn detect_with_faults(plan: &FaultPlan) { let _ = plan; }";
    assert!(analyze_source("crates/core/src/protocols.rs", src, &LintConfig::default()).is_empty());
    let diags = analyze_source("crates/core/src/detector.rs", src, &LintConfig::default());
    assert!(diags.iter().any(|d| d.pass == Pass::FaultScope), "{diags:?}");
}

#[test]
fn churn_event_inside_a_handler_would_fail() {
    // A protocol that reacts to raw topology-change events breaks the
    // locality story: a node only ever observes its *current* neighbor
    // set through `Ctx`, never the event stream that produced it.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned = src.replace(
        needle,
        &format!("{needle}\n        let _cheat: Option<TopologyEvent> = self.pending_event;"),
    );
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::ChurnScope),
        "TopologyEvent inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn churn_machinery_outside_the_churn_layer_would_fail() {
    // Fine in the incremental detector, banned in the static detector:
    // the static pipeline must stay oblivious to dynamics.
    let src = "pub fn track(dynamic: &DynamicTopology) { let _ = dynamic; }";
    assert!(
        analyze_source("crates/core/src/incremental.rs", src, &LintConfig::default()).is_empty()
    );
    let diags = analyze_source("crates/core/src/detector.rs", src, &LintConfig::default());
    assert!(diags.iter().any(|d| d.pass == Pass::ChurnScope), "{diags:?}");
}

#[test]
fn thread_spawn_inside_a_handler_would_fail() {
    // A handler spawning a real thread breaks the single-threaded-node
    // model outright; parallelism is an orchestration concern that lives
    // above the simulator, never inside it.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned =
        src.replace(needle, &format!("{needle}\n        let _h = std::thread::spawn(move || ());"));
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::ParScope),
        "thread::spawn inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn pool_api_inside_a_handler_would_fail() {
    // Even the deterministic pool is off-limits to handlers.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned =
        src.replace(needle, &format!("{needle}\n        let _par = Parallelism::sequential();"));
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::ParScope),
        "Parallelism inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn raw_threading_outside_the_pool_crate_would_fail() {
    // Fine in the pool crate, banned in the detector: algorithm code
    // reaches parallelism only through the `ballfit-par` API.
    let src = "pub fn detect_locked(m: &std::sync::Mutex<u64>) { let _ = m.lock(); }";
    assert!(analyze_source("crates/par/src/lib.rs", src, &LintConfig::default()).is_empty());
    let diags = analyze_source("crates/core/src/detector.rs", src, &LintConfig::default());
    assert!(diags.iter().any(|d| d.pass == Pass::ParScope), "{diags:?}");
}

#[test]
fn trace_emission_inside_a_handler_would_fail() {
    // A protocol writing its own trace records could skew the very
    // accounting the observability layer certifies; the trace sink
    // belongs to the simulator, the detectors and the runners.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned =
        src.replace(needle, &format!("{needle}\n        let mut _t = Trace::enabled();"));
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::ObsScope),
        "Trace inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn nan_unsafe_sort_anywhere_would_fail() {
    let src = r#"
        pub fn order(mut xs: Vec<f64>) -> Vec<f64> {
            xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            xs
        }
    "#;
    let diags = analyze_source("crates/geom/src/sort.rs", src, &LintConfig::default());
    assert!(diags.iter().any(|d| d.pass == Pass::FloatSafety), "{diags:?}");
}
