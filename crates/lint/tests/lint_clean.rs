//! The workspace is lint-clean, and stays that way: this test runs the
//! analyzer over the real algorithm crates and pins zero findings, then
//! demonstrates on the *actual* `protocols.rs` source that the regressions
//! the ISSUE cares about — a `HashMap` iteration or a global-state
//! accessor call creeping into the protocol layer — would fail this test.

use ballfit_lint::{
    analyze_files, analyze_source, analyze_workspace, ast, default_workspace_root, lexer, report,
    LintConfig, Pass,
};

#[test]
fn workspace_is_invariant_clean() {
    let root = default_workspace_root();
    let analysis =
        analyze_workspace(&root, &LintConfig::default()).expect("workspace sources are readable");
    assert!(
        analysis.diagnostics.is_empty(),
        "invariant violations in the workspace:\n{}",
        analysis.diagnostics.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

/// Reads the real protocol layer source so the regression fixtures below
/// exercise the exact code the invariants protect.
fn protocols_source() -> String {
    let path = default_workspace_root().join("crates/core/src/protocols.rs");
    std::fs::read_to_string(path).expect("protocols.rs exists")
}

#[test]
fn hashmap_iteration_in_protocols_would_fail() {
    let mut poisoned = protocols_source();
    poisoned.push_str(
        r#"
pub fn regression_tally(received: &std::collections::HashMap<NodeId, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in received {
        total += v;
    }
    total
}
"#,
    );
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::Determinism),
        "HashMap iteration in protocols.rs must be caught: {diags:?}"
    );
}

#[test]
fn global_state_accessor_in_handler_would_fail() {
    // Splice a global-state read into an existing `Protocol` handler body:
    // `on_message` of `GroupingProtocol` suddenly consults the whole model.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned =
        src.replace(needle, &format!("{needle}\n        let _cheat = self.model.positions();"));
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::Locality),
        "global accessor inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn unwrap_in_handler_would_fail() {
    let needle =
        "fn on_message(&mut self, from: NodeId, msg: &Self::Msg, _ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "UbfProtocol::on_message signature changed; update fixture");
    let poisoned = src.replace(
        needle,
        &format!("{needle}\n        let _first = self.received.iter().next().unwrap();"),
    );
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::PanicSafety),
        "unwrap inside a Protocol handler must be caught: {diags:?}"
    );
}

#[test]
fn fault_plan_inside_a_handler_would_fail() {
    // A protocol that consults the fault model from inside its handler
    // breaks the radio abstraction: hardening must work through `Ctx`
    // (acks, retransmission), never by peeking at the injected faults.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned = src.replace(
        needle,
        &format!("{needle}\n        let _cheat = FaultPlan::none().link_loss(0, 1);"),
    );
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::FaultScope),
        "FaultPlan inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn fault_plan_outside_the_harness_would_fail() {
    // The same construction is fine in the runner module but banned in,
    // say, the detector: fault injection is harness-only API.
    let src = "pub fn detect_with_faults(plan: &FaultPlan) { let _ = plan; }";
    assert!(analyze_source("crates/core/src/protocols.rs", src, &LintConfig::default()).is_empty());
    let diags = analyze_source("crates/core/src/detector.rs", src, &LintConfig::default());
    assert!(diags.iter().any(|d| d.pass == Pass::FaultScope), "{diags:?}");
}

#[test]
fn churn_event_inside_a_handler_would_fail() {
    // A protocol that reacts to raw topology-change events breaks the
    // locality story: a node only ever observes its *current* neighbor
    // set through `Ctx`, never the event stream that produced it.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned = src.replace(
        needle,
        &format!("{needle}\n        let _cheat: Option<TopologyEvent> = self.pending_event;"),
    );
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::ChurnScope),
        "TopologyEvent inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn churn_machinery_outside_the_churn_layer_would_fail() {
    // Fine in the incremental detector, banned in the static detector:
    // the static pipeline must stay oblivious to dynamics.
    let src = "pub fn track(dynamic: &DynamicTopology) { let _ = dynamic; }";
    assert!(
        analyze_source("crates/core/src/incremental.rs", src, &LintConfig::default()).is_empty()
    );
    let diags = analyze_source("crates/core/src/detector.rs", src, &LintConfig::default());
    assert!(diags.iter().any(|d| d.pass == Pass::ChurnScope), "{diags:?}");
}

#[test]
fn thread_spawn_inside_a_handler_would_fail() {
    // A handler spawning a real thread breaks the single-threaded-node
    // model outright; parallelism is an orchestration concern that lives
    // above the simulator, never inside it.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned =
        src.replace(needle, &format!("{needle}\n        let _h = std::thread::spawn(move || ());"));
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::ParScope),
        "thread::spawn inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn pool_api_inside_a_handler_would_fail() {
    // Even the deterministic pool is off-limits to handlers.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned =
        src.replace(needle, &format!("{needle}\n        let _par = Parallelism::sequential();"));
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::ParScope),
        "Parallelism inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn raw_threading_outside_the_pool_crate_would_fail() {
    // Fine in the pool crate, banned in the detector: algorithm code
    // reaches parallelism only through the `ballfit-par` API.
    let src = "pub fn detect_locked(m: &std::sync::Mutex<u64>) { let _ = m.lock(); }";
    assert!(analyze_source("crates/par/src/lib.rs", src, &LintConfig::default()).is_empty());
    let diags = analyze_source("crates/core/src/detector.rs", src, &LintConfig::default());
    assert!(diags.iter().any(|d| d.pass == Pass::ParScope), "{diags:?}");
}

#[test]
fn trace_emission_inside_a_handler_would_fail() {
    // A protocol writing its own trace records could skew the very
    // accounting the observability layer certifies; the trace sink
    // belongs to the simulator, the detectors and the runners.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned =
        src.replace(needle, &format!("{needle}\n        let mut _t = Trace::enabled();"));
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::ObsScope),
        "Trace inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn checkpoint_restore_inside_a_handler_would_fail() {
    // A handler snapshotting or restoring its own state mid-run would
    // sidestep the replay-identity pins: recovery restores the whole
    // simulation from an orchestration-layer checkpoint and replays.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned = src.replace(
        needle,
        &format!("{needle}\n        let _snap: DetectorCheckpoint = self.state.checkpoint();"),
    );
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::RecoveryScope),
        "checkpoint API inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn service_api_inside_a_handler_would_fail() {
    // A handler talking to the serve daemon inverts the layering: the
    // service orchestrates the detectors from above, and a simulated
    // node must not even know the wire layer exists.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned = src.replace(
        needle,
        &format!("{needle}\n        let _svc = Service::new(Parallelism::sequential());"),
    );
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::ServeScope),
        "Service inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn service_api_outside_the_serve_crate_would_fail() {
    // Fine in the serve crate (and in test code), banned in the
    // detector: algorithm crates must not depend on the wire layer.
    let src = "pub fn answer(req: &ServeRequest) -> ServeResponse { todo!() }";
    assert!(analyze_source("crates/serve/src/service.rs", src, &LintConfig::default()).is_empty());
    assert!(
        analyze_source("crates/core/tests/serve_probe.rs", src, &LintConfig::default()).is_empty()
    );
    let diags = analyze_source("crates/core/src/detector.rs", src, &LintConfig::default());
    assert!(diags.iter().any(|d| d.pass == Pass::ServeScope), "{diags:?}");
}

#[test]
fn backend_api_inside_a_handler_would_fail() {
    // Backends adapt whole detection pipelines from above; a message
    // handler constructing one would nest a full pipeline inside a
    // single simulated node's round handler.
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned = src.replace(
        needle,
        &format!("{needle}\n        let _b = UbfBackend::new(DetectorConfig::default());"),
    );
    let diags = analyze_source("crates/core/src/protocols.rs", &poisoned, &LintConfig::default());
    assert!(
        diags.iter().any(|d| d.pass == Pass::BackendScope),
        "backend API inside a Protocol impl must be caught: {diags:?}"
    );
}

#[test]
fn backend_api_outside_its_consumers_would_fail() {
    // Fine in the backends crate, the daemon and test code, banned in
    // the detector: the pipeline must compile without knowing the
    // backend trait exists.
    let src = "pub fn run(b: &dyn BoundaryBackend) -> BackendDetection { todo!() }";
    assert!(analyze_source("crates/backends/src/lib.rs", src, &LintConfig::default()).is_empty());
    assert!(analyze_source("crates/serve/src/service.rs", src, &LintConfig::default()).is_empty());
    assert!(analyze_source("crates/core/tests/backend_probe.rs", src, &LintConfig::default())
        .is_empty());
    let diags = analyze_source("crates/core/src/detector.rs", src, &LintConfig::default());
    assert!(diags.iter().any(|d| d.pass == Pass::BackendScope), "{diags:?}");
}

/// Splices one statement into `GroupingProtocol::on_message` and pairs
/// the poisoned runner module with a scratch helper file, returning the
/// file set the interprocedural passes see. The violation lives in the
/// scratch file, *two* calls away from the handler — invisible to every
/// token-level pass.
fn spliced_with_scratch(
    call: &str,
    scratch_label: &str,
    scratch_src: &str,
) -> Vec<(String, String)> {
    let needle =
        "fn on_message(&mut self, _from: NodeId, msg: &NodeId, ctx: &mut Ctx<'_, Self::Msg>) {";
    let src = protocols_source();
    assert!(src.contains(needle), "GroupingProtocol::on_message signature changed; update fixture");
    let poisoned = src.replace(needle, &format!("{needle}\n        {call}"));
    vec![
        ("crates/core/src/protocols.rs".to_string(), poisoned),
        (scratch_label.to_string(), scratch_src.to_string()),
    ]
}

#[test]
fn determinism_taint_two_calls_deep_is_caught() {
    // The direct determinism pass is pacified at the source site with
    // `allow(determinism)` — which must NOT launder the *transitive*
    // pass: the handler still reaches `thread_rng` through two helpers.
    let scratch = r#"
pub fn helper_a() -> u64 {
    helper_b()
}

fn helper_b() -> u64 {
    // ballfit-lint: allow(determinism)
    let _rng = thread_rng();
    0
}
"#;
    let files = spliced_with_scratch(
        "let _cheat = crate::scratch_taint::helper_a();",
        "crates/core/src/scratch_taint.rs",
        scratch,
    );
    let analysis = analyze_files(&files, &LintConfig::default());
    let hit =
        analysis.diagnostics.iter().find(|d| d.pass == Pass::DeterminismTaint).unwrap_or_else(
            || panic!("taint two calls deep must be caught: {:?}", analysis.diagnostics),
        );
    assert_eq!(hit.file, "crates/core/src/protocols.rs", "{hit}");
    assert!(hit.message.contains("thread_rng"), "{hit}");
    assert!(
        hit.message.contains("`helper_a`") && hit.message.contains("`helper_b`"),
        "chain must name both helpers: {hit}"
    );
    // No stale-allow noise: the source-site directive suppressed the
    // direct finding, so it earned its keep.
    assert!(
        !analysis.diagnostics.iter().any(|d| d.pass == Pass::StaleAllow),
        "{:?}",
        analysis.diagnostics
    );
    // Fingerprints are a pure function of the sources.
    let again = analyze_files(&files, &LintConfig::default());
    assert_eq!(
        report::entries(&analysis.diagnostics),
        report::entries(&again.diagnostics),
        "fingerprints must be byte-stable across runs"
    );
}

#[test]
fn panic_reachability_two_calls_deep_is_caught() {
    // `unwrap` in plain library code is legal (the direct pass only
    // polices handler bodies) — but a handler *reaching* it through
    // helpers is not.
    let scratch = r#"
pub fn helper_a(xs: &[u64]) -> u64 {
    helper_b(xs)
}

fn helper_b(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}
"#;
    let files = spliced_with_scratch(
        "let _cheat = crate::scratch_panic::helper_a(&[]);",
        "crates/core/src/scratch_panic.rs",
        scratch,
    );
    let analysis = analyze_files(&files, &LintConfig::default());
    let hit =
        analysis.diagnostics.iter().find(|d| d.pass == Pass::PanicReachability).unwrap_or_else(
            || panic!("panic two calls deep must be caught: {:?}", analysis.diagnostics),
        );
    assert_eq!(hit.file, "crates/core/src/protocols.rs", "{hit}");
    assert!(hit.message.contains("`.unwrap()`"), "{hit}");
    assert!(hit.message.contains("`helper_b`"), "{hit}");
}

#[test]
fn panic_reachability_respects_source_site_allow() {
    // Annotating the checked invariant at the panic site excuses the
    // whole chain — and the directive counts as used (no stale-allow).
    let scratch = r#"
pub fn helper_a(xs: &[u64]) -> u64 {
    helper_b(xs)
}

fn helper_b(xs: &[u64]) -> u64 {
    // ballfit-lint: allow(panic-reachability)
    xs.first().copied().unwrap()
}
"#;
    let files = spliced_with_scratch(
        "let _cheat = crate::scratch_panic::helper_a(&[]);",
        "crates/core/src/scratch_panic.rs",
        scratch,
    );
    let analysis = analyze_files(&files, &LintConfig::default());
    assert!(
        !analysis.diagnostics.iter().any(|d| d.pass == Pass::PanicReachability),
        "{:?}",
        analysis.diagnostics
    );
    assert!(
        !analysis.diagnostics.iter().any(|d| d.pass == Pass::StaleAllow),
        "source-site allow must count as used: {:?}",
        analysis.diagnostics
    );
}

#[test]
fn transitive_locality_two_calls_deep_is_caught() {
    // Naming `NetworkModel` in a helper's signature is fine on its own;
    // a Protocol handler reaching that helper is the violation.
    let scratch = r#"
pub fn helper_a() -> usize {
    helper_b()
}

fn helper_b(model: &NetworkModel) -> usize {
    model.node_count()
}
"#;
    let files = spliced_with_scratch(
        "let _cheat = crate::scratch_local::helper_a();",
        "crates/core/src/scratch_local.rs",
        scratch,
    );
    let analysis = analyze_files(&files, &LintConfig::default());
    let hit =
        analysis.diagnostics.iter().find(|d| d.pass == Pass::TransitiveLocality).unwrap_or_else(
            || panic!("global state two calls deep must be caught: {:?}", analysis.diagnostics),
        );
    assert_eq!(hit.file, "crates/core/src/protocols.rs", "{hit}");
    assert!(hit.message.contains("`NetworkModel`"), "{hit}");
    assert!(hit.message.contains("`helper_b`"), "{hit}");
}

#[test]
fn stale_allow_directives_are_flagged() {
    let src = "\
// ballfit-lint: allow(float-safety)
pub fn quiet() -> u64 {
    7
}

// ballfit-lint: allow(flot-safety)
pub fn typo() -> u64 {
    8
}
";
    let files = vec![("crates/core/src/scratch_allow.rs".to_string(), src.to_string())];
    let analysis = analyze_files(&files, &LintConfig::default());
    let stale: Vec<_> =
        analysis.diagnostics.iter().filter(|d| d.pass == Pass::StaleAllow).collect();
    assert_eq!(stale.len(), 2, "{:?}", analysis.diagnostics);
    assert!(stale[0].message.contains("suppresses no findings"), "{}", stale[0]);
    assert!(stale[1].message.contains("names no known pass"), "{}", stale[1]);
}

#[test]
fn every_workspace_file_parses_into_items() {
    fn collect(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
        let mut entries: Vec<_> =
            std::fs::read_dir(dir).unwrap().map(|e| e.unwrap().path()).collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                collect(&path, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    let mut files = Vec::new();
    collect(&default_workspace_root().join("crates"), &mut files);
    assert!(files.len() >= 60, "expected the whole workspace, got {} files", files.len());
    for path in &files {
        let src = std::fs::read_to_string(path).unwrap();
        let parsed = ast::parse(&lexer::lex(&src).toks);
        assert!(!parsed.items.is_empty(), "no items parsed from {}", path.display());
    }
}

#[test]
fn parser_pins_fixture_item_count() {
    let src = r#"
//! Fixture: one of each item shape the parser distinguishes.
use std::fmt::{self, Display};

mod inner {
    pub fn nested() {}
}

pub struct Widget {
    pub id: u64,
}

impl Display for Widget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

pub trait Renders {
    fn render(&self) -> String;
}

pub fn free_standing() -> u64 {
    42
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {}
}
"#;
    let parsed = ast::parse(&lexer::lex(src).toks);
    // use + mod inner (+ nested fn) + struct + impl + trait + free fn +
    // tests mod (+ its fn): 7 top-level items, 9 counting inline-mod fns.
    assert_eq!(parsed.items.len(), 7, "{:#?}", parsed.items);
    assert_eq!(ast::item_count(&parsed.items), 9, "{:#?}", parsed.items);
}

#[test]
fn workspace_report_is_reproducible_and_diff_clean() {
    let root = default_workspace_root();
    let cfg = LintConfig::default();
    let a = analyze_workspace(&root, &cfg).expect("workspace sources are readable");
    let b = analyze_workspace(&root, &cfg).expect("workspace sources are readable");
    let rendered_a = report::render(&a);
    let rendered_b = report::render(&b);
    assert_eq!(rendered_a, rendered_b, "report must be byte-identical across runs");
    // The report parses back and round-trips through the drift gate.
    let drift = report::diff(&report::entries(&a.diagnostics), &rendered_b)
        .expect("rendered report is valid baseline input");
    assert!(drift.is_empty(), "added {:?} removed {:?}", drift.added, drift.removed);
    assert!(a.functions >= 900, "symbol table shrank suspiciously: {}", a.functions);
}

#[test]
fn nan_unsafe_sort_anywhere_would_fail() {
    let src = r#"
        pub fn order(mut xs: Vec<f64>) -> Vec<f64> {
            xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            xs
        }
    "#;
    let diags = analyze_source("crates/geom/src/sort.rs", src, &LintConfig::default());
    assert!(diags.iter().any(|d| d.pass == Pass::FloatSafety), "{diags:?}");
}
