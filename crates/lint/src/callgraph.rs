//! Workspace symbol table and cross-crate call graph.
//!
//! Built from the per-file [`crate::ast`] item trees, this module gives
//! the interprocedural passes the one relation they need: *which
//! workspace functions can this function reach?* Resolution is
//! heuristic — no type inference — but tuned to over-approximate safely:
//!
//! * **Path calls** (`helper()`, `crate::geom::orient3d()`,
//!   `Type::assoc()`) resolve through `use` imports, `crate`/`self`/
//!   `super` prefixes and the `ballfit_*` crate aliases into the free-fn
//!   and method tables.
//! * **Method calls** (`recv.name(..)`) resolve precisely when the
//!   receiver is `self` (the impl owner's methods) or a typed parameter
//!   (`ctx: &mut Ctx<..>` ⇒ `Ctx`'s methods); otherwise they fall back
//!   to *every* workspace method of that name — except for names on
//!   [`crate::passes::LintConfig::method_fallback_skip`], which collide
//!   with std (`insert`, `iter`, `len`, ...) and would connect everything
//!   to everything.
//!
//! Unresolvable calls (std, external) produce no edge: the passes only
//! reason about workspace-defined code, which is exactly the code the
//! invariants govern.

use std::collections::BTreeMap;

use crate::ast::{Ast, Item, ItemKind, UseImport};
use crate::lexer::{Lexed, Tok, TokKind};
use crate::passes::LintConfig;

/// One analyzed source file: label + token stream + item tree.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative path used in diagnostics.
    pub label: String,
    /// Lexer output (tokens + allow directives).
    pub lexed: Lexed,
    /// Parsed item tree.
    pub ast: Ast,
}

impl FileUnit {
    /// Lexes and parses one source file.
    pub fn new(label: String, src: &str) -> FileUnit {
        let lexed = crate::lexer::lex(src);
        let ast = crate::ast::parse(&lexed.toks);
        FileUnit { label, lexed, ast }
    }
}

/// One function known to the workspace symbol table.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the `FileUnit` slice the graph was built from.
    pub file_idx: usize,
    /// Crate directory name (`core`, `wsn`, ...).
    pub krate: String,
    /// Module path within the crate (`["detector"]`, `["tests", "x"]`).
    pub module: Vec<String>,
    /// Impl/trait owner type for associated fns, `None` for free fns.
    pub owner: Option<String>,
    /// Trait the enclosing impl implements (`Some("Protocol")` marks
    /// protocol handlers).
    pub trait_name: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside `#[cfg(test)]` code or a `tests/` file.
    pub is_test: bool,
    /// Signature token range (see [`crate::ast::FnItem::sig`]).
    pub sig: (usize, usize),
    /// Body token range, if the fn has one.
    pub body: Option<(usize, usize)>,
}

impl FnNode {
    /// Short display label: `Owner::name` or `name`.
    pub fn label(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}", o, self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All workspace functions in deterministic (file, source) order.
    pub fns: Vec<FnNode>,
    /// `edges[i]` = sorted, deduplicated callee indices of `fns[i]`.
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds symbol table + edges for all `units`.
    pub fn build(units: &[FileUnit], cfg: &LintConfig) -> CallGraph {
        let mut fns: Vec<FnNode> = Vec::new();
        let mut imports_per_file: Vec<Vec<UseImport>> = Vec::new();
        for (file_idx, u) in units.iter().enumerate() {
            let (krate, base_module, file_is_test) = locate(&u.label);
            let mut module = base_module.clone();
            collect_fns(&u.ast.items, file_idx, &krate, &mut module, file_is_test, &mut fns);
            let mut imports = Vec::new();
            collect_imports(&u.ast.items, &mut imports);
            imports_per_file.push(imports);
        }

        let tables = Tables::index(&fns);
        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(fns.len());
        for f in &fns {
            let mut out: Vec<usize> = Vec::new();
            if let Some((lo, hi)) = f.body {
                let toks = &units[f.file_idx].lexed.toks;
                let params = param_types(&toks[f.sig.0..f.sig.1]);
                for call in extract_calls(toks, lo, hi.min(toks.len())) {
                    let targets = match call {
                        Call::Path(segs) => {
                            tables.resolve_path(&segs, f, &imports_per_file[f.file_idx], cfg)
                        }
                        Call::Method { name, receiver } => {
                            tables.resolve_method(&name, receiver.as_deref(), f, &params, cfg)
                        }
                    };
                    out.extend(targets);
                }
            }
            out.sort_unstable();
            out.dedup();
            edges.push(out);
        }
        CallGraph { fns, edges }
    }

    /// Deterministic BFS from `start`: returns the shortest call chain
    /// (as fn indices, `start` first) to the nearest function satisfying
    /// `target`, or `None`. Never expands test functions or functions
    /// whose owner is a trusted API boundary
    /// ([`LintConfig::trusted_owners`]), and never returns `start`
    /// itself — direct findings belong to the intraprocedural passes.
    pub fn shortest_path(
        &self,
        start: usize,
        cfg: &LintConfig,
        target: impl Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        let mut prev: Vec<usize> = vec![usize::MAX; self.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        prev[start] = start;
        queue.push_back(start);
        while let Some(i) = queue.pop_front() {
            for &j in &self.edges[i] {
                if prev[j] != usize::MAX {
                    continue;
                }
                let callee = &self.fns[j];
                if callee.is_test {
                    continue;
                }
                prev[j] = i;
                if target(j) {
                    let mut path = vec![j];
                    let mut k = j;
                    while k != start {
                        k = prev[k];
                        path.push(k);
                    }
                    path.reverse();
                    return Some(path);
                }
                // Trusted API boundaries (e.g. `Ctx`) are terminal: their
                // internals belong to the simulator, not the caller.
                let trusted = callee.owner.as_ref().is_some_and(|o| cfg.trusted_owners.contains(o));
                if !trusted {
                    queue.push_back(j);
                }
            }
        }
        None
    }
}

/// Derives `(crate, module path, is_test_file)` from a workspace-relative
/// label like `crates/core/src/detector.rs`.
fn locate(label: &str) -> (String, Vec<String>, bool) {
    let norm = label.replace('\\', "/");
    let mut krate = String::new();
    let mut rest = norm.as_str();
    if let Some(r) = norm.strip_prefix("crates/") {
        if let Some(slash) = r.find('/') {
            krate = r[..slash].to_string();
            rest = &r[slash + 1..];
        }
    }
    let (root, is_test) = match rest.split_once('/') {
        Some(("src", tail)) => (tail, false),
        Some(("tests", tail)) => (tail, true),
        Some(("benches", tail)) => (tail, true),
        _ => (rest, false),
    };
    let stem = root.strip_suffix(".rs").unwrap_or(root);
    let mut module: Vec<String> = if is_test { vec!["tests".to_string()] } else { Vec::new() };
    if stem != "lib" && stem != "main" {
        for seg in stem.split('/') {
            if seg == "mod" {
                continue;
            }
            module.push(seg.to_string());
        }
    }
    (krate, module, is_test)
}

fn collect_fns(
    items: &[Item],
    file_idx: usize,
    krate: &str,
    module: &mut Vec<String>,
    in_test: bool,
    out: &mut Vec<FnNode>,
) {
    for item in items {
        let test = in_test || item.cfg_test;
        match &item.kind {
            ItemKind::Mod { name, inline: Some(children) } => {
                let mod_test = test || name == "tests";
                module.push(name.clone());
                collect_fns(children, file_idx, krate, module, mod_test, out);
                module.pop();
            }
            ItemKind::Fn(f) => out.push(FnNode {
                file_idx,
                krate: krate.to_string(),
                module: module.clone(),
                owner: None,
                trait_name: None,
                name: f.name.clone(),
                line: f.line,
                is_test: test || f.cfg_test,
                sig: f.sig,
                body: f.body,
            }),
            ItemKind::Impl(im) => {
                for f in &im.fns {
                    out.push(FnNode {
                        file_idx,
                        krate: krate.to_string(),
                        module: module.clone(),
                        owner: im.self_ty.clone(),
                        trait_name: im.trait_name.clone(),
                        name: f.name.clone(),
                        line: f.line,
                        is_test: test || f.cfg_test,
                        sig: f.sig,
                        body: f.body,
                    });
                }
            }
            ItemKind::Trait { name, fns } => {
                for f in fns {
                    out.push(FnNode {
                        file_idx,
                        krate: krate.to_string(),
                        module: module.clone(),
                        owner: Some(name.clone()),
                        trait_name: None,
                        name: f.name.clone(),
                        line: f.line,
                        is_test: test || f.cfg_test,
                        sig: f.sig,
                        body: f.body,
                    });
                }
            }
            _ => {}
        }
    }
}

fn collect_imports(items: &[Item], out: &mut Vec<UseImport>) {
    for item in items {
        match &item.kind {
            ItemKind::Use { imports } => out.extend(imports.iter().cloned()),
            ItemKind::Mod { inline: Some(children), .. } => collect_imports(children, out),
            _ => {}
        }
    }
}

/// A call site extracted from a function body.
#[derive(Debug)]
enum Call {
    /// `a::b::name(..)` or bare `name(..)` — segments in order.
    Path(Vec<String>),
    /// `.name(..)` with the receiver ident when it is a simple
    /// `ident.name(..)` chain head (`self`, a parameter, a local).
    Method { name: String, receiver: Option<String> },
}

/// Extracts call sites from `toks[lo..hi]`.
fn extract_calls(toks: &[Tok], lo: usize, hi: usize) -> Vec<Call> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let prev = if i > lo { Some(&toks[i - 1]) } else { None };
        // Method call: `recv.name(..)`.
        if prev.is_some_and(|p| p.is_punct(".")) {
            if toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
                let receiver = match (i >= lo + 2).then(|| &toks[i - 2]) {
                    Some(r)
                        if r.kind == TokKind::Ident
                            && !(i >= lo + 3 && toks[i - 3].is_punct(".")) =>
                    {
                        Some(r.text.clone())
                    }
                    _ => None,
                };
                out.push(Call::Method { name: t.text.clone(), receiver });
            }
            i += 1;
            continue;
        }
        if prev.is_some_and(|p| p.is_punct("::")) {
            // Mid-path segment; the path head already consumed it.
            i += 1;
            continue;
        }
        if is_expr_keyword(&t.text) {
            i += 1;
            continue;
        }
        // Path head: collect `a :: b :: c` (skipping turbofish).
        let mut segs = vec![t.text.clone()];
        let mut j = i + 1;
        loop {
            if toks.get(j).is_some_and(|n| n.is_punct("::")) {
                match toks.get(j + 1) {
                    Some(n) if n.kind == TokKind::Ident => {
                        segs.push(n.text.clone());
                        j += 2;
                    }
                    Some(n) if n.is_punct("<") => {
                        // `::<T>` — skip the generic args, keep the path.
                        let mut depth = 0i32;
                        let mut k = j + 1;
                        while k < hi {
                            let g = &toks[k];
                            if g.is_punct("<") {
                                depth += 1;
                            } else if g.is_punct("<<") {
                                depth += 2;
                            } else if g.is_punct(">") {
                                depth -= 1;
                            } else if g.is_punct(">>") {
                                depth -= 2;
                            }
                            k += 1;
                            if depth <= 0 {
                                break;
                            }
                        }
                        j = k;
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        let macro_call = toks.get(j).is_some_and(|n| n.is_punct("!"));
        let has_parens = toks.get(j).is_some_and(|n| n.is_punct("("));
        if !macro_call && (has_parens || segs.len() >= 2) {
            out.push(Call::Path(segs));
        }
        i = j.max(i + 1);
    }
    out
}

fn is_expr_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "in"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "break"
            | "continue"
            | "as"
            | "where"
            | "fn"
            | "impl"
            | "dyn"
            | "pub"
            | "use"
            | "struct"
            | "enum"
            | "const"
            | "static"
            | "type"
            | "trait"
            | "unsafe"
            | "await"
    )
}

/// Parses parameter-name → type-name pairs out of a signature token
/// slice (`fn name<G>(a: Foo, ctx: &mut Ctx<'_, M>) -> R`). Only the
/// leading path ident of each type is kept — enough for method
/// resolution, which works on bare type names.
fn param_types(sig: &[Tok]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    // Skip `fn name` and any generic params, then find the param list.
    let mut i = 0;
    while i < sig.len() && !sig[i].is_punct("(") {
        if sig[i].is_punct("<") {
            // Generic params may contain `Fn(..)` parens; skip balanced.
            let mut depth = 0i32;
            while i < sig.len() {
                let t = &sig[i];
                if t.is_punct("<") {
                    depth += 1;
                } else if t.is_punct("<<") {
                    depth += 2;
                } else if t.is_punct(">") {
                    depth -= 1;
                } else if t.is_punct(">>") {
                    depth -= 2;
                }
                i += 1;
                if depth <= 0 {
                    break;
                }
            }
            continue;
        }
        i += 1;
    }
    if i >= sig.len() {
        return out;
    }
    // Split the param list on top-level commas.
    let mut depth_paren = 0i32;
    let mut depth_angle = 0i32;
    let mut depth_bracket = 0i32;
    let mut chunk: Vec<&Tok> = Vec::new();
    let mut chunks: Vec<Vec<&Tok>> = Vec::new();
    for t in &sig[i..] {
        if t.is_punct("(") {
            depth_paren += 1;
            if depth_paren == 1 {
                continue;
            }
        } else if t.is_punct(")") {
            depth_paren -= 1;
            if depth_paren == 0 {
                break;
            }
        } else if t.is_punct("[") {
            depth_bracket += 1;
        } else if t.is_punct("]") {
            depth_bracket -= 1;
        } else if t.is_punct("<") {
            depth_angle += 1;
        } else if t.is_punct("<<") {
            depth_angle += 2;
        } else if t.is_punct(">") {
            depth_angle -= 1;
        } else if t.is_punct(">>") {
            depth_angle -= 2;
        } else if t.is_punct(",") && depth_paren == 1 && depth_angle <= 0 && depth_bracket == 0 {
            chunks.push(std::mem::take(&mut chunk));
            continue;
        }
        chunk.push(t);
    }
    if !chunk.is_empty() {
        chunks.push(chunk);
    }
    for chunk in chunks {
        let Some(colon) = chunk.iter().position(|t| t.is_punct(":")) else { continue };
        let name = chunk[..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref");
        let Some(name) = name else { continue };
        // First path ident of the type, skipping refs and qualifiers.
        let mut ty = None;
        for t in &chunk[colon + 1..] {
            match t.kind {
                TokKind::Ident if matches!(t.text.as_str(), "mut" | "dyn" | "impl") => {}
                TokKind::Ident => {
                    ty = Some(t.text.clone());
                    break;
                }
                TokKind::Lifetime => {}
                TokKind::Punct if t.text == "&" => {}
                _ => break,
            }
        }
        if let Some(ty) = ty {
            out.insert(name.text.clone(), ty);
        }
    }
    out
}

/// Symbol tables: free fns by (crate, module, name), methods by
/// (owner, name) and by bare name.
struct Tables {
    free: BTreeMap<(String, String, String), Vec<usize>>,
    free_by_crate: BTreeMap<(String, String), Vec<usize>>,
    methods: BTreeMap<(String, String), Vec<usize>>,
    methods_by_name: BTreeMap<String, Vec<usize>>,
}

impl Tables {
    fn index(fns: &[FnNode]) -> Tables {
        let mut t = Tables {
            free: BTreeMap::new(),
            free_by_crate: BTreeMap::new(),
            methods: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
        };
        for (i, f) in fns.iter().enumerate() {
            match &f.owner {
                None => {
                    t.free
                        .entry((f.krate.clone(), f.module.join("::"), f.name.clone()))
                        .or_default()
                        .push(i);
                    t.free_by_crate.entry((f.krate.clone(), f.name.clone())).or_default().push(i);
                }
                Some(owner) => {
                    t.methods.entry((owner.clone(), f.name.clone())).or_default().push(i);
                    t.methods_by_name.entry(f.name.clone()).or_default().push(i);
                }
            }
        }
        t
    }

    fn resolve_path(
        &self,
        segs: &[String],
        caller: &FnNode,
        imports: &[UseImport],
        cfg: &LintConfig,
    ) -> Vec<usize> {
        if segs.is_empty() {
            return Vec::new();
        }
        // Expand a `use` binding for the path head.
        let mut segs: Vec<String> = segs.to_vec();
        if let Some(imp) = imports.iter().find(|u| u.name == segs[0]) {
            let mut p = imp.path.clone();
            p.extend(segs.drain(1..));
            segs = p;
        }
        // `Self::assoc(..)` inside an impl.
        if segs[0] == "Self" {
            if segs.len() == 2 {
                if let Some(owner) = &caller.owner {
                    if let Some(v) = self.methods.get(&(owner.clone(), segs[1].clone())) {
                        return v.clone();
                    }
                }
            }
            return Vec::new();
        }
        let alias_crate = |s: &str| -> Option<String> {
            cfg.crate_aliases.iter().find(|(a, _)| a == s).map(|(_, k)| k.clone())
        };
        let (krate, rest): (Option<String>, Vec<String>) = match segs[0].as_str() {
            "crate" => (Some(caller.krate.clone()), segs[1..].to_vec()),
            "self" => {
                let mut m = caller.module.clone();
                m.extend(segs[1..].to_vec());
                (Some(caller.krate.clone()), m)
            }
            "super" => {
                let mut m = caller.module.clone();
                m.pop();
                m.extend(segs[1..].to_vec());
                (Some(caller.krate.clone()), m)
            }
            head => match alias_crate(head) {
                Some(k) => (Some(k), segs[1..].to_vec()),
                None => (None, segs.clone()),
            },
        };
        if rest.is_empty() {
            return Vec::new();
        }
        let name = rest.last().cloned().unwrap_or_default();
        let mods = &rest[..rest.len() - 1];
        match krate {
            Some(k) => {
                if let Some(v) = self.free.get(&(k.clone(), mods.join("::"), name.clone())) {
                    return v.clone();
                }
                if let Some(last) = mods.last() {
                    if let Some(v) = self.methods.get(&(last.clone(), name.clone())) {
                        return v.clone();
                    }
                }
                Vec::new()
            }
            None => {
                // Bare or relative path in the caller's own crate.
                let mut rel = caller.module.clone();
                rel.extend(mods.to_vec());
                if let Some(v) =
                    self.free.get(&(caller.krate.clone(), rel.join("::"), name.clone()))
                {
                    return v.clone();
                }
                if !mods.is_empty() {
                    if let Some(v) =
                        self.free.get(&(caller.krate.clone(), mods.join("::"), name.clone()))
                    {
                        return v.clone();
                    }
                    if let Some(v) =
                        self.methods.get(&(mods.last().cloned().unwrap(), name.clone()))
                    {
                        return v.clone();
                    }
                    Vec::new()
                } else {
                    self.free_by_crate
                        .get(&(caller.krate.clone(), name))
                        .cloned()
                        .unwrap_or_default()
                }
            }
        }
    }

    fn resolve_method(
        &self,
        name: &str,
        receiver: Option<&str>,
        caller: &FnNode,
        params: &BTreeMap<String, String>,
        cfg: &LintConfig,
    ) -> Vec<usize> {
        if receiver == Some("self") {
            if let Some(owner) = &caller.owner {
                if let Some(v) = self.methods.get(&(owner.clone(), name.to_string())) {
                    return v.clone();
                }
            }
        }
        if let Some(r) = receiver {
            if let Some(ty) = params.get(r) {
                if let Some(v) = self.methods.get(&(ty.clone(), name.to_string())) {
                    return v.clone();
                }
            }
        }
        // Unknown receiver: every workspace method of that name, unless
        // the name collides with std and would wire the graph into a
        // clique.
        if cfg.method_fallback_skip.iter().any(|s| s == name) {
            return Vec::new();
        }
        self.methods_by_name.get(name).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> (Vec<FileUnit>, CallGraph) {
        let units: Vec<FileUnit> =
            files.iter().map(|(l, s)| FileUnit::new(l.to_string(), s)).collect();
        let cfg = LintConfig::default();
        let g = CallGraph::build(&units, &cfg);
        (units, g)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.fns.iter().position(|f| f.name == name).unwrap_or_else(|| panic!("fn {name} indexed"))
    }

    #[test]
    fn locate_maps_labels_to_modules() {
        assert_eq!(locate("crates/core/src/lib.rs"), ("core".into(), vec![], false));
        assert_eq!(
            locate("crates/core/src/detector.rs"),
            ("core".into(), vec!["detector".into()], false)
        );
        assert_eq!(locate("crates/geom/src/a/mod.rs"), ("geom".into(), vec!["a".into()], false));
        assert_eq!(
            locate("crates/geom/src/a/b.rs"),
            ("geom".into(), vec!["a".into(), "b".into()], false)
        );
        assert_eq!(
            locate("crates/core/tests/clean.rs"),
            ("core".into(), vec!["tests".into(), "clean".into()], true)
        );
    }

    #[test]
    fn resolves_cross_module_and_cross_crate_calls() {
        let (_u, g) = graph(&[
            (
                "crates/core/src/a.rs",
                "use crate::b::helper;\npub fn entry() { helper(); ballfit_geom::dist(); }",
            ),
            ("crates/core/src/b.rs", "pub fn helper() { crate::b::deeper(); }\npub fn deeper() {}"),
            ("crates/geom/src/lib.rs", "pub fn dist() {}"),
        ]);
        let entry = idx(&g, "entry");
        assert_eq!(
            g.edges[entry],
            vec![idx(&g, "helper"), idx(&g, "dist")]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
        assert_eq!(g.edges[idx(&g, "helper")], vec![idx(&g, "deeper")]);
    }

    #[test]
    fn resolves_self_and_param_typed_method_calls() {
        let src = r#"
            pub struct Widget;
            impl Widget {
                pub fn run(&mut self, ctx: &mut Helper) { self.step(); ctx.assist(); }
                fn step(&mut self) {}
            }
            pub struct Helper;
            impl Helper { pub fn assist(&mut self) {} }
        "#;
        let (_u, g) = graph(&[("crates/core/src/w.rs", src)]);
        let run = idx(&g, "run");
        let mut expect = vec![idx(&g, "step"), idx(&g, "assist")];
        expect.sort_unstable();
        assert_eq!(g.edges[run], expect);
    }

    #[test]
    fn fallback_skips_std_colliding_names() {
        let src = r#"
            pub struct S;
            impl S { pub fn insert(&mut self) {} }
            pub fn f(v: &mut Vec<u32>) { v.insert(0); }
        "#;
        let (_u, g) = graph(&[("crates/core/src/s.rs", src)]);
        let f = idx(&g, "f");
        assert!(g.edges[f].is_empty(), "std-name fallback must not create edges: {:?}", g.edges[f]);
    }

    #[test]
    fn shortest_path_finds_two_hop_chains() {
        let (_u, g) = graph(&[(
            "crates/core/src/chain.rs",
            "pub fn a() { b(); }\npub fn b() { c(); }\npub fn c() {}",
        )]);
        let cfg = LintConfig::default();
        let (a, c) = (idx(&g, "a"), idx(&g, "c"));
        let path = g.shortest_path(a, &cfg, |i| i == c).expect("chain found");
        assert_eq!(path, vec![a, idx(&g, "b"), c]);
        assert!(g.shortest_path(c, &cfg, |i| i == a).is_none());
    }

    #[test]
    fn param_types_survive_generics_and_refs() {
        let lexed = crate::lexer::lex(
            "fn on_message<F: Fn(u32) -> u32>(&mut self, from: NodeId, msg: &Self::Msg, ctx: &mut Ctx<'_, M>) {",
        );
        let sig_end = lexed.toks.iter().position(|t| t.is_punct("{")).unwrap();
        let params = param_types(&lexed.toks[..sig_end]);
        assert_eq!(params.get("from").map(String::as_str), Some("NodeId"));
        assert_eq!(params.get("ctx").map(String::as_str), Some("Ctx"));
        assert_eq!(params.get("msg").map(String::as_str), Some("Self"));
    }
}
