//! CLI for the ballfit workspace invariant analyzer.
//!
//! ```text
//! cargo run -p ballfit-lint                 # analyze the workspace, exit 1 on findings
//! cargo run -p ballfit-lint -- --root /path/to/workspace
//! cargo run -p ballfit-lint -- --json results/lint_baseline.json
//! cargo run -p ballfit-lint -- --diff results/lint_baseline.json
//! cargo run -p ballfit-lint -- crates/core/src/protocols.rs   # specific files (token-level only)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ballfit_lint::{
    analyze_source, analyze_workspace, default_workspace_root, report, Analysis, LintConfig,
};

fn main() -> ExitCode {
    let mut root = default_workspace_root();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut json_out: Option<PathBuf> = None;
    let mut diff_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --json requires an output path");
                    return ExitCode::from(2);
                }
            },
            "--diff" => match args.next() {
                Some(p) => diff_baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --diff requires a baseline report path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "ballfit-lint: enforce determinism / locality / panic-safety / float-safety /\n\
                     fault-scope / churn-scope / par-scope / obs-scope / recovery-scope /\n\
                     serve-scope / backend-scope, plus the interprocedural determinism-taint /\n\
                     panic-reachability / transitive-locality passes and the stale-allow audit\n\
                     \n\
                     USAGE: ballfit-lint [--root <workspace>] [--json <report.json>]\n\
                     \x20                   [--diff <baseline.json>] [FILE.rs ...]\n\
                     \n\
                     With no FILE arguments, analyzes every .rs file in the workspace's\n\
                     crates/{{core,wsn,geom,mds,netgen,par,obs,serve,backends}} with all 15\n\
                     passes. FILE arguments run the 11 token-level passes on those files only (the\n\
                     interprocedural passes need the whole workspace).\n\
                     \n\
                     --json writes a stable machine-readable report (fixed key order,\n\
                     per-diagnostic fingerprints; byte-identical across runs on identical\n\
                     sources). --diff compares the current run's fingerprints against a\n\
                     committed baseline and exits nonzero on any drift; regenerate the\n\
                     baseline with `--json results/lint_baseline.json` and commit it.\n\
                     \n\
                     Suppress a finding with a `// ballfit-lint: allow(<pass>)` comment on\n\
                     the same or previous line; for the transitive passes, annotate the\n\
                     source site (the panic/nondeterminism token). Every directive must\n\
                     suppress something — stale ones fail the stale-allow audit."
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("error: unknown flag {arg} (see --help)");
                return ExitCode::from(2);
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }

    let cfg = LintConfig::default();
    if !files.is_empty() {
        if json_out.is_some() || diff_baseline.is_some() {
            eprintln!("error: --json/--diff need the whole workspace; drop the FILE arguments");
            return ExitCode::from(2);
        }
        let mut diags = Vec::new();
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(src) => diags.extend(analyze_source(&f.to_string_lossy(), &src, &cfg)),
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        for d in &diags {
            eprintln!("{d}");
        }
        return if diags.is_empty() {
            eprintln!("ballfit-lint: clean (token-level passes)");
            ExitCode::SUCCESS
        } else {
            eprintln!("ballfit-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        };
    }

    let analysis: Analysis = match analyze_workspace(&root, &cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_out {
        let rendered = report::render(&analysis);
        if let Err(e) = std::fs::write(path, rendered) {
            eprintln!("error: cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("ballfit-lint: report written to {}", path.display());
    }

    if let Some(baseline_path) = &diff_baseline {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        let current = report::entries(&analysis.diagnostics);
        let drift = match report::diff(&current, &baseline) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        for a in &drift.added {
            eprintln!("lint drift: new finding {a}");
        }
        for r in &drift.removed {
            eprintln!("lint drift: baseline finding gone {r} (regenerate the baseline)");
        }
        return if drift.is_empty() {
            eprintln!(
                "ballfit-lint: no drift against {} ({} finding(s))",
                baseline_path.display(),
                current.len()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "ballfit-lint: {} added / {} removed vs {}",
                drift.added.len(),
                drift.removed.len(),
                baseline_path.display()
            );
            ExitCode::FAILURE
        };
    }

    for d in &analysis.diagnostics {
        eprintln!("{d}");
    }
    if analysis.diagnostics.is_empty() {
        eprintln!(
            "ballfit-lint: clean ({} files, {} functions; passes: determinism, locality, \
             panic-safety, float-safety, fault-scope, churn-scope, par-scope, obs-scope, \
             recovery-scope, serve-scope, backend-scope, determinism-taint, \
             panic-reachability, transitive-locality, stale-allow)",
            analysis.files, analysis.functions
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("ballfit-lint: {} violation(s)", analysis.diagnostics.len());
        ExitCode::FAILURE
    }
}
