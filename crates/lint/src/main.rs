//! CLI for the ballfit workspace invariant analyzer.
//!
//! ```text
//! cargo run -p ballfit-lint            # analyze the workspace, exit 1 on findings
//! cargo run -p ballfit-lint -- --root /path/to/workspace
//! cargo run -p ballfit-lint -- crates/core/src/protocols.rs   # specific files
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ballfit_lint::{analyze_source, analyze_workspace, default_workspace_root, LintConfig};

fn main() -> ExitCode {
    let mut root = default_workspace_root();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "ballfit-lint: enforce determinism / locality / panic-safety / float-safety / fault-scope / churn-scope / par-scope / obs-scope\n\
                     \n\
                     USAGE: ballfit-lint [--root <workspace>] [FILE.rs ...]\n\
                     \n\
                     With no FILE arguments, analyzes every .rs file in the workspace's\n\
                     crates/{{core,wsn,geom,mds,netgen,par,obs}}. Suppress a finding with a\n\
                     `// ballfit-lint: allow(<pass>)` comment on the same or previous line."
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("error: unknown flag {arg} (see --help)");
                return ExitCode::from(2);
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }

    let cfg = LintConfig::default();
    let diags = if files.is_empty() {
        match analyze_workspace(&root, &cfg) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: failed to scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut d = Vec::new();
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(src) => d.extend(analyze_source(&f.to_string_lossy(), &src, &cfg)),
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        d
    };

    for d in &diags {
        eprintln!("{d}");
    }
    if diags.is_empty() {
        eprintln!(
            "ballfit-lint: clean (passes: determinism, locality, panic-safety, float-safety, fault-scope, churn-scope, par-scope, obs-scope)"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("ballfit-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
