//! A lightweight item-level AST over the [`crate::lexer`] token stream.
//!
//! The interprocedural passes need to know *which function a token belongs
//! to* and *what that function can call* — nothing more. So this parser
//! recognizes exactly the item grammar that matters (modules, use-trees,
//! functions, impl blocks, traits) and treats everything else as an opaque
//! [`ItemKind::Other`]. Function bodies are **not** parsed into expressions:
//! a body is a token-index range into the original stream, and the call
//! graph extracts call sites from it with the same token-pattern matching
//! the direct passes use.
//!
//! The parser is tolerant by construction: any token sequence it does not
//! understand is skipped to the next item boundary (`;` or a balanced
//! `{...}` block at the current nesting level), so a file that compiles
//! always yields *some* item list and a file that does not cannot wedge
//! the analyzer. Recovery never loses functions in practice — the
//! round-trip test in `tests/lint_clean.rs` pins the workspace item count.

use crate::lexer::{Tok, TokKind};

/// One parsed source file.
#[derive(Debug, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// An item plus the attribute facts the passes care about.
#[derive(Debug)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// 1-based line of the item's keyword token.
    pub line: u32,
    /// Carried a `#[cfg(test)]` attribute (not `cfg(not(test))`).
    pub cfg_test: bool,
}

/// Item kinds the analyzer distinguishes.
#[derive(Debug)]
pub enum ItemKind {
    /// `mod name;` or `mod name { ... }`.
    Mod {
        /// Module name.
        name: String,
        /// Inline body items, `None` for `mod name;` declarations.
        inline: Option<Vec<Item>>,
    },
    /// `use ...;` — flattened into one binding per leaf.
    Use {
        /// Every name the declaration brings into scope.
        imports: Vec<UseImport>,
    },
    /// A free function.
    Fn(FnItem),
    /// `impl Type { ... }` or `impl Trait for Type { ... }`.
    Impl(ImplItem),
    /// `trait Name { ... }` — method signatures (and defaults) collected.
    Trait {
        /// Trait name.
        name: String,
        /// Declared methods (bodies present only for defaulted ones).
        fns: Vec<FnItem>,
    },
    /// Anything else (struct/enum/const/static/type/macro/extern block).
    Other,
}

/// One function, free or associated.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range `[start, end)` of the signature: from the `fn`
    /// keyword up to (excluding) the body `{` or the terminating `;`.
    pub sig: (usize, usize),
    /// Token-index range `[start, end)` of the body *contents* (between
    /// the braces, both exclusive); `None` for bodiless declarations.
    pub body: Option<(usize, usize)>,
    /// Carried `#[cfg(test)]` (directly or via the enclosing impl).
    pub cfg_test: bool,
}

/// One impl block with the functions it owns.
#[derive(Debug)]
pub struct ImplItem {
    /// Trait being implemented (last path segment), `None` for inherent
    /// impls.
    pub trait_name: Option<String>,
    /// The `Self` type (last path segment at the top nesting level),
    /// `None` when it is not a plain path (e.g. `impl Trait for &T`
    /// falls back to the referent's name, tuples/slices to `None`).
    pub self_ty: Option<String>,
    /// Associated functions in source order.
    pub fns: Vec<FnItem>,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
}

/// One binding introduced by a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// Full path segments including the leaf (`["std", "collections",
    /// "BTreeMap"]`); for globs, the path of the module the glob opens.
    pub path: Vec<String>,
    /// The name bound in scope: the leaf segment, the `as` alias, or
    /// `"*"` for glob imports.
    pub name: String,
}

/// Parses one file's token stream into an item tree.
pub fn parse(toks: &[Tok]) -> Ast {
    let mut p = Parser { toks, pos: 0 };
    Ast { items: p.parse_items(toks.len()) }
}

/// Counts all items in `items`, recursing into inline modules (impl/trait
/// member functions are not counted separately). Used by the round-trip
/// test to pin parser coverage.
pub fn item_count(items: &[Item]) -> usize {
    let mut n = 0;
    for it in items {
        n += 1;
        if let ItemKind::Mod { inline: Some(children), .. } = &it.kind {
            n += item_count(children);
        }
    }
    n
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at(&self, i: usize) -> Option<&'a Tok> {
        self.toks.get(i)
    }

    fn cur(&self) -> Option<&'a Tok> {
        self.at(self.pos)
    }

    fn cur_line(&self) -> u32 {
        self.cur().map_or(0, |t| t.line)
    }

    /// Parses items until `end` (exclusive) or an unmatched `}` (which is
    /// consumed by the caller).
    fn parse_items(&mut self, end: usize) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < end {
            if self.cur().is_some_and(|t| t.is_punct("}")) {
                break;
            }
            let before = self.pos;
            if let Some(item) = self.parse_item(end) {
                items.push(item);
            }
            if self.pos == before {
                // Defensive: never wedge on unexpected tokens.
                self.pos += 1;
            }
        }
        items
    }

    fn parse_item(&mut self, end: usize) -> Option<Item> {
        let cfg_test = self.skip_attrs(end);
        self.skip_qualifiers(end);
        let t = self.cur()?;
        let line = t.line;
        if t.kind != TokKind::Ident {
            self.skip_to_item_end(end);
            return Some(Item { kind: ItemKind::Other, line, cfg_test });
        }
        let kind = match t.text.as_str() {
            "mod" => self.parse_mod(end),
            "use" => self.parse_use(end),
            "fn" => ItemKind::Fn(self.parse_fn(end, cfg_test)),
            "impl" => self.parse_impl(end, cfg_test),
            "trait" => self.parse_trait(end, cfg_test),
            _ => {
                self.skip_to_item_end(end);
                ItemKind::Other
            }
        };
        Some(Item { kind, line, cfg_test })
    }

    /// Skips leading `#[...]` / `#![...]` attributes; reports whether one
    /// of them was `#[cfg(test)]` (and not `cfg(not(test))`).
    fn skip_attrs(&mut self, end: usize) -> bool {
        let mut cfg_test = false;
        while self.pos < end && self.cur().is_some_and(|t| t.is_punct("#")) {
            let mut j = self.pos + 1;
            if self.at(j).is_some_and(|t| t.is_punct("!")) {
                j += 1;
            }
            if !self.at(j).is_some_and(|t| t.is_punct("[")) {
                break;
            }
            let close = self.skip_balanced(j, "[", "]", end);
            let attr = &self.toks[j..close.min(end)];
            let has = |s: &str| attr.iter().any(|t| t.is_ident(s));
            if has("cfg") && has("test") && !has("not") {
                cfg_test = true;
            }
            self.pos = close;
        }
        cfg_test
    }

    /// Skips visibility and fn qualifiers (`pub(crate)`, `const fn`,
    /// `async`, `unsafe`, `extern "C"`, `default`), leaving `pos` at the
    /// item keyword.
    fn skip_qualifiers(&mut self, end: usize) {
        loop {
            let Some(t) = self.cur() else { return };
            match t.text.as_str() {
                "pub" => {
                    self.pos += 1;
                    if self.cur().is_some_and(|t| t.is_punct("(")) {
                        self.pos = self.skip_balanced(self.pos, "(", ")", end);
                    }
                }
                "default" | "async" | "unsafe" => self.pos += 1,
                "extern" => {
                    // `extern "C" fn` is a qualifier; `extern "C" { ... }`
                    // and `extern crate x;` are items — stop before them.
                    let mut j = self.pos + 1;
                    if self.at(j).is_some_and(|t| t.kind == TokKind::Str) {
                        j += 1;
                    }
                    if self.at(j).is_some_and(|t| t.is_ident("fn")) {
                        self.pos = j;
                    }
                    return;
                }
                "const" => {
                    // Qualifier only when a fn follows (possibly through
                    // more qualifiers); `const NAME: T = ...;` is an item.
                    let mut j = self.pos + 1;
                    while self
                        .at(j)
                        .is_some_and(|t| matches!(t.text.as_str(), "async" | "unsafe" | "extern"))
                    {
                        j += 1;
                        if self.at(j).is_some_and(|t| t.kind == TokKind::Str) {
                            j += 1;
                        }
                    }
                    if self.at(j).is_some_and(|t| t.is_ident("fn")) {
                        self.pos += 1;
                    } else {
                        return;
                    }
                }
                _ => return,
            }
        }
    }

    fn parse_mod(&mut self, end: usize) -> ItemKind {
        self.pos += 1; // `mod`
        let name = self.take_ident().unwrap_or_default();
        if self.cur().is_some_and(|t| t.is_punct("{")) {
            let close = self.skip_balanced(self.pos, "{", "}", end);
            self.pos += 1; // `{`
            let children = self.parse_items(close.saturating_sub(1));
            self.pos = close;
            ItemKind::Mod { name, inline: Some(children) }
        } else {
            if self.cur().is_some_and(|t| t.is_punct(";")) {
                self.pos += 1;
            }
            ItemKind::Mod { name, inline: None }
        }
    }

    fn parse_use(&mut self, end: usize) -> ItemKind {
        self.pos += 1; // `use`
        let mut imports = Vec::new();
        let stop = self.find_semicolon(self.pos, end);
        self.parse_use_tree(stop, &[], &mut imports);
        self.pos = stop.min(end);
        if self.cur().is_some_and(|t| t.is_punct(";")) {
            self.pos += 1;
        }
        ItemKind::Use { imports }
    }

    /// Parses one use-tree (up to `stop`) appending flattened bindings.
    fn parse_use_tree(&mut self, stop: usize, prefix: &[String], out: &mut Vec<UseImport>) {
        let mut path: Vec<String> = prefix.to_vec();
        while self.pos < stop {
            let Some(t) = self.cur() else { return };
            if t.kind == TokKind::Ident {
                path.push(t.text.clone());
                self.pos += 1;
                if self.cur().is_some_and(|t| t.is_ident("as")) {
                    self.pos += 1;
                    let alias = self.take_ident().unwrap_or_default();
                    out.push(UseImport { path: path.clone(), name: alias });
                    return;
                }
                if self.pos < stop && self.cur().is_some_and(|t| t.is_punct("::")) {
                    self.pos += 1;
                    continue;
                }
                // Leaf: `use a::b::Leaf`. `self` in a group (`use a::{self}`)
                // binds the module itself under its own name.
                let name = if path.last().is_some_and(|s| s == "self") {
                    path.pop();
                    path.last().cloned().unwrap_or_default()
                } else {
                    path.last().cloned().unwrap_or_default()
                };
                out.push(UseImport { path, name });
                return;
            } else if t.is_punct("*") {
                self.pos += 1;
                out.push(UseImport { path, name: "*".to_string() });
                return;
            } else if t.is_punct("{") {
                let close = self.skip_balanced(self.pos, "{", "}", stop);
                self.pos += 1;
                loop {
                    if self.pos >= close.saturating_sub(1) {
                        break;
                    }
                    self.parse_use_tree(close.saturating_sub(1), &path, out);
                    if self.cur().is_some_and(|t| t.is_punct(",")) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.pos = close;
                return;
            } else {
                // `::crate` leading colons etc.
                self.pos += 1;
            }
        }
    }

    fn parse_fn(&mut self, end: usize, cfg_test: bool) -> FnItem {
        let start = self.pos;
        let line = self.cur_line();
        self.pos += 1; // `fn`
        let name = self.take_ident().unwrap_or_default();
        // Scan for the body `{` or terminating `;` at paren/bracket depth
        // 0. Generic params never contain stray braces in this workspace
        // (no const-generic block expressions), so angle depth is not
        // tracked here.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while self.pos < end {
            let t = &self.toks[self.pos];
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren -= 1;
            } else if t.is_punct("[") {
                bracket += 1;
            } else if t.is_punct("]") {
                bracket -= 1;
            } else if paren == 0 && bracket == 0 {
                if t.is_punct("{") {
                    let sig = (start, self.pos);
                    let close = self.skip_balanced(self.pos, "{", "}", end);
                    let body = (self.pos + 1, close.saturating_sub(1));
                    self.pos = close;
                    return FnItem { name, line, sig, body: Some(body), cfg_test };
                }
                if t.is_punct(";") {
                    let sig = (start, self.pos);
                    self.pos += 1;
                    return FnItem { name, line, sig, body: None, cfg_test };
                }
            }
            self.pos += 1;
        }
        FnItem { name, line, sig: (start, self.pos), body: None, cfg_test }
    }

    fn parse_impl(&mut self, end: usize, cfg_test: bool) -> ItemKind {
        let line = self.cur_line();
        self.pos += 1; // `impl`
        self.skip_generics(end);
        // Header: `Path<..> for Path<..> where ... {` — trait name is the
        // last angle-depth-0 ident before `for`; Self type the last one
        // after it (before `where`/`{`).
        let mut angle = 0i32;
        let mut before_for: Option<String> = None;
        let mut after: Option<String> = None;
        let mut saw_for = false;
        while self.pos < end {
            let t = &self.toks[self.pos];
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if t.is_punct("<<") {
                angle += 2;
            } else if t.is_punct(">>") {
                angle -= 2;
            } else if t.is_punct("->") {
                // `impl Fn(..) -> T for ..` style — the `>` of `->` is fused.
            } else if angle <= 0 {
                if t.is_ident("for") {
                    saw_for = true;
                    before_for = after.take();
                } else if t.is_ident("where") {
                    // Constraint types must not override the Self type.
                    while self.pos < end && !self.toks[self.pos].is_punct("{") {
                        self.pos += 1;
                    }
                    continue;
                } else if t.is_punct("{") {
                    break;
                } else if t.kind == TokKind::Ident
                    && !matches!(t.text.as_str(), "dyn" | "mut" | "const" | "as")
                {
                    after = Some(t.text.clone());
                }
            }
            self.pos += 1;
        }
        let (trait_name, self_ty) = if saw_for { (before_for, after) } else { (None, after) };
        let mut fns = Vec::new();
        if self.cur().is_some_and(|t| t.is_punct("{")) {
            let close = self.skip_balanced(self.pos, "{", "}", end);
            self.pos += 1;
            self.parse_member_fns(close.saturating_sub(1), cfg_test, &mut fns);
            self.pos = close;
        }
        ItemKind::Impl(ImplItem { trait_name, self_ty, fns, line })
    }

    fn parse_trait(&mut self, end: usize, cfg_test: bool) -> ItemKind {
        self.pos += 1; // `trait`
        let name = self.take_ident().unwrap_or_default();
        // Skip generics / supertraits / where clause up to the body.
        while self.pos < end && !self.toks[self.pos].is_punct("{") {
            if self.toks[self.pos].is_punct(";") {
                // `trait Alias = ..;` — no body.
                self.pos += 1;
                return ItemKind::Trait { name, fns: Vec::new() };
            }
            self.pos += 1;
        }
        let mut fns = Vec::new();
        if self.cur().is_some_and(|t| t.is_punct("{")) {
            let close = self.skip_balanced(self.pos, "{", "}", end);
            self.pos += 1;
            self.parse_member_fns(close.saturating_sub(1), cfg_test, &mut fns);
            self.pos = close;
        }
        ItemKind::Trait { name, fns }
    }

    /// Collects `fn` members inside an impl/trait body, skipping
    /// associated consts/types and macros.
    fn parse_member_fns(&mut self, end: usize, outer_cfg_test: bool, out: &mut Vec<FnItem>) {
        while self.pos < end {
            let before = self.pos;
            let cfg_test = self.skip_attrs(end) || outer_cfg_test;
            self.skip_qualifiers(end);
            match self.cur() {
                Some(t) if t.is_ident("fn") => out.push(self.parse_fn(end, cfg_test)),
                Some(_) => self.skip_to_item_end(end),
                None => return,
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
    }

    /// Skips `<...>` if present at `pos` (after `impl`/a name).
    fn skip_generics(&mut self, end: usize) {
        if !self.cur().is_some_and(|t| t.is_punct("<")) {
            return;
        }
        let mut depth = 0i32;
        while self.pos < end {
            let t = &self.toks[self.pos];
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct("<<") {
                depth += 2;
            } else if t.is_punct(">") {
                depth -= 1;
            } else if t.is_punct(">>") {
                depth -= 2;
            }
            self.pos += 1;
            if depth <= 0 {
                return;
            }
        }
    }

    /// Skips an opaque item: everything up to a `;` at depth 0 or through
    /// the first balanced `{...}` block at depth 0 (whichever comes
    /// first). Handles `struct S(u32);`, `const X: [u8; 3] = ..;`,
    /// `macro_rules! m { .. }`, `extern "C" { .. }`, struct bodies.
    fn skip_to_item_end(&mut self, end: usize) {
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while self.pos < end {
            let t = &self.toks[self.pos];
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren -= 1;
            } else if t.is_punct("[") {
                bracket += 1;
            } else if t.is_punct("]") {
                bracket -= 1;
            } else if paren == 0 && bracket == 0 {
                if t.is_punct(";") {
                    self.pos += 1;
                    return;
                }
                if t.is_punct("{") {
                    self.pos = self.skip_balanced(self.pos, "{", "}", end);
                    // `struct S { .. }` ends here; `= Struct { .. };` for a
                    // const continues to the `;`.
                    if self.cur().is_some_and(|t| t.is_punct(";")) {
                        self.pos += 1;
                    }
                    return;
                }
                if t.is_punct("}") {
                    return; // enclosing scope closes — item was malformed
                }
            }
            self.pos += 1;
        }
    }

    /// Given `open` at an opening delimiter, returns the index just past
    /// its match (clamped to `end`).
    fn skip_balanced(&self, open: usize, op: &str, cl: &str, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct(op) {
                depth += 1;
            } else if t.is_punct(cl) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    fn find_semicolon(&self, from: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = from;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
            } else if depth == 0 && t.is_punct(";") {
                return i;
            }
            i += 1;
        }
        end
    }

    fn take_ident(&mut self) -> Option<String> {
        let t = self.cur()?;
        if t.kind == TokKind::Ident {
            self.pos += 1;
            Some(t.text.clone())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src).toks)
    }

    #[test]
    fn parses_free_fns_and_bodies() {
        let ast = parse_src("pub fn a() -> u32 { 1 }\nfn b();\nconst fn c(x: u32) -> u32 { x }");
        let fns: Vec<_> = ast
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Fn(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].name, "a");
        assert!(fns[0].body.is_some());
        assert_eq!(fns[1].name, "b");
        assert!(fns[1].body.is_none());
        assert_eq!(fns[2].name, "c");
    }

    #[test]
    fn parses_impl_headers() {
        let src = r#"
            impl UbfProtocol { fn helper(&self) {} }
            impl<M: Clone> Protocol for Hardened<M> where M: Send {
                fn on_start(&mut self) {}
                fn on_message(&mut self) {}
            }
            impl std::fmt::Display for Wide { fn fmt(&self) {} }
        "#;
        let ast = parse_src(src);
        let impls: Vec<_> = ast
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Impl(im) => Some(im),
                _ => None,
            })
            .collect();
        assert_eq!(impls.len(), 3);
        assert_eq!(impls[0].trait_name, None);
        assert_eq!(impls[0].self_ty.as_deref(), Some("UbfProtocol"));
        assert_eq!(impls[0].fns.len(), 1);
        assert_eq!(impls[1].trait_name.as_deref(), Some("Protocol"));
        assert_eq!(impls[1].self_ty.as_deref(), Some("Hardened"));
        assert_eq!(impls[1].fns.len(), 2);
        assert_eq!(impls[2].trait_name.as_deref(), Some("Display"));
        assert_eq!(impls[2].self_ty.as_deref(), Some("Wide"));
    }

    #[test]
    fn parses_use_trees() {
        let src = "use std::collections::{BTreeMap, BTreeSet as Set};\nuse ballfit_wsn::sim::*;\nuse crate::detector::{self, detect};";
        let ast = parse_src(src);
        let mut all = Vec::new();
        for it in &ast.items {
            if let ItemKind::Use { imports } = &it.kind {
                all.extend(imports.iter().cloned());
            }
        }
        assert!(all
            .iter()
            .any(|u| u.name == "BTreeMap" && u.path == vec!["std", "collections", "BTreeMap"]));
        assert!(all
            .iter()
            .any(|u| u.name == "Set" && u.path == vec!["std", "collections", "BTreeSet"]));
        assert!(all.iter().any(|u| u.name == "*" && u.path == vec!["ballfit_wsn", "sim"]));
        assert!(all.iter().any(|u| u.name == "detector" && u.path == vec!["crate", "detector"]));
        assert!(all
            .iter()
            .any(|u| u.name == "detect" && u.path == vec!["crate", "detector", "detect"]));
    }

    #[test]
    fn parses_inline_mods_and_cfg_test() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() {}
            }
            mod decl;
            #[cfg(not(test))]
            mod shipped { fn f() {} }
        "#;
        let ast = parse_src(src);
        assert_eq!(ast.items.len(), 3);
        assert!(ast.items[0].cfg_test);
        match &ast.items[0].kind {
            ItemKind::Mod { name, inline: Some(children) } => {
                assert_eq!(name, "tests");
                assert_eq!(children.len(), 2);
            }
            other => panic!("expected inline mod, got {other:?}"),
        }
        assert!(!ast.items[2].cfg_test, "cfg(not(test)) is not a test scope");
    }

    #[test]
    fn opaque_items_do_not_derail_the_parser() {
        let src = r#"
            pub struct S(pub u32);
            pub struct T { pub x: [u8; 4] }
            pub const N: usize = 3;
            static TABLE: [u8; 2] = [0; 2];
            macro_rules! m { ($x:expr) => { $x }; }
            pub enum E { A, B(u32) }
            pub type Alias = Vec<u32>;
            fn after_all_that() {}
        "#;
        let ast = parse_src(src);
        let fns: Vec<_> = ast
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Fn(f) => Some(f.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(fns, vec!["after_all_that"]);
        assert_eq!(item_count(&ast.items), 8);
    }

    #[test]
    fn trait_methods_are_collected() {
        let src = r#"
            pub trait Protocol {
                type Msg: Clone;
                fn on_start(&mut self);
                fn wants_tick(&self) -> bool { false }
            }
        "#;
        let ast = parse_src(src);
        match &ast.items[0].kind {
            ItemKind::Trait { name, fns } => {
                assert_eq!(name, "Protocol");
                let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
                assert_eq!(names, vec!["on_start", "wants_tick"]);
                assert!(fns[0].body.is_none());
                assert!(fns[1].body.is_some());
            }
            other => panic!("expected trait, got {other:?}"),
        }
    }
}
